"""Benchmark / regeneration of Figure 14 (cluster latency)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig14_latency as driver


def test_fig14_latency(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig14Config.quick())
    report(result)
    # Shape check (the paper's ordering at the highest skew): the 99th
    # percentile of KG dominates everyone, D-C / W-C stay close to SG.
    skew = max(driver.Fig14Config.quick().skews)
    values = {row["scheme"]: row["p99_ms"] for row in result.filtered(skew=skew)}
    assert values["SG"] <= values["KG"]
    assert values["W-C"] <= values["KG"]
    assert values["D-C"] <= values["KG"]
