#!/usr/bin/env python
"""Fail if routing throughput regressed against the committed baseline.

The CI bench guard runs ``run_routing_bench.py`` at reduced scale and then::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_routing.json --current bench-current.json \
        --threshold 0.30 --metric batch_msgs_per_sec --schemes PKG

A scheme regresses when its measured rate drops more than ``threshold``
(default 30%) below the baseline.  ``--metric`` accepts several metrics at
once (e.g. ``--metric batch_speedup batch_msgs_per_sec``) and guards each.
Exit code 1 on any regression, 0 otherwise.  Rates *above* baseline never
fail (faster is fine); schemes missing from either file are reported and
skipped — the guard compares what both measured.  A ``--metric`` that no
baseline scheme recorded at all is a hard failure (the guard would
otherwise pass vacuously, e.g. after a typo or before the baseline was
regenerated); the error lists the metrics the baseline does carry.

Baselines and CI runners have different hardware, so the default threshold
is deliberately loose: it catches algorithmic regressions (an accidental
O(n) in the hot loop), not noise.

A second mode guards a *single* file against an absolute floor instead of a
committed baseline — useful for ratio metrics (like the cluster runtime's
``scaling_vs_1w``) that are already hardware-normalised::

    python benchmarks/check_bench_regression.py \
        --bench-file bench-cluster-ci.json \
        --metric scaling_vs_1w --schemes PKG@w4 --min-value 1.5

Every named entry must carry the metric at or above ``--min-value``; a
missing entry or metric is a hard failure, same as explicit-schemes mode.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_METRIC = "batch_msgs_per_sec"
DEFAULT_THRESHOLD = 0.30


def compare(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
    metric: str = DEFAULT_METRIC,
    schemes: list[str] | None = None,
) -> list[str]:
    """Return one failure message per regressed scheme (empty = pass).

    Schemes the caller named explicitly (``schemes``) must exist in both
    files — a guard told to watch PKG that cannot find PKG has failed, not
    passed vacuously.  Only in whole-baseline mode are missing entries
    skipped with a note (the two files may cover different scheme sets).
    """
    failures: list[str] = []
    explicit = schemes is not None
    names = schemes or [name for name in baseline if not name.startswith("_")]
    if not explicit and not any(
        isinstance(baseline.get(name), dict) and metric in baseline[name]
        for name in names
    ):
        # Nothing to guard is a misconfiguration, not a pass: a metric
        # typo or a stale baseline must fail loudly, naming what exists.
        available = sorted(
            {
                key
                for name in names
                if isinstance(baseline.get(name), dict)
                for key in baseline[name]
            }
        )
        failures.append(
            f"metric {metric!r} is absent from every baseline scheme; "
            f"available metrics: {', '.join(available) if available else '(none)'}"
        )
        return failures
    for name in names:
        base_entry = baseline.get(name)
        current_entry = current.get(name)
        if not isinstance(base_entry, dict) or metric not in base_entry:
            if explicit:
                failures.append(f"{name}: no baseline {metric} to guard against")
            else:
                print(f"note: {name}: no baseline {metric}; skipped")
            continue
        if not isinstance(current_entry, dict) or metric not in current_entry:
            if explicit:
                failures.append(f"{name}: no current {metric} was measured")
            else:
                print(f"note: {name}: no current {metric}; skipped")
            continue
        base_rate = float(base_entry[metric])
        current_rate = float(current_entry[metric])
        if base_rate <= 0:
            print(f"note: {name}: non-positive baseline {metric}; skipped")
            continue
        ratio = current_rate / base_rate
        status = "ok" if ratio >= 1.0 - threshold else "REGRESSED"
        print(
            f"{name:8s} {metric}: baseline {base_rate:,.6g} -> current "
            f"{current_rate:,.6g} ({ratio:.2f}x) {status}"
        )
        if status == "REGRESSED":
            failures.append(
                f"{name}: {metric} dropped to {ratio:.2f}x of baseline "
                f"(allowed >= {1.0 - threshold:.2f}x)"
            )
    return failures


def check_floor(
    bench: dict,
    min_value: float,
    metric: str = DEFAULT_METRIC,
    schemes: list[str] | None = None,
) -> list[str]:
    """Return one failure message per entry below the floor (empty = pass).

    Unlike :func:`compare`, there is no baseline file: each entry's metric
    is held against an absolute ``min_value``.  Entries are never skipped —
    a floor guard that cannot find what it was told to watch has failed.
    """
    failures: list[str] = []
    names = schemes or [name for name in bench if not name.startswith("_")]
    if not names:
        return [f"no entries to hold against the {metric} floor"]
    for name in names:
        entry = bench.get(name)
        if not isinstance(entry, dict) or metric not in entry:
            failures.append(f"{name}: no {metric} was measured")
            continue
        value = float(entry[metric])
        status = "ok" if value >= min_value else "BELOW FLOOR"
        print(f"{name:8s} {metric}: {value:,.6g} (floor {min_value:,.6g}) {status}")
        if status != "ok":
            failures.append(
                f"{name}: {metric} {value:,.6g} is below the floor {min_value:,.6g}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_routing.json",
        help="committed baseline JSON (default: BENCH_routing.json)",
    )
    parser.add_argument(
        "--current", default=None,
        help="freshly measured JSON to compare against the baseline",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"allowed fractional drop (default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--bench-file", default=None, metavar="PATH",
        help=(
            "floor mode: guard this single file against --min-value "
            "instead of comparing --current to --baseline"
        ),
    )
    parser.add_argument(
        "--min-value", type=float, default=None, metavar="VALUE",
        help="floor mode: minimum acceptable value for every guarded metric",
    )
    parser.add_argument(
        "--metric", nargs="+", default=[DEFAULT_METRIC], metavar="METRIC",
        help=(
            "per-scheme rate(s) to compare; several metrics may be given "
            f"and every one is guarded (default: {DEFAULT_METRIC})"
        ),
    )
    parser.add_argument(
        "--schemes", nargs="+", default=None, metavar="NAME",
        help="subset of schemes to guard (default: every baseline scheme)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        parser.error(f"--threshold must be in [0, 1), got {args.threshold}")

    failures: list[str] = []
    if args.bench_file is not None:
        if args.current is not None:
            parser.error("--bench-file (floor mode) and --current are exclusive")
        if args.min_value is None:
            parser.error("--bench-file requires --min-value")
        bench = json.loads(Path(args.bench_file).read_text(encoding="utf-8"))
        for metric in args.metric:
            failures.extend(
                check_floor(
                    bench, args.min_value, metric=metric, schemes=args.schemes
                )
            )
    else:
        if args.min_value is not None:
            parser.error("--min-value only applies in --bench-file floor mode")
        if args.current is None:
            parser.error("--current is required (or use --bench-file floor mode)")
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        current = json.loads(Path(args.current).read_text(encoding="utf-8"))
        for metric in args.metric:
            failures.extend(
                compare(
                    baseline, current,
                    threshold=args.threshold, metric=metric, schemes=args.schemes,
                )
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
