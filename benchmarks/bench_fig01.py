"""Benchmark / regeneration of Figure 1 (imbalance vs. scale on Wikipedia)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig01_scale_imbalance as driver


def test_fig01_scale_imbalance(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig01Config.quick())
    report(result)
    # Shape check: at the largest simulated scale the head-aware schemes beat PKG.
    largest = max(row["workers"] for row in result.rows)
    pkg = result.filtered(scheme="PKG", workers=largest)[0]["imbalance"]
    dchoices = result.filtered(scheme="D-C", workers=largest)[0]["imbalance"]
    wchoices = result.filtered(scheme="W-C", workers=largest)[0]["imbalance"]
    assert dchoices <= pkg
    assert wchoices <= pkg
