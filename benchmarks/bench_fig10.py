"""Benchmark / regeneration of Figure 10 (imbalance vs. skew on Zipf streams)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig10_zipf_imbalance as driver


def test_fig10_zipf_imbalance(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig10Config.quick())
    report(result)
    # Shape check: at the hardest point of the quick grid (largest n, largest
    # z), the head-aware schemes dominate PKG.
    config = driver.Fig10Config.quick()
    workers = max(config.worker_counts)
    skew = max(config.skews)
    values = {
        row["scheme"]: row["imbalance"]
        for row in result.filtered(workers=workers, skew=skew)
    }
    assert values["D-C"] <= values["PKG"]
    assert values["W-C"] <= values["PKG"]
