"""Benchmark / regeneration of Figure 5 (memory overhead vs. PKG)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig05_memory_vs_pkg as driver


def test_fig05_memory_vs_pkg(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig05Config.quick())
    report(result)
    # Shape check: overhead is non-negative, bounded, and D-C <= W-C.
    for row in result.rows:
        assert row["dchoices_vs_pkg_pct"] >= -1e-9
        assert row["dchoices_vs_pkg_pct"] <= row["wchoices_vs_pkg_pct"] + 1e-9
        assert row["wchoices_vs_pkg_pct"] <= 40.0
