"""Pytest configuration for the benchmark suite.

The benchmark files live next to this conftest and are collected when
running ``pytest benchmarks/ --benchmark-only``; the shared helpers live in
:mod:`_bench_utils` (this directory is added to ``sys.path`` by pytest's
rootdir handling, so the plain import works from any invocation directory).
"""

from __future__ import annotations

import os
import sys

# Make `from _bench_utils import ...` robust regardless of how pytest was
# invoked (e.g. from the repository root or from inside benchmarks/).
sys.path.insert(0, os.path.dirname(__file__))
