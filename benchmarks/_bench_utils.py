"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
"quick" scale (seconds, not hours), measures the wall-clock cost of the
regeneration with pytest-benchmark, and prints the rows the figure plots so
the run doubles as a report.  Use ``--benchmark-only`` to skip the unit-test
suite and ``-s`` to see the printed tables.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, format_table


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark.

    The experiment drivers are deterministic and relatively slow (they
    simulate millions of routing decisions), so a single round is both
    sufficient and necessary to keep the suite fast.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(result: ExperimentResult, max_rows: int = 30) -> None:
    """Print the regenerated rows below the benchmark timings."""
    print()
    print(f"== {result.experiment_id}: {result.title} ==")
    rows = result.rows[:max_rows]
    print(format_table(rows))
    if len(result.rows) > max_rows:
        print(f"... ({len(result.rows) - max_rows} more rows)")
    for note in result.notes:
        print(f"note: {note}")
