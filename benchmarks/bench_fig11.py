"""Benchmark / regeneration of Figure 11 (imbalance on real-world workloads)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig11_real_imbalance as driver


def test_fig11_real_imbalance(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig11Config.quick())
    report(result)
    # Shape check: at the largest simulated scale the head-aware schemes are
    # never worse than PKG on any of the datasets.
    config = driver.Fig11Config.quick()
    workers = max(config.worker_counts)
    for dataset in config.datasets:
        values = {
            row["scheme"]: row["imbalance"]
            for row in result.filtered(dataset=dataset, workers=workers)
        }
        assert values["W-C"] <= values["PKG"] + 1e-9
