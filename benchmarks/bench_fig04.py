"""Benchmark / regeneration of Figure 4 (fraction of workers used by D-C)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig04_fraction_workers as driver


def test_fig04_fraction_of_workers(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig04Config.quick())
    report(result)
    # Shape check: at n >= 50 the solver always stays strictly below n.
    for row in result.rows:
        assert 2 <= row["d"] <= row["workers"]
        if row["workers"] >= 50:
            assert row["d_over_n"] < 1.0
