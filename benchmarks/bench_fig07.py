"""Benchmark / regeneration of Figure 7 (threshold sweep for W-C and RR)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig07_threshold_sweep as driver


def test_fig07_threshold_sweep(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig07Config.quick())
    report(result)
    # Shape check: with a sufficiently low threshold, W-C keeps the imbalance
    # small even at the largest scale and the highest skew of the sweep.
    rows = result.filtered(scheme="W-C", theta="1/(8n)", workers=50, skew=2.0)
    assert rows and rows[0]["imbalance"] < 0.02
