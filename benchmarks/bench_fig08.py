"""Benchmark / regeneration of Figure 8 (head/tail load split per worker)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig08_head_tail_load as driver


def test_fig08_head_tail_load(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig08Config.quick())
    report(result)
    # Shape check: every scheme's per-worker percentages sum to 100, and W-C
    # ends up closer to the ideal 1/n than PKG.
    ideal = 100.0 / driver.Fig08Config.quick().num_workers
    for scheme in ("PKG", "W-C", "RR"):
        rows = result.filtered(scheme=scheme)
        assert abs(sum(row["total_load_pct"] for row in rows) - 100.0) < 1e-6
    pkg_max = max(row["total_load_pct"] for row in result.filtered(scheme="PKG"))
    wc_max = max(row["total_load_pct"] for row in result.filtered(scheme="W-C"))
    assert abs(wc_max - ideal) <= abs(pkg_max - ideal)
