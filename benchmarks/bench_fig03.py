"""Benchmark / regeneration of Figure 3 (head cardinality vs. skew)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig03_head_cardinality as driver


def test_fig03_head_cardinality(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig03Config.quick())
    report(result)
    # Shape check: the head is always a tiny fraction of the key space and
    # the looser threshold (1/(5n)) never yields a smaller head than 2/n.
    assert all(row["head_cardinality"] < 1000 for row in result.rows)
    for workers in (50, 100):
        for skew in (0.4, 2.0):
            loose = result.filtered(workers=workers, skew=skew, theta="1/(5n)")[0]
            tight = result.filtered(workers=workers, skew=skew, theta="2/n")[0]
            assert loose["head_cardinality"] >= tight["head_cardinality"]
