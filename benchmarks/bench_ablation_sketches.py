"""Ablation: sensitivity of D-Choices to the heavy-hitter sketch.

The paper uses SpaceSaving; MisraGries and LossyCounting are drop-in
replacements with the opposite error direction.  The ablation runs the same
skewed stream through D-Choices with each sketch and compares the resulting
imbalance.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.bounds import theta_range
from repro.simulation.runner import run_simulation
from repro.sketches.lossy_counting import LossyCounting
from repro.sketches.misra_gries import MisraGries
from repro.sketches.space_saving import SpaceSaving
from repro.workloads.zipf_stream import ZipfWorkload

NUM_WORKERS = 50
NUM_MESSAGES = 120_000
SKEW = 1.8


def _sketch_factories():
    theta = theta_range(NUM_WORKERS).default
    return {
        "SpaceSaving": lambda: SpaceSaving.for_threshold(theta, slack=2.0),
        "MisraGries": lambda: MisraGries(capacity=int(2.0 / theta)),
        "LossyCounting": lambda: LossyCounting(epsilon=theta / 2.0),
    }


def _imbalances() -> dict[str, float]:
    results = {}
    for name, factory in _sketch_factories().items():
        result = run_simulation(
            ZipfWorkload(SKEW, 10_000, NUM_MESSAGES, seed=5),
            scheme="D-C",
            num_workers=NUM_WORKERS,
            num_sources=5,
            seed=1,
            scheme_options={"sketch": factory()},
        )
        results[name] = result.final_imbalance
    return results


def test_ablation_sketch_choice(benchmark):
    results = run_once(benchmark, _imbalances)
    print()
    for name, imbalance in results.items():
        print(f"D-C with {name}: imbalance={imbalance:.3e}")
    # All three sketches identify the same small head, so D-C should balance
    # the stream with any of them.
    for name, imbalance in results.items():
        assert imbalance < 0.05, name
