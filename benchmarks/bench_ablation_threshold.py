"""Ablation: sensitivity of D-Choices to the head threshold theta.

Figure 7 sweeps theta for W-C and RR; this ablation does the same for
D-Choices itself, confirming the paper's conclusion that any value in the
admissible range ``[1/(5n), 2/n]`` yields a satisfactory imbalance, so the
conservative default ``1/(5n)`` is a safe choice.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

NUM_WORKERS = 50
NUM_MESSAGES = 120_000
SKEW = 2.0

THETAS = {
    "2/n": 2.0 / NUM_WORKERS,
    "1/n": 1.0 / NUM_WORKERS,
    "1/(2n)": 0.5 / NUM_WORKERS,
    "1/(5n)": 0.2 / NUM_WORKERS,
    "1/(8n)": 0.125 / NUM_WORKERS,
}


def _imbalances() -> dict[str, float]:
    results = {}
    for label, theta in THETAS.items():
        result = run_simulation(
            ZipfWorkload(SKEW, 10_000, NUM_MESSAGES, seed=7),
            scheme="D-C",
            num_workers=NUM_WORKERS,
            num_sources=5,
            seed=1,
            scheme_options={"theta": theta},
        )
        results[label] = result.final_imbalance
    return results


def test_ablation_threshold_for_dchoices(benchmark):
    results = run_once(benchmark, _imbalances)
    print()
    for label, imbalance in results.items():
        print(f"D-C with theta={label}: imbalance={imbalance:.3e}")
    # every threshold in the admissible range keeps D-C far below PKG's
    # imbalance at this scale/skew (which is on the order of 0.2+)
    for label, imbalance in results.items():
        assert imbalance < 0.05, label
