"""Benchmark / regeneration of Figure 9 (analytical d vs. empirical minimum d)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig09_optimal_d as driver


def test_fig09_optimal_d(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig09Config.quick())
    report(result)
    # Shape check: whenever the empirical search found a feasible d, the
    # analytical value is in the same ballpark (within the probing stride on
    # the low side, and not wildly larger on the high side).
    stride = driver.Fig09Config.quick().d_stride
    for row in result.rows:
        assert 2 <= row["analytical_d"] <= row["workers"]
        if row["empirical_min_d"] is not None:
            assert row["analytical_d"] >= row["empirical_min_d"] - stride
            assert row["analytical_d"] <= 3 * row["empirical_min_d"] + stride
