"""Benchmark / regeneration of Figure 6 (memory overhead vs. shuffle grouping)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig06_memory_vs_sg as driver


def test_fig06_memory_vs_sg(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig06Config.quick())
    report(result)
    # Shape check: both schemes save the lion's share of SG's memory.
    for row in result.rows:
        assert row["dchoices_vs_sg_pct"] < -50.0
        assert row["wchoices_vs_sg_pct"] < -50.0
