#!/usr/bin/env python
"""Scaling benchmark of the multi-process cluster runtime.

Runs the same Zipf stream through real source/worker processes at 1, 2, 4
and 8 workers for PKG, KG and D-Choices and records the aggregate
throughput, the realised imbalance and the scaling factor versus the
1-worker run into ``BENCH_cluster.json``::

    {"PKG@w1": {"agg_msgs_per_sec": ..., "imbalance": ..., ...},
     "PKG@w4": {..., "scaling_vs_1w": 2.4, ...}, ..., "_meta": {...}}

Every 4-worker cell is also validated against the simulator: the runtime
has a single router, so a ``num_sources=1`` simulation of the identical
workload/seed must predict the per-worker counts exactly — the script
exits non-zero when the realised imbalance drifts more than the tolerance
from the prediction.

The workers model an I/O-bound operator: each *blocks* for ``service_ns``
per message (state-store writes, not CPU burn), so aggregate throughput
scales with worker count through pipeline overlap even on a single-core
container — ``_meta.cpu_count`` records what the box actually had (see
docs/runtime.md for why this is the honest design on 1 CPU).

Usage::

    python benchmarks/bench_cluster_runtime.py                 # full curve
    python benchmarks/bench_cluster_runtime.py --quick         # CI subset
    python benchmarks/bench_cluster_runtime.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy

from repro.runtime import ClusterConfig, run_cluster, validate_against_simulation

SCHEMES = ("PKG", "KG", "D-C")
WORKER_COUNTS = (1, 2, 4, 8)
NUM_MESSAGES = 80_000
NUM_KEYS = 5_000
SKEW = 1.4
SEED = 0
SERVICE_NS = 20_000
BATCH_SIZE = 512
VALIDATION_TOLERANCE = 0.2


def _git_commit() -> str:
    cwd = Path(__file__).resolve().parent
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if probe.returncode != 0 or not probe.stdout.strip():
            return "unknown"
        commit = probe.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            commit += "-dirty"
        return commit
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"


def make_config(scheme: str, num_workers: int, num_messages: int) -> ClusterConfig:
    return ClusterConfig(
        scheme=scheme,
        num_workers=num_workers,
        num_messages=num_messages,
        num_keys=NUM_KEYS,
        skew=SKEW,
        seed=SEED,
        service_ns=SERVICE_NS,
        mode=f"columnar:{BATCH_SIZE}",
    )


def run_bench(
    schemes=SCHEMES,
    worker_counts=WORKER_COUNTS,
    num_messages: int = NUM_MESSAGES,
    validate_at: int = 4,
) -> tuple[dict, list[str]]:
    """Measure the scaling curve; returns (results, validation failures)."""
    results: dict = {}
    failures: list[str] = []
    print(f"{'cell':10s} {'msgs/s':>12s} {'elapsed':>9s} {'imbalance':>10s} {'vs 1w':>7s}")
    for scheme in schemes:
        base_rate = None
        for num_workers in worker_counts:
            config = make_config(scheme, num_workers, num_messages)
            result = run_cluster(config)
            rate = result.agg_msgs_per_sec
            if num_workers == min(worker_counts):
                base_rate = rate
            scaling = rate / base_rate if base_rate else 1.0
            entry = {
                "agg_msgs_per_sec": round(rate),
                "elapsed_s": round(result.elapsed_s, 4),
                "imbalance": round(result.imbalance, 6),
                "scaling_vs_1w": round(scaling, 2),
                "min_worker_processed": min(result.worker_processed),
                "max_worker_processed": max(result.worker_processed),
            }
            if num_workers == validate_at:
                check = validate_against_simulation(
                    config, result, tolerance=VALIDATION_TOLERANCE
                )
                entry["sim_imbalance"] = round(check["simulated_imbalance"], 6)
                entry["imbalance_rel_diff"] = round(
                    check["relative_difference"], 6
                )
                entry["loads_match_simulation"] = check["loads_match"]
                if not check["within_tolerance"]:
                    failures.append(
                        f"{scheme}@w{num_workers}: real imbalance "
                        f"{check['real_imbalance']:.6f} deviates "
                        f"{check['relative_difference']:.1%} from simulated "
                        f"{check['simulated_imbalance']:.6f} "
                        f"(tolerance {VALIDATION_TOLERANCE:.0%})"
                    )
            results[f"{scheme}@w{num_workers}"] = entry
            print(
                f"{scheme}@w{num_workers:<4d} {rate:>12,.0f} "
                f"{result.elapsed_s:>8.3f}s {result.imbalance:>10.4f} "
                f"{scaling:>6.2f}x"
            )
    results["_meta"] = {
        "workload": f"Zipf({SKEW}), |K|={NUM_KEYS}, m={num_messages}",
        "schemes": list(schemes),
        "worker_counts": list(worker_counts),
        "service_ns": SERVICE_NS,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "validation_tolerance": VALIDATION_TOLERANCE,
        # Scaling on this runtime comes from overlapping *blocking* service
        # time, so it is meaningful even when cpu_count == 1 — but record
        # the cpu count so readers can judge the numbers in context.
        "cpu_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "git_commit": _git_commit(),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    return results, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_cluster.json",
        help="where to write the results (default: BENCH_cluster.json)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI subset: PKG only, 1 and 4 workers, smaller stream",
    )
    args = parser.parse_args(argv)

    if args.quick:
        results, failures = run_bench(
            schemes=("PKG",), worker_counts=(1, 4), num_messages=40_000
        )
    else:
        results, failures = run_bench()

    Path(args.output).write_text(
        json.dumps(results, indent=1) + "\n", encoding="utf-8"
    )
    print(f"results written to {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
