"""Benchmark / regeneration of Figure 12 (imbalance over time)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig12_imbalance_over_time as driver


def test_fig12_imbalance_over_time(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig12Config.quick())
    report(result)
    # Shape check: the time series is present for every (dataset, scheme,
    # workers) combination and snapshots are ordered by message count.
    config = driver.Fig12Config.quick()
    expected_series = len(config.datasets) * 3 * len(config.worker_counts)
    series_keys = {
        (row["dataset"], row["scheme"], row["workers"]) for row in result.rows
    }
    assert len(series_keys) == expected_series
    for key in series_keys:
        counts = [
            row["messages"]
            for row in result.rows
            if (row["dataset"], row["scheme"], row["workers"]) == key
        ]
        assert counts == sorted(counts)
