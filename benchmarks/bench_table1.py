"""Benchmark / regeneration of Table I (dataset summary)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import table1_datasets as driver


def test_table1_datasets(benchmark):
    result = run_once(benchmark, driver.run, driver.Table1Config.quick())
    report(result)
    # Shape check: all four datasets are present and the synthetic stand-ins
    # reproduce the published p1 where it is defined (WP, TW, CT).
    symbols = {row["symbol"] for row in result.rows}
    assert symbols == {"WP", "TW", "CT", "ZF"}
    for row in result.rows:
        if row["symbol"] in ("WP", "TW"):
            assert abs(row["repro_p1_pct"] - row["paper_p1_pct"]) < 2.0
