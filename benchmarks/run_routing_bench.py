#!/usr/bin/env python
"""Measure scalar vs batched vs columnar routing throughput.

Runs the ``bench_micro_routing`` workload (Zipf 1.4, 50 workers, 20k
messages) through every scheme three times — per-message ``route()``,
chunked ``route_batch()`` and columnar ``route_batch_columnar()`` over
pre-interned key-id batches — and writes the numbers to
``BENCH_routing.json`` at the repository root so future PRs have a perf
baseline to regress against::

    PYTHONPATH=src python benchmarks/run_routing_bench.py

The JSON schema is one entry per scheme::

    {"PKG": {"scalar_msgs_per_sec": ..., "batch_msgs_per_sec": ...,
             "batch_speedup": ..., "columnar_msgs_per_sec": ...,
             "columnar_speedup": ...}, ..., "_meta": {...}}

End-to-end dataflow throughput (``benchmarks/bench_dataflow.py``, the
Figure 17 multi-stage topology) is appended under ``DATAFLOW-<scheme>``
entries with the same shape, and its parameters nest under
``_meta["dataflow"]`` — one unified ``_meta`` (git commit, date, python,
numpy) covers everything in the file.  Pass ``--no-dataflow`` to skip it.

The CI bench guard runs this at reduced scale
(``--messages 10000 --rounds 3 --output bench-current.json``) and compares
the result against the committed baseline with
``benchmarks/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy

from repro.partitioning.registry import create_partitioner
from repro.workloads.columnar import ColumnarBatch, KeyDictionary
from repro.workloads.zipf_stream import ZipfWorkload

NUM_WORKERS = 50
NUM_MESSAGES = 20_000
BATCH_SIZE = 2_048
ROUNDS = 5
SCHEMES = ("KG", "SG", "PKG", "D-C", "W-C", "RR")


def _best_time(function, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(num_messages: int = NUM_MESSAGES, rounds: int = ROUNDS) -> dict[str, object]:
    """Measure every scheme and return the BENCH_routing.json payload."""
    keys = list(ZipfWorkload(1.4, 10_000, num_messages, seed=9))
    # The columnar path's input: the same stream, interned once.  Built
    # outside the timers like the key list — the source emits id batches
    # natively in columnar runs, so interning is not a per-route cost.
    dictionary = KeyDictionary()
    batches = [
        ColumnarBatch(
            dictionary.intern_keys(keys[start : start + BATCH_SIZE]),
            dictionary,
            start,
        )
        for start in range(0, len(keys), BATCH_SIZE)
    ]
    results: dict[str, object] = {}
    print(
        f"{'scheme':8s} {'scalar msg/s':>14s} {'batch msg/s':>14s} {'speedup':>8s}"
        f" {'columnar msg/s':>15s} {'speedup':>8s}"
    )
    for scheme in SCHEMES:

        def scalar() -> None:
            partitioner = create_partitioner(scheme, num_workers=NUM_WORKERS, seed=1)
            route = partitioner.route
            for key in keys:
                route(key)

        def batched() -> None:
            partitioner = create_partitioner(scheme, num_workers=NUM_WORKERS, seed=1)
            for start in range(0, len(keys), BATCH_SIZE):
                partitioner.route_batch(keys[start : start + BATCH_SIZE])

        def columnar() -> None:
            partitioner = create_partitioner(scheme, num_workers=NUM_WORKERS, seed=1)
            for batch in batches:
                partitioner.route_batch_columnar(batch)

        scalar_rate = num_messages / _best_time(scalar, rounds)
        batch_rate = num_messages / _best_time(batched, rounds)
        columnar_rate = num_messages / _best_time(columnar, rounds)
        results[scheme] = {
            "scalar_msgs_per_sec": round(scalar_rate),
            "batch_msgs_per_sec": round(batch_rate),
            "batch_speedup": round(batch_rate / scalar_rate, 2),
            "columnar_msgs_per_sec": round(columnar_rate),
            "columnar_speedup": round(columnar_rate / scalar_rate, 2),
        }
        print(
            f"{scheme:8s} {scalar_rate:>14,.0f} {batch_rate:>14,.0f} "
            f"{batch_rate / scalar_rate:>7.1f}x {columnar_rate:>15,.0f} "
            f"{columnar_rate / scalar_rate:>7.1f}x"
        )

    results["_meta"] = {
        "workload": f"Zipf(1.4), |K|=10k, m={num_messages}",
        "num_workers": NUM_WORKERS,
        "batch_size": BATCH_SIZE,
        "rounds": rounds,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        # Provenance: which tree produced these numbers and when, so the
        # bench trajectory across PRs stays reconstructible from the JSON
        # alone (see docs/performance.md).
        "git_commit": _git_commit(),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    return results


def _git_commit() -> str:
    """The current commit hash, or "unknown" outside a git checkout.

    A ``-dirty`` suffix marks a working tree with uncommitted changes —
    the normal case for the run that refreshes the committed baseline,
    whose numbers describe the *next* commit rather than HEAD.
    """
    cwd = Path(__file__).resolve().parent
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if probe.returncode != 0 or not probe.stdout.strip():
            return "unknown"
        commit = probe.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            commit += "-dirty"
        return commit
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Measure scalar vs batched routing throughput."
    )
    parser.add_argument(
        "--messages", type=int, default=NUM_MESSAGES,
        help=f"stream length per measurement (default: {NUM_MESSAGES})",
    )
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help=f"measurement repetitions, best-of (default: {ROUNDS})",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="where to write the JSON (default: BENCH_routing.json at the repo root)",
    )
    parser.add_argument(
        "--no-dataflow", action="store_true",
        help="skip the multi-stage dataflow topology measurement",
    )
    args = parser.parse_args(argv)
    results = run_bench(num_messages=args.messages, rounds=args.rounds)
    if not args.no_dataflow:
        from bench_dataflow import run_bench as run_dataflow_bench

        # Scale the topology stream with the routing stream so the reduced
        # CI invocation stays fast: one post carries three words.
        print("\ndataflow topology (fig17), scalar vs batched:")
        dataflow = run_dataflow_bench(num_posts=max(args.messages // 2, 2_000))
        for name, entry in dataflow.items():
            if name.startswith("_"):
                # One unified _meta: the dataflow parameters nest under the
                # provenance-stamped top-level block instead of a second,
                # stampless _meta_dataflow entry.
                results["_meta"]["dataflow"] = entry
            else:
                results[f"DATAFLOW-{name}"] = entry
    if args.output is not None:
        output = Path(args.output)
    else:
        output = Path(__file__).resolve().parent.parent / "BENCH_routing.json"
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwritten to {output}")


if __name__ == "__main__":
    main()
