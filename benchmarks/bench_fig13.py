"""Benchmark / regeneration of Figure 13 (cluster throughput)."""

from __future__ import annotations

from _bench_utils import report, run_once

from repro.experiments import fig13_throughput as driver


def test_fig13_throughput(benchmark):
    result = run_once(benchmark, driver.run, driver.Fig13Config.quick())
    report(result)
    # Shape check (the paper's ordering at the highest skew): KG is the
    # slowest, D-C and W-C keep pace with SG.
    skew = max(driver.Fig13Config.quick().skews)
    values = {
        row["scheme"]: row["throughput_per_s"] for row in result.filtered(skew=skew)
    }
    assert values["KG"] <= values["SG"]
    assert values["KG"] <= values["D-C"]
    assert values["D-C"] >= 0.8 * values["SG"]
    assert values["W-C"] >= 0.8 * values["SG"]
