"""Ablation: local (per-source) vs. global load estimation.

The paper's schemes route using only the load each *source* has generated
itself (Section IV-B).  This ablation quantifies the price of that
approximation by comparing the usual multi-source run against a
single-source run of the same stream, in which the one source's local view
*is* the global view.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

NUM_WORKERS = 50
NUM_MESSAGES = 150_000
SKEW = 1.6


def _imbalances() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for scheme in ("PKG", "D-C", "W-C"):
        local = run_simulation(
            ZipfWorkload(SKEW, 10_000, NUM_MESSAGES, seed=3),
            scheme=scheme,
            num_workers=NUM_WORKERS,
            num_sources=5,
            seed=1,
        )
        globl = run_simulation(
            ZipfWorkload(SKEW, 10_000, NUM_MESSAGES, seed=3),
            scheme=scheme,
            num_workers=NUM_WORKERS,
            num_sources=1,
            seed=1,
        )
        results[scheme] = {
            "local_estimation": local.final_imbalance,
            "global_estimation": globl.final_imbalance,
        }
    return results


def test_ablation_local_vs_global_load_estimation(benchmark):
    results = run_once(benchmark, _imbalances)
    print()
    for scheme, row in results.items():
        print(
            f"{scheme}: local={row['local_estimation']:.3e} "
            f"global={row['global_estimation']:.3e}"
        )
    # The paper's claim: local estimation is a very accurate approximation,
    # so the head-aware schemes stay well balanced even with it.
    for scheme in ("D-C", "W-C"):
        assert results[scheme]["local_estimation"] < 0.02
