"""Micro-benchmarks: per-message routing cost of each grouping scheme.

Not a paper figure, but the number a DSPE integrator cares about: how much
CPU the partitioner adds per tuple on the source.  SpaceSaving and the hash
family keep the head-aware schemes within a small constant factor of PKG.
"""

from __future__ import annotations

import pytest

from repro.partitioning.registry import create_partitioner
from repro.workloads.zipf_stream import ZipfWorkload

NUM_WORKERS = 50
NUM_MESSAGES = 20_000

SCHEMES = ("KG", "SG", "PKG", "D-C", "W-C", "RR")


@pytest.fixture(scope="module")
def message_keys():
    return list(ZipfWorkload(1.4, 10_000, NUM_MESSAGES, seed=9))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_routing_throughput(benchmark, scheme, message_keys):
    def route_stream():
        partitioner = create_partitioner(scheme, num_workers=NUM_WORKERS, seed=1)
        for key in message_keys:
            partitioner.route(key)
        return partitioner.messages_routed

    routed = benchmark.pedantic(route_stream, rounds=3, iterations=1)
    assert routed == NUM_MESSAGES


def test_space_saving_update_rate(benchmark, message_keys):
    from repro.sketches.space_saving import SpaceSaving

    def feed_sketch():
        sketch = SpaceSaving(capacity=500)
        sketch.add_all(message_keys)
        return sketch.total

    total = benchmark.pedantic(feed_sketch, rounds=3, iterations=1)
    assert total == NUM_MESSAGES
