#!/usr/bin/env python
"""Measure scalar vs batched execution of the multi-stage dataflow topology.

Runs the Figure 17 word-count topology (split → windowed per-word counts →
window-tagged rekey → reconciliation sink) through the dataflow runtime
twice per scheme — depth-first scalar (``batch_size=1``) and stage-by-stage
batched (``batch_size=1024``) — and reports end-to-end throughput in words
per second.  Results are byte-identical between the two modes (pinned by
``tests/property/test_dataflow_batch_equivalence.py``); only the wall clock
changes::

    PYTHONPATH=src python benchmarks/bench_dataflow.py

``run_routing_bench.py`` embeds these numbers into ``BENCH_routing.json``
(entries named ``DATAFLOW-<scheme>``) so the nightly bench guard tracks
dataflow throughput alongside raw routing throughput.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.experiments.fig17_topology_throughput import (
    Fig17Config,
    make_posts,
    run_scheme,
)

NUM_POSTS = 40_000
BATCH_SIZE = 1_024
ROUNDS = 3
SCHEMES = ("PKG", "D-C", "W-C", "SG")


def run_bench(
    num_posts: int = NUM_POSTS,
    rounds: int = ROUNDS,
    batch_size: int = BATCH_SIZE,
    schemes: tuple[str, ...] = SCHEMES,
) -> dict[str, object]:
    """Measure every scheme; returns ``{scheme: rates}`` (words/second)."""
    config = Fig17Config(num_posts=num_posts, batch_size=batch_size)
    posts = make_posts(config)
    words = config.num_messages
    results: dict[str, object] = {}
    print(f"{'scheme':8s} {'scalar w/s':>14s} {'batched w/s':>14s} {'speedup':>8s}")
    for scheme in schemes:
        best: dict[int, float] = {1: float("inf"), batch_size: float("inf")}
        for _ in range(rounds):
            for size in (1, batch_size):
                _, elapsed = run_scheme(config, scheme, posts=posts, batch_size=size)
                best[size] = min(best[size], elapsed)
        scalar_rate = words / best[1]
        batch_rate = words / best[batch_size]
        results[scheme] = {
            "scalar_msgs_per_sec": round(scalar_rate),
            "batch_msgs_per_sec": round(batch_rate),
            "batch_speedup": round(batch_rate / scalar_rate, 2),
        }
        print(
            f"{scheme:8s} {scalar_rate:>14,.0f} {batch_rate:>14,.0f} "
            f"{batch_rate / scalar_rate:>7.1f}x"
        )
    results["_meta"] = {
        "topology": "wordcount-two-level (fig17)",
        "num_posts": num_posts,
        "words_per_post": config.words_per_post,
        "batch_size": batch_size,
        "rounds": rounds,
    }
    return results


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Measure scalar vs batched dataflow-topology throughput."
    )
    parser.add_argument(
        "--posts", type=int, default=NUM_POSTS,
        help=f"posts per measurement, 3 words each (default: {NUM_POSTS})",
    )
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help=f"measurement repetitions, best-of (default: {ROUNDS})",
    )
    parser.add_argument(
        "--batch-size", type=int, default=BATCH_SIZE,
        help=f"micro-batch size of the batched runs (default: {BATCH_SIZE})",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the JSON payload to PATH",
    )
    args = parser.parse_args(argv)
    started = time.perf_counter()
    results = run_bench(
        num_posts=args.posts, rounds=args.rounds, batch_size=args.batch_size
    )
    print(f"\ntotal bench time: {time.perf_counter() - started:.1f}s")
    if args.output:
        output = Path(args.output)
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"written to {output}")


if __name__ == "__main__":
    main()
