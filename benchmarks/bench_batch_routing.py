"""Micro-benchmarks: batched vs scalar routing throughput per scheme.

The companion of :mod:`bench_micro_routing`: same workload (Zipf 1.4,
50 workers, 20k messages), but routing the stream through
``Partitioner.route_batch`` in engine-sized chunks instead of per-message
``route`` calls.  The property suite guarantees both paths make identical
decisions, so any delta here is pure hot-path cost.

Run ``benchmarks/run_routing_bench.py`` for the scripted scalar-vs-batch
comparison that records ``BENCH_routing.json``.
"""

from __future__ import annotations

import pytest

from repro.partitioning.registry import create_partitioner
from repro.workloads.zipf_stream import ZipfWorkload

NUM_WORKERS = 50
NUM_MESSAGES = 20_000
BATCH_SIZE = 2_048

SCHEMES = ("KG", "SG", "PKG", "D-C", "W-C", "RR")


@pytest.fixture(scope="module")
def message_keys():
    return list(ZipfWorkload(1.4, 10_000, NUM_MESSAGES, seed=9))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_batch_routing_throughput(benchmark, scheme, message_keys):
    def route_stream_batched():
        partitioner = create_partitioner(scheme, num_workers=NUM_WORKERS, seed=1)
        for start in range(0, len(message_keys), BATCH_SIZE):
            partitioner.route_batch(message_keys[start : start + BATCH_SIZE])
        return partitioner.messages_routed

    routed = benchmark.pedantic(route_stream_batched, rounds=3, iterations=1)
    assert routed == NUM_MESSAGES


def test_space_saving_bulk_update_rate(benchmark, message_keys):
    from repro.sketches.space_saving import SpaceSaving

    def feed_sketch_bulk():
        sketch = SpaceSaving(capacity=500)
        sketch.add_all(message_keys)
        return sketch.total

    total = benchmark.pedantic(feed_sketch_bulk, rounds=3, iterations=1)
    assert total == NUM_MESSAGES


def test_candidates_batch_rate(benchmark, message_keys):
    from repro.hashing.hash_family import HashFamily

    def hash_stream():
        family = HashFamily(num_functions=2, num_buckets=NUM_WORKERS, seed=1)
        hashed = 0
        for start in range(0, len(message_keys), BATCH_SIZE):
            hashed += len(
                family.candidates_batch(message_keys[start : start + BATCH_SIZE], 2)
            )
        return hashed

    hashed = benchmark.pedantic(hash_stream, rounds=3, iterations=1)
    assert hashed == NUM_MESSAGES
