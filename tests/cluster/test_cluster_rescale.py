"""Rescale-event replay on the discrete-event cluster simulator."""

from __future__ import annotations

import pytest

from repro.cluster.engine import ClusterEngine
from repro.cluster.latency import LatencyCollector
from repro.cluster.topology import ClusterTopology
from repro.exceptions import ConfigurationError
from repro.workloads.zipf_stream import ZipfWorkload


def _topology(**overrides):
    parameters = dict(
        scheme="PKG",
        num_sources=4,
        num_workers=8,
        source_overhead_ms=0.5,
        service_time_ms=1.0,
        seed=2,
    )
    parameters.update(overrides)
    return ClusterTopology(**parameters)


def _workload(messages: int = 12_000):
    return ZipfWorkload(1.3, 1_000, messages, seed=1)


class TestTopologyValidation:
    def test_spec_normalised(self):
        topology = _topology(rescale_plan="join@100,fail@200")
        assert topology.rescale_plan.spec == "join@100,fail@200"

    def test_shrink_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            _topology(num_workers=1, rescale_plan="fail@10")


class TestClusterRescale:
    def test_events_replayed_and_counted(self):
        engine = ClusterEngine(
            _topology(rescale_plan="join@2000,leave@5000,fail@8000")
        )
        result = engine.run(_workload())
        assert result.rescale_events == 3
        # Every worker that ever served is reported: 8 initial + 1 joiner,
        # including the two retired by the leave and the fail.
        assert len(result.worker_utilization) == 9
        assert result.num_messages == 12_000

    def test_utilization_covers_each_workers_own_window(self):
        # Regression: utilization used to be computed from the *final*
        # worker list over the *full* run duration — retired workers
        # vanished from the report and a mid-run joiner's busy time was
        # diluted by time it was not even online.
        result = ClusterEngine(
            _topology(rescale_plan="join@6000,leave@9000")
        ).run(_workload())
        # 8 initial workers + 1 joiner, the retired leaver included.
        assert len(result.worker_utilization) == 9
        assert all(0.0 <= value <= 1.0 for value in result.worker_utilization)
        # The joiner (last spawn-order slot) came online halfway through a
        # cluster that keeps every worker busy; measured over its own active
        # window its utilization must be in the same league as the initial
        # workers', not halved by the pre-join dead time.
        joiner = result.worker_utilization[-1]
        initial = result.worker_utilization[:8]
        assert joiner > 0.5 * min(initial)

    def test_leave_drains_fail_loses(self):
        drained = ClusterEngine(
            _topology(rescale_plan="leave@6000")
        ).run(_workload())
        lost = ClusterEngine(
            _topology(rescale_plan="fail@6000")
        ).run(_workload())
        assert drained.messages_drained > 0
        assert drained.messages_lost == 0
        assert lost.messages_lost > 0
        assert lost.messages_drained == 0

    def test_join_only_adds_capacity(self):
        result = ClusterEngine(_topology(rescale_plan="join@3000")).run(_workload())
        assert result.rescale_events == 1
        assert len(result.worker_utilization) == 9
        assert result.messages_drained == result.messages_lost == 0

    def test_retired_worker_utilization_reflects_service_before_retirement(self):
        # The leaver was a full member until its retirement: over its own
        # window it must report non-trivial utilization, not disappear.
        result = ClusterEngine(
            _topology(rescale_plan="leave@9000")
        ).run(_workload())
        assert len(result.worker_utilization) == 8
        retired = result.worker_utilization[7]  # highest initial id retires
        assert retired > 0.0

    def test_summary_includes_rescale_columns_only_when_used(self):
        static = ClusterEngine(_topology()).run(_workload(4_000))
        elastic = ClusterEngine(
            _topology(rescale_plan="join@1000")
        ).run(_workload(4_000))
        assert "rescale_events" not in static.summary()
        assert elastic.summary()["rescale_events"] == 1

    def test_deterministic_across_runs(self):
        def run():
            return ClusterEngine(
                _topology(rescale_plan="join@2000,fail@7000")
            ).run(_workload())

        first, second = run(), run()
        assert first.summary() == second.summary()


class TestLatencyCollectorRescale:
    def test_retired_samples_stay_in_stats(self):
        collector = LatencyCollector(2)
        collector.record(0, 10.0)
        collector.record(1, 50.0)
        collector.rescale(1)  # retire worker 1
        collector.record(0, 10.0)
        stats = collector.stats()
        assert stats.samples == 3
        assert stats.max_average == pytest.approx(50.0)

    def test_grow_adds_buckets(self):
        collector = LatencyCollector(1)
        collector.rescale(3)
        collector.record(2, 5.0)
        assert collector.stats().samples == 1

    def test_rescale_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyCollector(2).rescale(0)
