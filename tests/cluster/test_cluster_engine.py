"""Unit and behavioural tests for the cluster discrete-event engine."""

from __future__ import annotations

import pytest

from repro.cluster.engine import ClusterEngine
from repro.cluster.runner import compare_schemes, run_cluster_experiment
from repro.cluster.topology import ClusterTopology
from repro.exceptions import SimulationError
from repro.workloads.zipf_stream import ZipfWorkload


def _small_topology(scheme: str, **overrides) -> ClusterTopology:
    parameters = {
        "scheme": scheme,
        "num_sources": 4,
        "num_workers": 8,
        "service_time_ms": 1.0,
        "source_overhead_ms": 1.0,
        "max_pending_per_source": 10,
        "seed": 0,
    }
    parameters.update(overrides)
    return ClusterTopology(**parameters)


class TestClusterEngine:
    def test_processes_every_message(self):
        engine = ClusterEngine(_small_topology("SG"))
        result = engine.run(["a", "b", "c", "d"] * 100)
        assert result.num_messages == 400

    def test_empty_workload_rejected(self):
        engine = ClusterEngine(_small_topology("SG"))
        with pytest.raises(SimulationError):
            engine.run([])

    def test_throughput_positive_and_bounded(self):
        topology = _small_topology("SG")
        engine = ClusterEngine(topology)
        result = engine.run(["k"] * 1000)
        assert result.throughput_per_second > 0
        assert result.throughput_per_second <= topology.ideal_throughput_per_second * 1.01

    def test_duration_consistent_with_throughput(self):
        engine = ClusterEngine(_small_topology("SG"))
        result = engine.run(["k"] * 500)
        recomputed = result.num_messages / (result.duration_ms / 1000.0)
        assert result.throughput_per_second == pytest.approx(recomputed)

    def test_latency_at_least_service_time(self):
        engine = ClusterEngine(_small_topology("SG", service_time_ms=2.0))
        result = engine.run(["k"] * 200)
        assert result.latency.p50 >= 2.0

    def test_utilization_vector_length(self):
        engine = ClusterEngine(_small_topology("SG"))
        result = engine.run(["k"] * 100)
        assert len(result.worker_utilization) == 8
        assert all(0.0 <= value <= 1.0 for value in result.worker_utilization)

    def test_deterministic_given_seed(self):
        workload = list(ZipfWorkload(1.5, 100, 2000, seed=3))
        first = ClusterEngine(_small_topology("PKG")).run(workload)
        second = ClusterEngine(_small_topology("PKG")).run(workload)
        assert first.throughput_per_second == pytest.approx(second.throughput_per_second)
        assert first.latency.p99 == pytest.approx(second.latency.p99)

    def test_summary_keys(self):
        result = ClusterEngine(_small_topology("SG")).run(["k"] * 50)
        summary = result.summary()
        assert {"scheme", "throughput_per_s", "p99_ms"} <= set(summary)


class TestClusterBehaviour:
    """The qualitative claims of Figures 13 and 14 on a small cluster."""

    @pytest.fixture(scope="class")
    def skewed_results(self):
        def factory():
            return ZipfWorkload(exponent=2.0, num_keys=1000, num_messages=20_000, seed=5)

        results = compare_schemes(
            factory,
            schemes=("KG", "PKG", "W-C", "SG"),
            num_sources=8,
            num_workers=16,
            service_time_ms=1.0,
            source_overhead_ms=2.0,
            max_pending_per_source=50,
            seed=1,
        )
        return {result.scheme: result for result in results}

    def test_kg_has_lowest_throughput(self, skewed_results):
        kg = skewed_results["KG"].throughput_per_second
        assert kg <= skewed_results["SG"].throughput_per_second
        assert kg <= skewed_results["W-C"].throughput_per_second

    def test_wchoices_matches_shuffle_throughput(self, skewed_results):
        wc = skewed_results["W-C"].throughput_per_second
        sg = skewed_results["SG"].throughput_per_second
        assert wc == pytest.approx(sg, rel=0.15)

    def test_kg_has_highest_latency(self, skewed_results):
        assert (
            skewed_results["KG"].latency.max_average
            >= skewed_results["SG"].latency.max_average
        )

    def test_wchoices_latency_below_pkg(self, skewed_results):
        assert (
            skewed_results["W-C"].latency.p99
            <= skewed_results["PKG"].latency.p99 + 1e-9
        )


class TestRunnerHelpers:
    def test_run_cluster_experiment_defaults(self):
        workload = ZipfWorkload(1.5, 100, 2000, seed=2)
        result = run_cluster_experiment(
            workload,
            "SG",
            num_sources=4,
            num_workers=8,
            source_overhead_ms=1.0,
        )
        assert result.scheme == "SG"
        assert result.num_messages == 2000

    def test_compare_schemes_returns_one_result_per_scheme(self):
        results = compare_schemes(
            lambda: ZipfWorkload(1.2, 50, 500, seed=1),
            schemes=("KG", "SG"),
            num_sources=2,
            num_workers=4,
            source_overhead_ms=1.0,
        )
        assert [result.scheme for result in results] == ["KG", "SG"]
