"""Unit tests for the building blocks of the cluster simulator."""

from __future__ import annotations

import pytest

from repro.cluster.events import EventQueue, EventType
from repro.cluster.latency import LatencyCollector
from repro.cluster.queues import WorkerQueue
from repro.cluster.topology import ClusterTopology
from repro.exceptions import ConfigurationError, SimulationError


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventType.SOURCE_EMIT, "late")
        queue.push(1.0, EventType.SOURCE_EMIT, "early")
        queue.push(2.0, EventType.WORKER_DONE, "middle")
        assert [queue.pop().payload for _ in range(3)] == ["early", "middle", "late"]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        queue.push(1.0, EventType.SOURCE_EMIT, "first")
        queue.push(1.0, EventType.SOURCE_EMIT, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, EventType.SOURCE_EMIT)

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, EventType.SOURCE_EMIT)
        assert len(queue) == 1
        assert queue


class TestWorkerQueue:
    def test_service_time_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerQueue(service_time_ms=0.0)

    def test_idle_worker_serves_immediately(self):
        worker = WorkerQueue(service_time_ms=2.0)
        assert worker.enqueue(10.0) == 12.0

    def test_busy_worker_queues(self):
        worker = WorkerQueue(service_time_ms=1.0)
        first = worker.enqueue(0.0)
        second = worker.enqueue(0.0)
        assert first == 1.0
        assert second == 2.0

    def test_queue_delay(self):
        worker = WorkerQueue(service_time_ms=1.0)
        worker.enqueue(0.0)
        worker.enqueue(0.0)
        assert worker.queue_delay(0.5) == pytest.approx(1.5)
        assert worker.queue_delay(10.0) == 0.0

    def test_completed_and_busy_time(self):
        worker = WorkerQueue(service_time_ms=1.5)
        worker.enqueue(0.0)
        worker.enqueue(0.0)
        assert worker.completed == 2
        assert worker.busy_time == pytest.approx(3.0)

    def test_utilization(self):
        worker = WorkerQueue(service_time_ms=1.0)
        worker.enqueue(0.0)
        assert worker.utilization(4.0) == pytest.approx(0.25)
        assert worker.utilization(0.0) == 0.0
        assert worker.utilization(0.5) == 1.0


class TestLatencyCollector:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            LatencyCollector(0)

    def test_record_validates_inputs(self):
        collector = LatencyCollector(2)
        with pytest.raises(SimulationError):
            collector.record(2, 1.0)
        with pytest.raises(SimulationError):
            collector.record(0, -1.0)

    def test_stats_aggregation(self):
        collector = LatencyCollector(2)
        for latency in (1.0, 2.0, 3.0):
            collector.record(0, latency)
        collector.record(1, 10.0)
        stats = collector.stats()
        assert stats.samples == 4
        assert stats.max_average == pytest.approx(10.0)
        assert stats.p99 <= 10.0
        assert stats.p50 <= stats.p95 <= stats.p99

    def test_empty_collector_stats(self):
        stats = LatencyCollector(3).stats()
        assert stats.samples == 0
        assert stats.max_average == 0.0

    def test_as_row_keys(self):
        collector = LatencyCollector(1)
        collector.record(0, 5.0)
        row = collector.stats().as_row()
        assert {"max_avg_ms", "p50_ms", "p95_ms", "p99_ms", "samples"} <= set(row)


class TestClusterTopology:
    def test_defaults_match_paper(self):
        topology = ClusterTopology(scheme="PKG")
        assert topology.num_sources == 48
        assert topology.num_workers == 80
        assert topology.service_time_ms == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterTopology(scheme="PKG", num_sources=0)
        with pytest.raises(ConfigurationError):
            ClusterTopology(scheme="PKG", num_workers=0)
        with pytest.raises(ConfigurationError):
            ClusterTopology(scheme="PKG", service_time_ms=0.0)
        with pytest.raises(ConfigurationError):
            ClusterTopology(scheme="PKG", source_overhead_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ClusterTopology(scheme="PKG", max_pending_per_source=0)

    def test_ideal_throughput(self):
        topology = ClusterTopology(scheme="SG", num_workers=10, service_time_ms=2.0)
        assert topology.ideal_throughput_per_second == pytest.approx(5000.0)

    def test_source_limited_throughput(self):
        topology = ClusterTopology(
            scheme="SG", num_sources=10, source_overhead_ms=10.0
        )
        assert topology.source_limited_throughput_per_second == pytest.approx(1000.0)

    def test_source_limit_infinite_when_free(self):
        topology = ClusterTopology(scheme="SG", source_overhead_ms=0.0)
        assert topology.source_limited_throughput_per_second == float("inf")
