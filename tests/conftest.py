"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.analysis.zipf import ZipfDistribution
from repro.workloads.zipf_stream import ZipfWorkload


@pytest.fixture
def rng() -> random.Random:
    """A deterministic python RNG for tests that need arbitrary draws."""
    return random.Random(12345)


@pytest.fixture
def small_zipf_distribution() -> ZipfDistribution:
    """A Zipf(1.5) distribution over 1000 keys."""
    return ZipfDistribution(exponent=1.5, num_keys=1000)


@pytest.fixture
def skewed_workload() -> ZipfWorkload:
    """A strongly skewed stream, small enough for fast unit tests."""
    return ZipfWorkload(exponent=2.0, num_keys=1000, num_messages=20_000, seed=7)


@pytest.fixture
def mild_workload() -> ZipfWorkload:
    """A mildly skewed stream."""
    return ZipfWorkload(exponent=0.8, num_keys=1000, num_messages=20_000, seed=7)
