"""Unit tests for window assigners, windowed aggregation and reconciliation."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.operators.aggregations import CountAggregator, SumAggregator
from repro.operators.reconciliation import (
    aggregation_cost,
    merge_partial_states,
    reconcile,
)
from repro.operators.windows import (
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowedAggregator,
)
from repro.types import Message


class TestTumblingWindowAssigner:
    def test_assign(self):
        assigner = TumblingWindowAssigner(size=10.0)
        assert assigner.assign(0.0) == (0.0,)
        assert assigner.assign(9.99) == (0.0,)
        assert assigner.assign(10.0) == (10.0,)
        assert assigner.assign(23.0) == (20.0,)

    def test_window_end(self):
        assigner = TumblingWindowAssigner(size=5.0)
        assert assigner.window_end(10.0) == 15.0

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            TumblingWindowAssigner(size=0.0)


class TestSlidingWindowAssigner:
    def test_assign_overlapping(self):
        assigner = SlidingWindowAssigner(size=10.0, slide=5.0)
        assert assigner.assign(12.0) == (5.0, 10.0)
        assert assigner.assign(3.0) == (-5.0, 0.0)

    def test_slide_equal_to_size_behaves_like_tumbling(self):
        sliding = SlidingWindowAssigner(size=10.0, slide=10.0)
        tumbling = TumblingWindowAssigner(size=10.0)
        for timestamp in (0.0, 7.0, 15.0, 29.9):
            assert sliding.assign(timestamp) == tumbling.assign(timestamp)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowAssigner(size=10.0, slide=0.0)
        with pytest.raises(ConfigurationError):
            SlidingWindowAssigner(size=10.0, slide=11.0)


class TestWindowedAggregator:
    def _build(self, assigner=None, lateness=0.0):
        return WindowedAggregator(
            assigner=assigner or TumblingWindowAssigner(size=10.0),
            fold=lambda accumulator, value: accumulator + 1,
            initializer=int,
            allowed_lateness=lateness,
        )

    def test_accumulates_per_window_and_key(self):
        aggregator = self._build()
        for timestamp, key in [(1.0, "a"), (2.0, "a"), (3.0, "b")]:
            list(aggregator.process(Message(timestamp, key)))
        windows = aggregator.results_by_window()
        assert windows[0.0] == {"a": 2, "b": 1}

    def test_closes_windows_when_watermark_passes(self):
        aggregator = self._build()
        list(aggregator.process(Message(1.0, "a")))
        emitted = list(aggregator.process(Message(15.0, "a")))
        assert len(emitted) == 1
        closed = emitted[0]
        assert closed.key == "a"
        assert closed.value == (0.0, 1)
        assert closed.timestamp == 10.0

    def test_allowed_lateness_delays_closing(self):
        aggregator = self._build(lateness=10.0)
        list(aggregator.process(Message(1.0, "a")))
        assert list(aggregator.process(Message(15.0, "a"))) == []
        assert list(aggregator.process(Message(25.0, "a"))) != []

    def test_flush_emits_open_windows(self):
        aggregator = self._build()
        list(aggregator.process(Message(1.0, "a")))
        list(aggregator.process(Message(2.0, "b")))
        flushed = aggregator.flush()
        assert len(flushed) == 2
        assert aggregator.state_size() == 0

    def test_watermark_tracks_maximum(self):
        aggregator = self._build()
        list(aggregator.process(Message(5.0, "a")))
        list(aggregator.process(Message(3.0, "a")))
        assert aggregator.watermark == 5.0

    def test_sliding_windows_count_message_multiple_times(self):
        aggregator = self._build(assigner=SlidingWindowAssigner(size=10.0, slide=5.0))
        list(aggregator.process(Message(7.0, "a")))
        windows = aggregator.results_by_window()
        assert set(windows) == {0.0, 5.0}

    def test_rejects_negative_lateness(self):
        with pytest.raises(ConfigurationError):
            self._build(lateness=-1.0)


class TestReconciliation:
    def test_merge_partial_states(self):
        merged = merge_partial_states(
            [{"a": 2, "b": 1}, {"a": 3, "c": 4}], merge=lambda x, y: x + y
        )
        assert merged == {"a": 5, "b": 1, "c": 4}

    def test_merge_empty(self):
        assert merge_partial_states([], merge=lambda x, y: x + y) == {}

    def test_aggregation_cost(self):
        cost = aggregation_cost([{"a": 1, "b": 1}, {"a": 1}, {"a": 1}])
        assert cost.total_entries == 4
        assert cost.distinct_keys == 2
        assert cost.max_replication == 3
        assert cost.average_replication == pytest.approx(2.0)

    def test_aggregation_cost_empty(self):
        cost = aggregation_cost([])
        assert cost.total_entries == 0
        assert cost.average_replication == 0.0

    def test_reconcile_counts(self):
        left, right = CountAggregator(0), CountAggregator(1)
        for key in ["a", "a", "b"]:
            left.update(key, None)
        for key in ["a", "c"]:
            right.update(key, None)
        merged, cost = reconcile([left, right], CountAggregator.merge)
        assert merged == {"a": 3, "b": 1, "c": 1}
        assert cost.max_replication == 2

    def test_reconcile_sums(self):
        left, right = SumAggregator(0), SumAggregator(1)
        left.update("a", 1.5)
        right.update("a", 2.5)
        merged, _ = reconcile([left, right], SumAggregator.merge)
        assert merged["a"] == pytest.approx(4.0)

    def test_reconcile_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            reconcile([], CountAggregator.merge)
