"""Unit tests for the operator base classes and the aggregators."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.operators.aggregations import (
    AverageAggregator,
    CountAggregator,
    MinMaxAggregator,
    SumAggregator,
    TopKAggregator,
)
from repro.operators.base import KeyedState, StatelessOperator
from repro.types import Message


class TestKeyedState:
    def test_get_initialises_once(self):
        state = KeyedState()
        assert state.get("a", int) == 0
        state.put("a", 5)
        assert state.get("a", int) == 5

    def test_peek_does_not_create(self):
        state = KeyedState()
        assert state.peek("missing") is None
        assert "missing" not in state
        assert len(state) == 0

    def test_len_counts_distinct_keys(self):
        state = KeyedState()
        state.put("a", 1)
        state.put("b", 2)
        state.put("a", 3)
        assert len(state) == 2
        assert set(state.keys()) == {"a", "b"}


class TestStatelessOperator:
    def test_from_function_flatmap(self):
        splitter = StatelessOperator.from_function(
            lambda message: [
                Message(message.timestamp, word, 1)
                for word in str(message.value).split()
            ]
        )
        outputs = splitter.execute(Message(0.0, "line-1", "a b c"))
        assert [m.key for m in outputs] == ["a", "b", "c"]
        assert splitter.processed == 1
        assert splitter.state_size() == 0

    def test_invalid_instance_id(self):
        with pytest.raises(ConfigurationError):
            StatelessOperator(lambda message: [], instance_id=-1)


class TestCountAggregator:
    def test_counts_per_key(self):
        counter = CountAggregator()
        for key in ["a", "b", "a", "a"]:
            counter.execute(Message(0.0, key))
        assert counter.result("a") == 3
        assert counter.result("b") == 1
        assert counter.result("missing") == 0

    def test_state_size(self):
        counter = CountAggregator()
        for key in ["a", "b", "c"]:
            counter.update(key, None)
        assert counter.state_size() == 3

    def test_merge(self):
        assert CountAggregator.merge(3, 4) == 7

    def test_partial_state_snapshot(self):
        counter = CountAggregator()
        counter.update("a", None)
        snapshot = counter.partial_state()
        counter.update("a", None)
        assert snapshot == {"a": 1}


class TestSumAggregator:
    def test_sums_values(self):
        aggregator = SumAggregator()
        aggregator.update("a", 2)
        aggregator.update("a", 3.5)
        assert aggregator.result("a") == pytest.approx(5.5)

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            SumAggregator().update("a", "nope")

    def test_merge(self):
        assert SumAggregator.merge(1.5, 2.5) == pytest.approx(4.0)


class TestAverageAggregator:
    def test_average(self):
        aggregator = AverageAggregator()
        for value in (2, 4, 6):
            aggregator.update("a", value)
        assert aggregator.result("a") == pytest.approx(4.0)

    def test_result_for_unknown_key(self):
        assert AverageAggregator().result("missing") == 0.0

    def test_merge_preserves_exact_average(self):
        left = AverageAggregator()
        right = AverageAggregator()
        for value in (1, 2, 3):
            left.update("a", value)
        for value in (10, 20):
            right.update("a", value)
        merged = AverageAggregator.merge(
            left.state.peek("a"), right.state.peek("a")
        )
        total, count = merged
        assert total / count == pytest.approx((1 + 2 + 3 + 10 + 20) / 5)

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            AverageAggregator().update("a", object())


class TestMinMaxAggregator:
    def test_tracks_extremes(self):
        aggregator = MinMaxAggregator()
        for value in (5, -2, 9, 0):
            aggregator.update("a", value)
        assert aggregator.result("a") == (-2.0, 9.0)

    def test_unknown_key(self):
        assert MinMaxAggregator().result("missing") is None

    def test_merge(self):
        assert MinMaxAggregator.merge((1.0, 5.0), (-3.0, 4.0)) == (-3.0, 5.0)

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            MinMaxAggregator().update("a", None)


class TestTopKAggregator:
    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            TopKAggregator(k=0)

    def test_local_top(self):
        aggregator = TopKAggregator(k=2)
        for item in ["x"] * 5 + ["y"] * 3 + ["z"]:
            aggregator.update(item, None)
        top = aggregator.result()
        assert top[0][0] == "x"
        assert len(top) == 2

    def test_value_takes_precedence_over_key(self):
        aggregator = TopKAggregator(k=1)
        aggregator.update("ignored-key", "item")
        assert aggregator.result()[0][0] == "item"

    def test_empty_result(self):
        assert TopKAggregator(k=3).result() == []

    def test_merged_top_across_instances(self):
        left = TopKAggregator(k=2, instance_id=0)
        right = TopKAggregator(k=2, instance_id=1)
        for item in ["x"] * 5 + ["y"] * 2:
            left.update(item, None)
        for item in ["x"] * 4 + ["z"] * 3:
            right.update(item, None)
        merged = left.merged_top([right])
        assert merged[0][0] == "x"
        assert merged[0][1] >= 9

    def test_merged_top_with_empty_instances(self):
        assert TopKAggregator(k=2).merged_top([TopKAggregator(k=2)]) == []
