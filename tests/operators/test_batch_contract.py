"""The operator bulk contract: execute_batch ≡ scalar execute loop.

Every bulk override (aggregator per-key pre-reduction, the windowed
earliest-deadline guard, the reconciliation pre-merge) must leave the
operator in exactly the state the scalar loop would, return outputs
grouped per input in scalar emission order, and advance ``processed``
identically.
"""

from __future__ import annotations

import random

import pytest

from repro.operators.aggregations import (
    AverageAggregator,
    CountAggregator,
    MinMaxAggregator,
    SumAggregator,
    TopKAggregator,
)
from repro.operators.base import StatelessOperator
from repro.operators.reconciliation import ReconciliationSink
from repro.operators.windows import (
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowedAggregator,
)
from repro.types import Message


def _messages(count: int = 2_000, num_keys: int = 37, seed: int = 1):
    rng = random.Random(seed)
    return [
        Message(float(index), f"k{rng.randrange(num_keys)}", rng.randrange(1, 9))
        for index in range(count)
    ]


AGGREGATOR_FACTORIES = {
    "count": CountAggregator,
    "sum": SumAggregator,
    "average": AverageAggregator,
    "minmax": MinMaxAggregator,
    "topk": lambda: TopKAggregator(k=5),
}


class TestAggregatorBatches:
    @pytest.mark.parametrize("name", sorted(AGGREGATOR_FACTORIES))
    def test_update_batch_matches_scalar_updates(self, name):
        factory = AGGREGATOR_FACTORIES[name]
        scalar, batched = factory(), factory()
        messages = _messages()

        for message in messages:
            outputs = scalar.execute(message)
            assert outputs == []
        chunk = 311  # deliberately not a divisor
        for start in range(0, len(messages), chunk):
            grouped = batched.execute_batch(messages[start : start + chunk])
            assert all(len(outputs) == 0 for outputs in grouped)

        assert batched.processed == scalar.processed == len(messages)
        assert batched.state_size() == scalar.state_size()
        if name == "topk":
            assert batched.result() == scalar.result()
        else:
            assert batched.partial_state() == scalar.partial_state()

    def test_count_batch_is_bit_exact(self):
        scalar, batched = CountAggregator(), CountAggregator()
        messages = _messages(count=5_000, num_keys=11)
        for message in messages:
            scalar.execute(message)
        batched.execute_batch(messages)
        assert batched.partial_state() == scalar.partial_state()

    @pytest.mark.parametrize("factory", [SumAggregator, AverageAggregator])
    def test_float_folds_are_bit_identical(self, factory):
        # Regression: a pre-reduce-from-zero batch fold reassociates float
        # addition (state + (v1 + v2) vs ((state + v1) + v2)) and drifts in
        # the last ulp; the bulk path must seed from the current state and
        # fold in arrival order instead.
        rng = random.Random(17)
        messages = [
            Message(float(index), f"k{rng.randrange(5)}", rng.random() * 100.0)
            for index in range(10_000)
        ]
        scalar, batched = factory(), factory()
        for message in messages:
            scalar.execute(message)
        chunk = 1024
        for start in range(0, len(messages), chunk):
            batched.execute_batch(messages[start : start + chunk])
        assert batched.partial_state() == scalar.partial_state()

    def test_sum_batch_rejects_non_numeric(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            SumAggregator().update_batch([("k", "not-a-number")])


class TestStatelessBatches:
    def test_outputs_grouped_per_input(self):
        operator = StatelessOperator(
            lambda message: [
                Message(message.timestamp, word, 1)
                for word in str(message.value).split()
            ]
        )
        messages = [
            Message(0.0, "a", "x y"),
            Message(1.0, "b", ""),
            Message(2.0, "c", "z"),
        ]
        grouped = operator.execute_batch(messages)
        assert [len(outputs) for outputs in grouped] == [2, 0, 1]
        assert [m.key for m in grouped[0]] == ["x", "y"]
        assert operator.processed == 3


@pytest.mark.parametrize(
    "assigner_factory",
    [
        lambda: TumblingWindowAssigner(32.0),
        lambda: SlidingWindowAssigner(size=48.0, slide=16.0),
    ],
    ids=["tumbling", "sliding"],
)
class TestWindowedBatches:
    def _make(self, assigner_factory, lateness: float = 0.0):
        return WindowedAggregator(
            assigner_factory(),
            lambda accumulator, value: accumulator + value,
            int,
            allowed_lateness=lateness,
        )

    def test_batch_emissions_identical_to_scalar(self, assigner_factory):
        scalar = self._make(assigner_factory)
        batched = self._make(assigner_factory)
        messages = _messages(count=3_000, num_keys=23)

        scalar_out = [scalar.execute(message) for message in messages]
        batched_out = []
        chunk = 257
        for start in range(0, len(messages), chunk):
            batched_out.extend(
                list(outputs)
                for outputs in batched.execute_batch(messages[start : start + chunk])
            )

        assert batched_out == scalar_out
        assert batched.state_size() == scalar.state_size()
        assert batched.watermark == scalar.watermark
        assert batched.flush() == scalar.flush()

    def test_batch_with_lateness(self, assigner_factory):
        scalar = self._make(assigner_factory, lateness=40.0)
        batched = self._make(assigner_factory, lateness=40.0)
        messages = _messages(count=1_500, num_keys=7, seed=4)
        scalar_out = [scalar.execute(message) for message in messages]
        batched_out = [list(o) for o in batched.execute_batch(messages)]
        assert batched_out == scalar_out
        assert batched.flush() == scalar.flush()


class TestReconciliationSinkBatches:
    def test_streaming_merge_matches_scalar(self):
        scalar = ReconciliationSink(CountAggregator.merge)
        batched = ReconciliationSink(CountAggregator.merge)
        messages = _messages(count=2_000, num_keys=13, seed=2)
        for message in messages:
            scalar.execute(message)
        chunk = 173
        for start in range(0, len(messages), chunk):
            batched.execute_batch(messages[start : start + chunk])
        assert batched.partial_state() == scalar.partial_state()
        assert batched.partials_merged == scalar.partials_merged

    def test_partials_merged_counts_updates(self):
        sink = ReconciliationSink(CountAggregator.merge)
        sink.update("a", 2)
        sink.update("a", 3)
        sink.update("b", 1)
        assert sink.partials_merged == {"a": 2, "b": 1}
        assert sink.state.peek("a") == 5

    def test_merge_order_is_associative_fold(self):
        # min as the merge: associative, non-commutative folds would differ
        # — the sink documents the associativity requirement.
        sink = ReconciliationSink(min)
        sink.update_batch([("k", 4), ("k", 2), ("k", 9)])
        sink.update_batch([("k", 3)])
        assert sink.state.peek("k") == 2
