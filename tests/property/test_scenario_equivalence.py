"""Scenario streams are representation-invariant for every scheme.

Cataloged scenarios must produce byte-identical simulation results whether
the stream is consumed scalar (``batch_size=1``), batched, or columnar —
including when a rescale plan fires mid-stream.  This pins the scenario
workload into the same equivalence contract the Zipf/drift/synthetic
workloads already satisfy (``test_columnar_equivalence.py``).
"""

from __future__ import annotations

import pytest

from repro.partitioning.registry import available_schemes
from repro.scenarios import CATALOG, build_workload
from repro.simulation.runner import run_simulation

#: Constructor extras for schemes whose signature requires them.  AD's
#: per-source clocks are tuned so it actually switches schemes mid-stream
#: at this scale (2 000 messages per source) — the equivalence must hold
#: *through* the switches, not only in the never-switching case.
SCHEME_OPTIONS: dict[str, dict[str, object]] = {
    "GREEDY-D": {"num_choices": 4},
    "FIXED-D": {"num_choices": 5},
    "AD": {"check_interval": 250, "policy": "dwell=500"},
}

NUM_MESSAGES = 6_000
NUM_KEYS = 400


def _snapshot(result):
    return (
        result.worker_loads,
        result.final_imbalance,
        result.memory_entries,
        result.head_key_count,
        result.distinct_key_count,
        result.migration.to_dict() if result.migration else None,
        result.switch_log,
    )


def _run(name, scheme, *, batch_size, columnar, rescale_plan=None):
    workload = build_workload(name, NUM_MESSAGES, NUM_KEYS)
    return run_simulation(
        workload,
        scheme=scheme,
        num_workers=12,
        num_sources=3,
        scheme_options=SCHEME_OPTIONS.get(scheme, {}),
        batch_size=batch_size,
        columnar=columnar,
        rescale_plan=rescale_plan,
    )


class TestScenarioRepresentationInvariance:
    @pytest.mark.parametrize("scheme", available_schemes())
    @pytest.mark.parametrize("name", list(CATALOG))
    def test_scalar_batched_columnar_identical(self, name, scheme):
        scalar = _run(name, scheme, batch_size=1, columnar=False)
        batched = _run(name, scheme, batch_size=389, columnar=False)
        columnar = _run(name, scheme, batch_size=613, columnar=True)
        assert _snapshot(batched) == _snapshot(scalar)
        assert _snapshot(columnar) == _snapshot(scalar)

    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "W-C", "CH", "AD"])
    @pytest.mark.parametrize(
        "name", ["flash_crowd", "single_key_flood", "drift_mixture"]
    )
    def test_rescale_plans_fire_identically(self, name, scheme):
        plan = "join@1500,leave@3200,fail@4800"
        scalar = _run(name, scheme, batch_size=1, columnar=False, rescale_plan=plan)
        batched = _run(
            name, scheme, batch_size=389, columnar=False, rescale_plan=plan
        )
        columnar = _run(
            name, scheme, batch_size=613, columnar=True, rescale_plan=plan
        )
        assert _snapshot(batched) == _snapshot(scalar)
        assert _snapshot(columnar) == _snapshot(scalar)


class TestAdaptiveSwitchesAreRepresentationInvariant:
    """The AD rows above must not pass vacuously: the adaptive scheme has
    to *actually switch* mid-stream at this scale, and the resulting switch
    log (positions, scheme transitions, move costs) must be identical
    across the scalar, batched and columnar paths."""

    @pytest.mark.parametrize("name", ["hot_key_churn", "drift_mixture"])
    def test_ad_switches_and_the_log_matches_across_modes(self, name):
        scalar = _run(name, "AD", batch_size=1, columnar=False)
        batched = _run(name, "AD", batch_size=389, columnar=False)
        columnar = _run(name, "AD", batch_size=613, columnar=True)
        assert scalar.switch_log, (
            "AD never switched mid-stream — the adaptive equivalence "
            "checks would be vacuous; retune its clocks for this scale"
        )
        assert batched.switch_log == scalar.switch_log
        assert columnar.switch_log == scalar.switch_log

    def test_ad_switches_survive_a_rescale_plan(self):
        plan = "join@1500,leave@3200,fail@4800"
        scalar = _run(
            "drift_mixture", "AD", batch_size=1, columnar=False,
            rescale_plan=plan,
        )
        columnar = _run(
            "drift_mixture", "AD", batch_size=613, columnar=True,
            rescale_plan=plan,
        )
        assert scalar.migration is not None
        assert scalar.switch_log == columnar.switch_log
        assert _snapshot(scalar) == _snapshot(columnar)
