"""Batch routing must be byte-identical to one-at-a-time routing.

The batched fast path (vectorized hashing, fused sketch updates, the W-C
selection heap) is pure optimisation: for every scheme, every workload and
every chunking, ``route_batch`` must produce the exact worker sequence and
final load vector of sequential ``route`` calls.  These tests pin that
contract — they are the safety net that lets future PRs optimise the hot
path further without changing experiment outputs.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.registry import available_schemes, create_partitioner
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

#: Constructor extras for schemes whose signature requires them.
SCHEME_OPTIONS: dict[str, dict[str, int]] = {
    "GREEDY-D": {"num_choices": 4},
    "FIXED-D": {"num_choices": 5},
}


def _make(scheme: str, num_workers: int, seed: int):
    return create_partitioner(
        scheme, num_workers=num_workers, seed=seed, **SCHEME_OPTIONS.get(scheme, {})
    )


def _zipf_keys(seed: int, n: int = 12_000) -> list:
    return list(ZipfWorkload(1.4, 3_000, n, seed=seed))


def _uniform_keys(seed: int, n: int = 12_000) -> list:
    rng = random.Random(seed)
    return [f"key-{rng.randrange(4_000)}" for _ in range(n)]


class TestBatchMatchesSequential:
    @pytest.mark.parametrize("scheme", available_schemes())
    @pytest.mark.parametrize("stream", ["zipf", "uniform"])
    @pytest.mark.parametrize("seed", [0, 17])
    def test_worker_sequence_and_loads_identical(self, scheme, stream, seed):
        keys = _zipf_keys(seed) if stream == "zipf" else _uniform_keys(seed)
        sequential = _make(scheme, num_workers=40, seed=seed)
        batched = _make(scheme, num_workers=40, seed=seed)

        expected = [sequential.route(key) for key in keys]
        actual: list[int] = []
        flags: list[bool] = []
        chunk = 997  # deliberately not a divisor of the stream length
        for start in range(0, len(keys), chunk):
            actual.extend(
                batched.route_batch(keys[start : start + chunk], head_flags=flags)
            )

        assert actual == expected
        assert batched.local_loads == sequential.local_loads
        assert batched.messages_routed == sequential.messages_routed == len(keys)
        assert len(flags) == len(keys)

    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "W-C", "RR"])
    def test_head_flags_match_decision_path(self, scheme):
        keys = _zipf_keys(3, n=6_000)
        decisions = _make(scheme, num_workers=20, seed=5)
        batched = _make(scheme, num_workers=20, seed=5)

        expected = [decisions.route_with_decision(key) for key in keys]
        flags: list[bool] = []
        actual = batched.route_batch(keys, head_flags=flags)

        assert actual == [decision.worker for decision in expected]
        assert flags == [decision.is_head for decision in expected]

    @given(
        scheme=st.sampled_from(["KG", "SG", "PKG", "D-C", "W-C", "RR"]),
        num_workers=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
        stream=st.lists(st.integers(min_value=0, max_value=60), max_size=250),
        chunk=st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_streams_and_chunkings(
        self, scheme, num_workers, seed, stream, chunk
    ):
        sequential = _make(scheme, num_workers=num_workers, seed=seed)
        batched = _make(scheme, num_workers=num_workers, seed=seed)
        expected = [sequential.route(key) for key in stream]
        actual: list[int] = []
        for start in range(0, len(stream), chunk):
            actual.extend(batched.route_batch(stream[start : start + chunk]))
        assert actual == expected
        assert batched.local_loads == sequential.local_loads

    def test_warmup_boundary_is_respected(self):
        # The head test must stay disabled for exactly warmup_messages - 1
        # messages in both paths; a hot-only stream makes any off-by-one in
        # the inlined warmup comparison flip a decision.
        keys = ["hot"] * 400
        sequential = create_partitioner("W-C", num_workers=8, seed=1, warmup_messages=100)
        batched = create_partitioner("W-C", num_workers=8, seed=1, warmup_messages=100)
        expected = [sequential.route(key) for key in keys]
        assert batched.route_batch(keys) == expected


class TestEngineBatchingInvariance:
    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "W-C", "SG"])
    def test_simulation_results_independent_of_batch_size(self, scheme):
        def run(batch_size: int):
            return run_simulation(
                ZipfWorkload(1.4, 2_000, 30_000, seed=2),
                scheme=scheme,
                num_workers=25,
                num_sources=5,
                seed=4,
                track_interval=500,
                track_head_tail=True,
                batch_size=batch_size,
            )

        scalar = run(1)
        batched = run(613)
        assert batched.worker_loads == scalar.worker_loads
        assert batched.final_imbalance == scalar.final_imbalance
        assert batched.head_loads == scalar.head_loads
        assert batched.tail_loads == scalar.tail_loads
        assert batched.memory_entries == scalar.memory_entries
        assert batched.head_key_count == scalar.head_key_count
        assert batched.time_series.values == scalar.time_series.values
