"""Batch routing must be byte-identical to one-at-a-time routing.

The batched fast path (vectorized hashing, fused sketch updates, the W-C
selection heap) is pure optimisation: for every scheme, every workload and
every chunking, ``route_batch`` must produce the exact worker sequence and
final load vector of sequential ``route`` calls.  These tests pin that
contract — they are the safety net that lets future PRs optimise the hot
path further without changing experiment outputs.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.registry import available_schemes, create_partitioner
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

#: Constructor extras for schemes whose signature requires them.
SCHEME_OPTIONS: dict[str, dict[str, int]] = {
    "GREEDY-D": {"num_choices": 4},
    "FIXED-D": {"num_choices": 5},
}


def _make(scheme: str, num_workers: int, seed: int):
    return create_partitioner(
        scheme, num_workers=num_workers, seed=seed, **SCHEME_OPTIONS.get(scheme, {})
    )


def _zipf_keys(seed: int, n: int = 12_000) -> list:
    return list(ZipfWorkload(1.4, 3_000, n, seed=seed))


def _uniform_keys(seed: int, n: int = 12_000) -> list:
    rng = random.Random(seed)
    return [f"key-{rng.randrange(4_000)}" for _ in range(n)]


class TestBatchMatchesSequential:
    @pytest.mark.parametrize("scheme", available_schemes())
    @pytest.mark.parametrize("stream", ["zipf", "uniform"])
    @pytest.mark.parametrize("seed", [0, 17])
    def test_worker_sequence_and_loads_identical(self, scheme, stream, seed):
        keys = _zipf_keys(seed) if stream == "zipf" else _uniform_keys(seed)
        sequential = _make(scheme, num_workers=40, seed=seed)
        batched = _make(scheme, num_workers=40, seed=seed)

        expected = [sequential.route(key) for key in keys]
        actual: list[int] = []
        flags: list[bool] = []
        chunk = 997  # deliberately not a divisor of the stream length
        for start in range(0, len(keys), chunk):
            actual.extend(
                batched.route_batch(keys[start : start + chunk], head_flags=flags)
            )

        assert actual == expected
        assert batched.local_loads == sequential.local_loads
        assert batched.messages_routed == sequential.messages_routed == len(keys)
        assert len(flags) == len(keys)

    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "W-C", "RR"])
    def test_head_flags_match_decision_path(self, scheme):
        keys = _zipf_keys(3, n=6_000)
        decisions = _make(scheme, num_workers=20, seed=5)
        batched = _make(scheme, num_workers=20, seed=5)

        expected = [decisions.route_with_decision(key) for key in keys]
        flags: list[bool] = []
        actual = batched.route_batch(keys, head_flags=flags)

        assert actual == [decision.worker for decision in expected]
        assert flags == [decision.is_head for decision in expected]

    @given(
        scheme=st.sampled_from(["KG", "SG", "PKG", "D-C", "W-C", "RR"]),
        num_workers=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
        stream=st.lists(st.integers(min_value=0, max_value=60), max_size=250),
        chunk=st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_streams_and_chunkings(
        self, scheme, num_workers, seed, stream, chunk
    ):
        sequential = _make(scheme, num_workers=num_workers, seed=seed)
        batched = _make(scheme, num_workers=num_workers, seed=seed)
        expected = [sequential.route(key) for key in stream]
        actual: list[int] = []
        for start in range(0, len(stream), chunk):
            actual.extend(batched.route_batch(stream[start : start + chunk]))
        assert actual == expected
        assert batched.local_loads == sequential.local_loads

    def test_warmup_boundary_is_respected(self):
        # The head test must stay disabled for exactly warmup_messages - 1
        # messages in both paths; a hot-only stream makes any off-by-one in
        # the inlined warmup comparison flip a decision.
        keys = ["hot"] * 400
        sequential = create_partitioner("W-C", num_workers=8, seed=1, warmup_messages=100)
        batched = create_partitioner("W-C", num_workers=8, seed=1, warmup_messages=100)
        expected = [sequential.route(key) for key in keys]
        assert batched.route_batch(keys) == expected


class TestDChoicesCheckpointEquivalence:
    """D-Choices' batched driver splits chunks at solver-throttle
    checkpoints; the split arithmetic must reproduce the scalar check
    cadence for any check/recompute interval and any chunking."""

    @pytest.mark.parametrize("check_interval", [1, 3, 50, 200])
    @pytest.mark.parametrize("chunk", [1, 7, 256, 4096])
    def test_any_throttle_cadence(self, check_interval, chunk):
        keys = _zipf_keys(8, n=5_000)
        options = dict(
            num_workers=16,
            seed=2,
            warmup_messages=50,
            check_interval=check_interval,
            recompute_interval=max(2, check_interval * 3),
        )
        sequential = create_partitioner("D-C", **options)
        batched = create_partitioner("D-C", **options)
        expected = [sequential.route(key) for key in keys]
        actual: list[int] = []
        flags: list[bool] = []
        for start in range(0, len(keys), chunk):
            actual.extend(
                batched.route_batch(keys[start : start + chunk], head_flags=flags)
            )
        assert actual == expected
        assert batched.local_loads == sequential.local_loads
        assert len(flags) == len(keys)
        assert batched.current_solution() == sequential.current_solution()

    def test_explicit_theta(self):
        keys = _zipf_keys(4, n=6_000)
        sequential = create_partitioner(
            "D-C", num_workers=12, seed=3, theta=0.03, warmup_messages=0
        )
        batched = create_partitioner(
            "D-C", num_workers=12, seed=3, theta=0.03, warmup_messages=0
        )
        expected = [sequential.route(key) for key in keys]
        actual: list[int] = []
        for start in range(0, len(keys), 512):
            actual.extend(batched.route_batch(keys[start : start + 512]))
        assert actual == expected

    def test_all_tail_stream(self):
        # No key ever reaches the head: the driver must stay on its bulk
        # path (one stop-at-head scan per chunk) and still match scalar.
        keys = [f"cold-{index}" for index in range(5_000)]
        sequential = create_partitioner("D-C", num_workers=10, seed=1)
        batched = create_partitioner("D-C", num_workers=10, seed=1)
        expected = [sequential.route(key) for key in keys]
        actual: list[int] = []
        for start in range(0, len(keys), 1024):
            actual.extend(batched.route_batch(keys[start : start + 1024]))
        assert actual == expected


class TestInjectedSketchEquivalence:
    """The classified pipeline must stay byte-identical under every
    FrequencyEstimator of the ablation suite — including the ones without a
    fused bulk override, which exercise the reference fallback."""

    @staticmethod
    def _sketches():
        from repro.sketches.count_min import CountMinSketch
        from repro.sketches.lossy_counting import LossyCounting
        from repro.sketches.misra_gries import MisraGries

        return {
            "misra-gries": lambda: MisraGries(capacity=60),
            "lossy-counting": lambda: LossyCounting(epsilon=0.02),
            "count-min": lambda: CountMinSketch(width=256, depth=3, top_k=32, seed=5),
        }

    @pytest.mark.parametrize("scheme", ["D-C", "W-C", "RR"])
    @pytest.mark.parametrize("sketch_name", ["misra-gries", "lossy-counting", "count-min"])
    def test_batch_matches_scalar_with_injected_sketch(self, scheme, sketch_name):
        keys = _zipf_keys(6, n=6_000)
        build = self._sketches()[sketch_name]
        sequential = create_partitioner(
            scheme, num_workers=14, seed=4, sketch=build(), warmup_messages=100
        )
        batched = create_partitioner(
            scheme, num_workers=14, seed=4, sketch=build(), warmup_messages=100
        )
        expected = [sequential.route(key) for key in keys]
        actual: list[int] = []
        flags: list[bool] = []
        for start in range(0, len(keys), 701):
            actual.extend(
                batched.route_batch(keys[start : start + 701], head_flags=flags)
            )
        assert actual == expected
        assert batched.local_loads == sequential.local_loads
        assert len(flags) == len(keys)

    def test_duck_typed_estimator_without_bulk_ops(self):
        # A minimal estimator that predates the bulk contract: only add /
        # estimate / total / entries.  The pipeline must fall back to the
        # reference loop and still match scalar routing.
        class MinimalSketch:
            def __init__(self):
                self.counts: dict = {}
                self.total = 0

            def add(self, key, count=1):
                self.counts[key] = self.counts.get(key, 0) + count
                self.total += count

            def estimate(self, key):
                return self.counts.get(key, 0)

            def heavy_hitters(self, threshold):
                cutoff = threshold * self.total
                return {k: c for k, c in self.counts.items() if c >= cutoff}

        keys = _zipf_keys(2, n=4_000)
        for scheme in ("D-C", "W-C"):
            sequential = create_partitioner(
                scheme, num_workers=9, seed=6, sketch=MinimalSketch()
            )
            batched = create_partitioner(
                scheme, num_workers=9, seed=6, sketch=MinimalSketch()
            )
            expected = [sequential.route(key) for key in keys]
            actual: list[int] = []
            for start in range(0, len(keys), 333):
                actual.extend(batched.route_batch(keys[start : start + 333]))
            assert actual == expected, scheme


class TestEngineBatchingInvariance:
    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "W-C", "SG"])
    def test_simulation_results_independent_of_batch_size(self, scheme):
        def run(batch_size: int):
            return run_simulation(
                ZipfWorkload(1.4, 2_000, 30_000, seed=2),
                scheme=scheme,
                num_workers=25,
                num_sources=5,
                seed=4,
                track_interval=500,
                track_head_tail=True,
                batch_size=batch_size,
            )

        scalar = run(1)
        batched = run(613)
        assert batched.worker_loads == scalar.worker_loads
        assert batched.final_imbalance == scalar.final_imbalance
        assert batched.head_loads == scalar.head_loads
        assert batched.tail_loads == scalar.tail_loads
        assert batched.memory_entries == scalar.memory_entries
        assert batched.head_key_count == scalar.head_key_count
        assert batched.time_series.values == scalar.time_series.values
