"""Batched dataflow execution must be byte-identical to scalar execution.

The stage-by-stage micro-batch engine (vectorized edge routing, bulk
operator execution, order-key merging at fan-in vertices) is pure
optimisation: for every scheme, every topology shape and every batch size,
``run_topology(batch_size=n)`` must produce the exact per-vertex metrics —
worker sequences, per-instance loads, state sizes — and the exact
reconciled state of depth-first scalar execution (``batch_size=1``).
These tests pin that contract, mirroring what
``test_batch_equivalence.py`` pins for the routing engines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Topology
from repro.dataflow.runtime import run_topology
from repro.operators.aggregations import CountAggregator
from repro.operators.base import StatelessOperator
from repro.operators.reconciliation import ReconciliationSink
from repro.operators.windows import TumblingWindowAssigner, WindowedAggregator
from repro.types import Message
from repro.workloads.zipf_stream import ZipfWorkload

SCHEMES = ("KG", "SG", "PKG", "D-C", "W-C", "RR")


def _splitter(instance_id: int) -> StatelessOperator:
    return StatelessOperator(
        lambda message: [Message(message.timestamp, f"w-{message.key}", 1)],
        instance_id=instance_id,
    )


def _windowed(instance_id: int) -> WindowedAggregator:
    return WindowedAggregator(
        TumblingWindowAssigner(64.0),
        lambda accumulator, _: accumulator + 1,
        int,
        instance_id=instance_id,
    )


def _rekeyer(instance_id: int) -> StatelessOperator:
    return StatelessOperator(
        lambda message: [
            Message(
                message.timestamp,
                f"{message.value[0]:g}|{message.key}",
                message.value[1],
            )
        ],
        instance_id=instance_id,
    )


def _sink(instance_id: int) -> ReconciliationSink:
    return ReconciliationSink(CountAggregator.merge, instance_id=instance_id)


def _duplicator(instance_id: int) -> StatelessOperator:
    return StatelessOperator(
        lambda message: [
            Message(message.timestamp, message.key, 1),
            Message(message.timestamp, f"{message.key}+", 2),
        ],
        instance_id=instance_id,
    )


def _single_stage(scheme: str) -> Topology:
    topology = Topology("count")
    topology.add_vertex("count", CountAggregator, parallelism=6)
    topology.set_source("count", scheme=scheme)
    return topology


def _multi_stage(scheme: str) -> Topology:
    """The Figure 17 shape: map → windowed counts → rekey → reconcile."""
    return (
        Topology("two-level")
        .add_vertex("split", _splitter, parallelism=3)
        .add_vertex("aggregate", _windowed, parallelism=8)
        .add_vertex("rekey", _rekeyer, parallelism=2)
        .add_vertex("reconcile", _sink, parallelism=4)
        .set_source("split", scheme="SG")
        .add_edge("split", "aggregate", scheme=scheme)
        .add_edge("aggregate", "rekey", scheme="SG")
        .add_edge("rekey", "reconcile", scheme="KG")
    )


def _diamond(scheme: str) -> Topology:
    """Fan-out then fan-in: exercises the order-key merge path."""
    return (
        Topology("diamond")
        .add_vertex("dup", _duplicator, parallelism=2)
        .add_vertex("left", _splitter, parallelism=3)
        .add_vertex("right", _splitter, parallelism=2)
        .add_vertex("join", CountAggregator, parallelism=5)
        .set_source("dup", scheme="SG")
        .add_edge("dup", "left", scheme=scheme)
        .add_edge("dup", "right", scheme="SG")
        .add_edge("left", "join", scheme="PKG")
        .add_edge("right", "join", scheme=scheme)
    )


TOPOLOGIES = {
    "single": _single_stage,
    "multi": _multi_stage,
    "diamond": _diamond,
}


def _fingerprint(topology_factory, scheme: str, batch_size: int,
                 num_messages: int = 6_000, num_sources: int = 3):
    """Everything a run observably produces, as a comparable value."""
    workload = list(ZipfWorkload(1.4, 400, num_messages, seed=9))
    result = run_topology(
        topology_factory(scheme),
        workload,
        seed=5,
        num_external_sources=num_sources,
        batch_size=batch_size,
    )
    fingerprint = {"ingested": result.messages_ingested}
    for name, metrics in result.metrics.items():
        fingerprint[name] = (
            metrics.messages,
            tuple(metrics.instance_loads),
            tuple(metrics.state_sizes),
            metrics.imbalance,
        )
    for name, instances in result.instances.items():
        states = []
        for instance in instances:
            state = getattr(instance, "partial_state", None)
            if state is not None:
                states.append(tuple(sorted(state().items())))
        fingerprint[f"{name}-state"] = tuple(states)
    return fingerprint


class TestBatchedTopologyMatchesScalar:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("shape", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("batch_size", [7, 1024])
    def test_metrics_identical_across_schemes_and_shapes(
        self, scheme, shape, batch_size
    ):
        factory = TOPOLOGIES[shape]
        scalar = _fingerprint(factory, scheme, batch_size=1)
        batched = _fingerprint(factory, scheme, batch_size=batch_size)
        assert batched == scalar

    def test_batch_size_larger_than_stream(self):
        scalar = _fingerprint(_multi_stage, "D-C", batch_size=1,
                              num_messages=500)
        batched = _fingerprint(_multi_stage, "D-C", batch_size=10_000,
                               num_messages=500)
        assert batched == scalar

    def test_single_external_source(self):
        scalar = _fingerprint(_multi_stage, "W-C", batch_size=1,
                              num_sources=1)
        batched = _fingerprint(_multi_stage, "W-C", batch_size=513,
                               num_sources=1)
        assert batched == scalar

    def test_reconciled_counts_are_exact_under_batching(self):
        workload = list(ZipfWorkload(1.6, 200, 8_000, seed=3))
        result = run_topology(
            _single_stage("D-C"), workload, seed=2,
            num_external_sources=4, batch_size=256,
        )
        from collections import Counter

        from repro.operators.reconciliation import reconcile

        merged, _ = reconcile(result.instances["count"], CountAggregator.merge)
        assert merged == dict(Counter(workload))

    @given(
        scheme=st.sampled_from(SCHEMES),
        shape=st.sampled_from(sorted(TOPOLOGIES)),
        batch_size=st.integers(min_value=2, max_value=300),
        num_messages=st.integers(min_value=1, max_value=600),
        num_sources=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_batch_sizes_and_stream_lengths(
        self, scheme, shape, batch_size, num_messages, num_sources
    ):
        factory = TOPOLOGIES[shape]
        scalar = _fingerprint(
            factory, scheme, batch_size=1,
            num_messages=num_messages, num_sources=num_sources,
        )
        batched = _fingerprint(
            factory, scheme, batch_size=batch_size,
            num_messages=num_messages, num_sources=num_sources,
        )
        assert batched == scalar
