"""Columnar routing must be byte-identical to scalar routing, end to end.

The columnar pipeline (``KeyDictionary`` interning at the source,
``route_batch_columnar`` on id arrays, id-space operator folds) is pure
optimisation: for every scheme, every workload, every chunking — and with
rescale plans firing mid-stream — the worker sequence, load vectors, state
contents and migration costs must equal the scalar reference bit for bit.
These tests pin that contract at each layer: partitioner, simulation
engine, ``route_stream`` and the dataflow runtime.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import route_stream
from repro.partitioning.registry import available_schemes, create_partitioner
from repro.simulation.runner import run_simulation
from repro.workloads.columnar import ColumnarBatch, KeyDictionary
from repro.workloads.drift import DriftingZipfWorkload
from repro.workloads.synthetic import WikipediaLikeWorkload
from repro.workloads.zipf_stream import ZipfWorkload

#: Constructor extras for schemes whose signature requires them.
SCHEME_OPTIONS: dict[str, dict[str, int]] = {
    "GREEDY-D": {"num_choices": 4},
    "FIXED-D": {"num_choices": 5},
}


def _make(scheme: str, num_workers: int, seed: int):
    return create_partitioner(
        scheme, num_workers=num_workers, seed=seed, **SCHEME_OPTIONS.get(scheme, {})
    )


def _streams(name: str, seed: int) -> list:
    if name == "zipf":
        return list(ZipfWorkload(1.4, 3_000, 12_000, seed=seed))
    if name == "drift":
        return list(
            DriftingZipfWorkload(1.4, 1_000, 12_000, num_epochs=5, seed=seed)
        )
    return list(WikipediaLikeWorkload(12_000, seed=seed).keys())


class TestColumnarMatchesScalar:
    @pytest.mark.parametrize("scheme", available_schemes())
    @pytest.mark.parametrize("stream", ["zipf", "drift", "wikipedia"])
    def test_worker_sequence_and_loads_identical(self, scheme, stream):
        keys = _streams(stream, seed=7)
        scalar = _make(scheme, num_workers=40, seed=7)
        columnar = _make(scheme, num_workers=40, seed=7)

        expected = [scalar.route(key) for key in keys]
        dictionary = KeyDictionary()
        actual: list[int] = []
        flags: list[bool] = []
        chunk = 997  # deliberately not a divisor of the stream length
        for start in range(0, len(keys), chunk):
            ids = dictionary.intern_keys(keys[start : start + chunk])
            actual.extend(
                columnar.route_batch_columnar(
                    ColumnarBatch(ids, dictionary, start), head_flags=flags
                )
            )

        assert actual == expected
        assert columnar.local_loads == scalar.local_loads
        assert columnar.messages_routed == scalar.messages_routed == len(keys)
        assert len(flags) == len(keys)

    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "W-C", "RR", "FIXED-D"])
    def test_head_flags_match_decision_path(self, scheme):
        keys = _streams("zipf", seed=3)[:6_000]
        decisions = _make(scheme, num_workers=20, seed=5)
        columnar = _make(scheme, num_workers=20, seed=5)

        expected = [decisions.route_with_decision(key) for key in keys]
        dictionary = KeyDictionary()
        flags: list[bool] = []
        actual = columnar.route_batch_columnar(
            ColumnarBatch(dictionary.intern_keys(keys), dictionary),
            head_flags=flags,
        )
        assert actual == [decision.worker for decision in expected]
        assert flags == [decision.is_head for decision in expected]

    @given(
        scheme=st.sampled_from(["KG", "SG", "PKG", "D-C", "W-C", "RR", "CH"]),
        num_workers=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
        stream=st.lists(st.integers(min_value=0, max_value=60), max_size=250),
        chunk=st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_streams_and_chunkings(
        self, scheme, num_workers, seed, stream, chunk
    ):
        scalar = _make(scheme, num_workers=num_workers, seed=seed)
        columnar = _make(scheme, num_workers=num_workers, seed=seed)
        expected = [scalar.route(key) for key in stream]
        dictionary = KeyDictionary()
        actual: list[int] = []
        for start in range(0, len(stream), chunk):
            ids = dictionary.intern_keys(stream[start : start + chunk])
            actual.extend(
                columnar.route_batch_columnar(ColumnarBatch(ids, dictionary, start))
            )
        assert actual == expected
        assert columnar.local_loads == scalar.local_loads

    def test_bounded_dictionary_reintern_still_routes_identically(self):
        # Eviction forgets only the forward map; re-issued ids fold to the
        # same hash input, so routing decisions cannot change.
        keys = _streams("wikipedia", seed=11)[:8_000]
        scalar = _make("PKG", num_workers=16, seed=1)
        columnar = _make("PKG", num_workers=16, seed=1)
        expected = [scalar.route(key) for key in keys]
        dictionary = KeyDictionary(max_keys=64)
        actual: list[int] = []
        for start in range(0, len(keys), 389):
            ids = dictionary.intern_keys(keys[start : start + 389])
            actual.extend(
                columnar.route_batch_columnar(ColumnarBatch(ids, dictionary, start))
            )
        assert actual == expected
        assert len(dictionary) > len(set(keys))  # evictions forced re-interning


class TestRouteStreamColumnar:
    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "CH"])
    def test_matches_scalar_and_batched(self, scheme):
        def run(**kwargs):
            return route_stream(
                _make(scheme, num_workers=24, seed=9),
                ZipfWorkload(1.4, 2_000, 15_000, seed=9),
                **kwargs,
            )

        scalar = run(batch_size=1)
        batched = run(batch_size=768)
        columnar = run(batch_size=768, columnar=True)
        assert scalar == batched == columnar

    def test_plain_iterable_fallback(self):
        keys = [f"k{i % 101}" for i in range(5_000)]
        expected = route_stream(_make("PKG", 12, 0), list(keys), batch_size=1)
        actual = route_stream(
            _make("PKG", 12, 0), iter(keys), batch_size=512, columnar=True
        )
        assert actual == expected


def _engine_snapshot(result):
    return (
        result.worker_loads,
        result.final_imbalance,
        result.head_loads,
        result.tail_loads,
        result.memory_entries,
        result.head_key_count,
        result.time_series.values if result.time_series else None,
        result.migration.to_dict() if result.migration else None,
    )


class TestEngineColumnarInvariance:
    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "W-C", "SG"])
    def test_simulation_results_independent_of_representation(self, scheme):
        def run(batch_size: int, columnar: bool):
            return run_simulation(
                ZipfWorkload(1.4, 2_000, 30_000, seed=2),
                scheme=scheme,
                num_workers=25,
                num_sources=5,
                seed=4,
                track_interval=500,
                track_head_tail=True,
                batch_size=batch_size,
                columnar=columnar,
            )

        scalar = run(1, False)
        columnar = run(613, True)
        assert _engine_snapshot(columnar) == _engine_snapshot(scalar)

    @pytest.mark.parametrize("policy", ["rehash", "migrate", "remap"])
    @pytest.mark.parametrize("scheme", ["PKG", "D-C", "CH"])
    def test_rescale_plans_fire_identically_mid_stream(self, policy, scheme):
        def run(batch_size: int, columnar: bool):
            return run_simulation(
                ZipfWorkload(1.4, 2_000, 30_000, seed=2),
                scheme=scheme,
                num_workers=25,
                num_sources=5,
                track_interval=500,
                batch_size=batch_size,
                columnar=columnar,
                rescale_plan="join@5000,leave@12000,fail@21000",
                rescale_policy=policy,
                migration_window=1500,
            )

        scalar = run(1, False)
        columnar = run(613, True)
        assert _engine_snapshot(columnar) == _engine_snapshot(scalar)

    def test_string_keyed_workload(self):
        def run(batch_size: int, columnar: bool):
            return run_simulation(
                WikipediaLikeWorkload(15_000, seed=3),
                scheme="D-C",
                num_workers=20,
                batch_size=batch_size,
                columnar=columnar,
            )

        assert _engine_snapshot(run(701, True)) == _engine_snapshot(run(1, False))


class TestDataflowColumnarInvariance:
    @staticmethod
    def _wordcount():
        from repro.dataflow.graph import Topology
        from repro.operators.aggregations import CountAggregator

        topology = Topology("wordcount")
        topology.add_vertex("count", CountAggregator, parallelism=8)
        topology.set_source("count", scheme="PKG")
        return topology

    @staticmethod
    def _pipeline():
        from repro.dataflow.graph import Topology
        from repro.operators.aggregations import CountAggregator
        from repro.operators.base import StatelessOperator
        from repro.types import Message

        topology = Topology("pipeline")
        topology.add_vertex(
            "tag",
            lambda i: StatelessOperator.from_function(
                lambda m: [Message(m.timestamp, str(m.key)[-1], 1)]
            ),
            parallelism=4,
        )
        topology.add_vertex("count", CountAggregator, parallelism=6)
        topology.set_source("tag", scheme="SG")
        topology.add_edge("tag", "count", scheme="D-C")
        return topology

    @staticmethod
    def _snapshot(result):
        snapshot = {"ingested": result.messages_ingested}
        for name, metrics in result.metrics.items():
            snapshot[name] = (metrics.messages, metrics.instance_loads)
            states = []
            for instance in result.instances[name]:
                if hasattr(instance, "partial_state"):
                    # item order matters: columnar folds must insert new
                    # keys exactly where the scalar loop would.
                    states.append(list(instance.partial_state().items()))
            snapshot[f"{name}:state"] = states
        return snapshot

    @pytest.mark.parametrize("shape", ["wordcount", "pipeline"])
    def test_topology_results_independent_of_representation(self, shape):
        from repro.dataflow.runtime import run_topology

        build = self._wordcount if shape == "wordcount" else self._pipeline
        workload = lambda: ZipfWorkload(1.4, 2_000, 20_000, seed=4)
        scalar = run_topology(
            build(), workload(), batch_size=1, num_external_sources=3
        )
        columnar = run_topology(
            build(),
            workload(),
            batch_size=509,
            num_external_sources=3,
            columnar=True,
        )
        assert self._snapshot(columnar) == self._snapshot(scalar)
