"""Property-based tests (hypothesis) for the frequency sketches."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.lossy_counting import LossyCounting
from repro.sketches.misra_gries import MisraGries
from repro.sketches.space_saving import SpaceSaving

#: Streams of small-alphabet keys: collisions and evictions are frequent,
#: which is exactly where the sketch invariants are most at risk.
key_streams = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=400
)
capacities = st.integers(min_value=1, max_value=20)


class TestSpaceSavingProperties:
    @given(stream=key_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates_and_error_bounded(self, stream, capacity):
        sketch = SpaceSaving(capacity=capacity)
        sketch.add_all(stream)
        exact = Counter(stream)
        for entry in sketch.entries():
            assert entry.count >= exact[entry.key]
            assert entry.count - exact[entry.key] <= entry.error
            assert entry.error <= len(stream) / capacity

    @given(stream=key_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_total_and_size_invariants(self, stream, capacity):
        sketch = SpaceSaving(capacity=capacity)
        sketch.add_all(stream)
        assert sketch.total == len(stream)
        assert len(sketch) <= capacity
        assert len(sketch) <= len(set(stream))

    @given(stream=key_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_sum_of_estimates_at_least_total(self, stream, capacity):
        # every arrival increments exactly one monitored counter, and
        # counters only leave the summary by being inherited, so the sum of
        # estimates can never fall below the number of arrivals when the
        # sketch is not full (and equals at least total in general).
        sketch = SpaceSaving(capacity=capacity)
        sketch.add_all(stream)
        assert sum(entry.count for entry in sketch.entries()) >= min(
            len(stream), sketch.min_count() * len(sketch)
        )

    @given(
        stream=key_streams,
        capacity=capacities,
        threshold=st.floats(min_value=0.05, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_heavy_hitters_no_false_negatives(self, stream, capacity, threshold):
        # guarantee only holds when the sketch has at least 1/threshold slots
        sketch = SpaceSaving(capacity=max(capacity, int(1 / threshold) + 1))
        sketch.add_all(stream)
        exact = Counter(stream)
        heavy = {
            key for key, count in exact.items() if count >= threshold * len(stream)
        }
        assert heavy <= set(sketch.heavy_hitters(threshold))

    @given(left=key_streams, right=key_streams, capacity=capacities)
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_no_underestimation(self, left, right, capacity):
        sketch_left = SpaceSaving(capacity=capacity)
        sketch_right = SpaceSaving(capacity=capacity)
        sketch_left.add_all(left)
        sketch_right.add_all(right)
        merged = sketch_left.merge(sketch_right)
        exact = Counter(left) + Counter(right)
        assert merged.total == len(left) + len(right)
        for entry in merged.entries():
            assert entry.count >= exact[entry.key]


class TestMisraGriesProperties:
    @given(stream=key_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_never_overestimates_and_bounded_deficit(self, stream, capacity):
        sketch = MisraGries(capacity=capacity)
        sketch.add_all(stream)
        exact = Counter(stream)
        for key, count in exact.items():
            estimate = sketch.estimate(key)
            assert estimate <= count
            assert count - estimate <= len(stream) / (capacity + 1) + 1e-9

    @given(stream=key_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_size_bounded_by_capacity(self, stream, capacity):
        sketch = MisraGries(capacity=capacity)
        sketch.add_all(stream)
        assert len(sketch) <= capacity
        assert sketch.total == len(stream)


class TestLossyCountingProperties:
    @given(
        stream=key_streams,
        epsilon=st.floats(min_value=0.02, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_overestimates_and_bounded_deficit(self, stream, epsilon):
        sketch = LossyCounting(epsilon=epsilon)
        sketch.add_all(stream)
        exact = Counter(stream)
        for key, count in exact.items():
            estimate = sketch.estimate(key)
            assert estimate <= count
            assert count - estimate <= epsilon * len(stream) + 1
