"""Property-based tests for the operator substrate.

The head/tail groupings only make sense for stateful operators if splitting a
key's state across instances never changes the final answer.  These tests
verify that invariant for every aggregator: processing a stream split across
any number of instances, in any interleaving, and reconciling the partial
states gives exactly the same result as processing the whole stream on one
instance.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.aggregations import (
    AverageAggregator,
    CountAggregator,
    MinMaxAggregator,
    SumAggregator,
)
from repro.operators.reconciliation import aggregation_cost, reconcile
from repro.operators.windows import TumblingWindowAssigner, WindowedAggregator
from repro.types import Message

keys = st.integers(min_value=0, max_value=10)
values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
streams = st.lists(st.tuples(keys, values), min_size=1, max_size=200)
instance_counts = st.integers(min_value=1, max_value=6)


def _split(stream, num_instances, assignment_seed):
    """Deterministically spread the stream over ``num_instances`` instances."""
    buckets = [[] for _ in range(num_instances)]
    for index, item in enumerate(stream):
        buckets[(index * 31 + assignment_seed) % num_instances].append(item)
    return buckets


class TestSplitStateEquivalence:
    @given(stream=streams, num_instances=instance_counts, seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_count_reconciles_exactly(self, stream, num_instances, seed):
        instances = [CountAggregator(i) for i in range(num_instances)]
        for bucket, instance in zip(_split(stream, num_instances, seed), instances):
            for key, _ in bucket:
                instance.update(key, None)
        merged, cost = reconcile(instances, CountAggregator.merge)
        exact = Counter(key for key, _ in stream)
        assert merged == dict(exact)
        assert cost.max_replication <= num_instances

    @given(stream=streams, num_instances=instance_counts, seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_sum_reconciles_exactly(self, stream, num_instances, seed):
        instances = [SumAggregator(i) for i in range(num_instances)]
        for bucket, instance in zip(_split(stream, num_instances, seed), instances):
            for key, value in bucket:
                instance.update(key, value)
        merged, _ = reconcile(instances, SumAggregator.merge)
        exact: dict[int, float] = {}
        for key, value in stream:
            exact[key] = exact.get(key, 0.0) + value
        assert set(merged) == set(exact)
        for key in exact:
            assert merged[key] == __import__("pytest").approx(exact[key], abs=1e-6)

    @given(stream=streams, num_instances=instance_counts, seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_minmax_reconciles_exactly(self, stream, num_instances, seed):
        instances = [MinMaxAggregator(i) for i in range(num_instances)]
        for bucket, instance in zip(_split(stream, num_instances, seed), instances):
            for key, value in bucket:
                instance.update(key, value)
        merged, _ = reconcile(instances, MinMaxAggregator.merge)
        for key in {k for k, _ in stream}:
            observed = [value for k, value in stream if k == key]
            assert merged[key] == (min(observed), max(observed))

    @given(stream=streams, num_instances=instance_counts, seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_average_reconciles_exactly(self, stream, num_instances, seed):
        import pytest

        instances = [AverageAggregator(i) for i in range(num_instances)]
        for bucket, instance in zip(_split(stream, num_instances, seed), instances):
            for key, value in bucket:
                instance.update(key, value)
        merged, _ = reconcile(instances, AverageAggregator.merge)
        for key in {k for k, _ in stream}:
            observed = [value for k, value in stream if k == key]
            total, count = merged[key]
            assert count == len(observed)
            assert total == pytest.approx(sum(observed), abs=1e-6)

    @given(stream=streams, num_instances=instance_counts, seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_aggregation_cost_invariants(self, stream, num_instances, seed):
        instances = [CountAggregator(i) for i in range(num_instances)]
        for bucket, instance in zip(_split(stream, num_instances, seed), instances):
            for key, _ in bucket:
                instance.update(key, None)
        cost = aggregation_cost([instance.partial_state() for instance in instances])
        distinct = len({key for key, _ in stream})
        assert cost.distinct_keys == distinct
        assert distinct <= cost.total_entries <= distinct * num_instances
        assert 1 <= cost.max_replication <= num_instances


class TestWindowProperties:
    @given(
        timestamps=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=150,
        ),
        size=st.floats(min_value=0.5, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_tumbling_assignment_contains_timestamp(self, timestamps, size):
        assigner = TumblingWindowAssigner(size=size)
        for timestamp in timestamps:
            (start,) = assigner.assign(timestamp)
            assert start <= timestamp < assigner.window_end(start) + 1e-9

    @given(
        events=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e3, allow_nan=False), keys
            ),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_windowed_counts_conserve_messages(self, events):
        aggregator = WindowedAggregator(
            assigner=TumblingWindowAssigner(size=10.0),
            fold=lambda accumulator, value: accumulator + 1,
            initializer=int,
        )
        emitted = []
        for timestamp, key in events:
            emitted.extend(aggregator.process(Message(timestamp, key)))
        emitted.extend(aggregator.flush())
        # every message is counted in exactly one tumbling window
        total = sum(message.value[1] for message in emitted)
        assert total == len(events)
        assert aggregator.state_size() == 0
