"""Property-based tests for the grouping schemes and the analysis."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.choices import (
    expected_worker_set_size,
    find_optimal_choices,
    lower_bound_choices,
)
from repro.analysis.zipf import ZipfDistribution
from repro.partitioning.registry import create_partitioner
from repro.simulation.metrics import LoadTracker

worker_counts = st.integers(min_value=1, max_value=40)
seeds = st.integers(min_value=0, max_value=2**31)
key_streams = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=300
)


class TestRoutingRangeProperties:
    @given(
        scheme=st.sampled_from(["KG", "SG", "PKG", "D-C", "W-C", "RR"]),
        num_workers=worker_counts,
        seed=seeds,
        stream=key_streams,
    )
    @settings(max_examples=60, deadline=None)
    def test_routes_always_in_range_and_accounted(self, scheme, num_workers, seed, stream):
        partitioner = create_partitioner(scheme, num_workers=num_workers, seed=seed)
        for key in stream:
            worker = partitioner.route(key)
            assert 0 <= worker < num_workers
        assert partitioner.messages_routed == len(stream)
        assert sum(partitioner.local_loads) == len(stream)

    @given(num_workers=st.integers(min_value=2, max_value=40), seed=seeds, stream=key_streams)
    @settings(max_examples=60, deadline=None)
    def test_pkg_key_uses_at_most_two_workers(self, num_workers, seed, stream):
        partitioner = create_partitioner("PKG", num_workers=num_workers, seed=seed)
        destinations: dict[int, set[int]] = {}
        for key in stream:
            destinations.setdefault(key, set()).add(partitioner.route(key))
        assert all(len(workers) <= 2 for workers in destinations.values())

    @given(num_workers=worker_counts, seed=seeds, stream=key_streams)
    @settings(max_examples=60, deadline=None)
    def test_kg_is_sticky(self, num_workers, seed, stream):
        partitioner = create_partitioner("KG", num_workers=num_workers, seed=seed)
        destinations: dict[int, set[int]] = {}
        for key in stream:
            destinations.setdefault(key, set()).add(partitioner.route(key))
        assert all(len(workers) == 1 for workers in destinations.values())

    @given(num_workers=worker_counts, stream=key_streams)
    @settings(max_examples=60, deadline=None)
    def test_shuffle_imbalance_is_minimal(self, num_workers, stream):
        partitioner = create_partitioner("SG", num_workers=num_workers, seed=0)
        tracker = LoadTracker(num_workers)
        for key in stream:
            tracker.record(partitioner.route(key))
        loads = tracker.loads
        assert max(loads) - min(loads) <= 1


class TestImbalanceMetricProperties:
    @given(
        assignments=st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=500
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_imbalance_in_valid_range(self, assignments):
        tracker = LoadTracker(10)
        for worker in assignments:
            tracker.record(worker)
        imbalance = tracker.imbalance()
        assert 0.0 <= imbalance <= 1.0 - 1.0 / 10
        assert abs(sum(tracker.normalized_loads()) - 1.0) < 1e-9


class TestAnalysisProperties:
    @given(
        num_workers=st.integers(min_value=2, max_value=200),
        num_choices=st.integers(min_value=0, max_value=300),
        prefix=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_expected_worker_set_size_bounds(self, num_workers, num_choices, prefix):
        value = expected_worker_set_size(num_workers, num_choices, prefix)
        assert 0.0 <= value <= num_workers
        if num_choices > 0 and prefix > 0:
            assert value >= 1.0 - 1e-9

    @given(
        exponent=st.floats(min_value=0.1, max_value=2.5),
        num_workers=st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_find_optimal_choices_within_bounds(self, exponent, num_workers):
        distribution = ZipfDistribution(exponent, 2000)
        theta = 1.0 / (5.0 * num_workers)
        head_size = distribution.keys_above(theta)
        head = distribution.probabilities[:head_size]
        tail = distribution.tail_mass(head_size)
        solution = find_optimal_choices(head, tail, num_workers)
        assert 2 <= solution.num_choices <= num_workers
        if head_size:
            assert solution.num_choices >= min(
                num_workers, lower_bound_choices(float(head[0]), num_workers)
            )
        assert solution.head_cardinality == head_size

    @given(
        probabilities=st.lists(
            st.floats(min_value=0.001, max_value=0.3), min_size=1, max_size=8
        ),
        num_workers=st.integers(min_value=2, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_solver_monotone_feasibility(self, probabilities, num_workers):
        head = sorted(probabilities, reverse=True)
        total = sum(head)
        if total > 0.99:
            head = [p * 0.99 / total for p in head]
        tail = 1.0 - sum(head)
        solution = find_optimal_choices(head, tail, num_workers)
        # feasible solutions never exceed n; cost is consistent
        assert solution.num_choices <= num_workers
        assert solution.cost == solution.num_choices * len(head)
