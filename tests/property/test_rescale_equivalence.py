"""Batched routing must stay byte-identical to scalar under rescale plans.

PR 1 pinned ``route_batch == route`` for the static topology; this module
pins the same contract *through* elastic rescaling: a simulation with a
``join@N``/``leave@M``/``fail@K`` plan must produce identical worker loads,
time series, memory counts and migration accounting for every batch size —
the engine splits chunks at event boundaries, so a mid-batch topology change
is exact, never approximated.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elasticity.events import RescalePlan
from repro.elasticity.policies import POLICY_NAMES
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

SCHEMES = ("KG", "SG", "PKG", "D-C", "W-C", "RR", "CH")


def _run(scheme: str, plan: RescalePlan, batch_size: int, messages: int = 20_000):
    return run_simulation(
        ZipfWorkload(1.4, 2_000, messages, seed=2),
        scheme=scheme,
        num_workers=10,
        num_sources=5,
        seed=4,
        track_interval=500,
        batch_size=batch_size,
        rescale_plan=plan,
    )


def _assert_identical(scalar, batched):
    assert batched.worker_loads == scalar.worker_loads
    assert batched.final_imbalance == scalar.final_imbalance
    assert batched.memory_entries == scalar.memory_entries
    assert batched.head_key_count == scalar.head_key_count
    assert batched.num_workers == scalar.num_workers
    assert batched.time_series.values == scalar.time_series.values
    assert batched.migration is not None and scalar.migration is not None
    assert batched.migration.to_dict() == scalar.migration.to_dict()


class TestRescaleBatchEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_join_leave_fail_plan(self, scheme, policy):
        plan = RescalePlan.parse(
            "join@5000,leave@12000,fail@15000",
            policy=policy,
            migration_window=2_000,
        )
        _assert_identical(_run(scheme, plan, 1), _run(scheme, plan, 613))

    @pytest.mark.parametrize("scheme", ["PKG", "D-C"])
    def test_event_on_chunk_boundary(self, scheme):
        # batch_size 1000 * 5 sources = chunk 5000; events at exact chunk
        # edges and one message past them.
        plan = RescalePlan.parse("join@5000,fail@10001", policy="migrate")
        _assert_identical(_run(scheme, plan, 1), _run(scheme, plan, 1_000))

    def test_event_at_offset_zero(self):
        plan = RescalePlan.parse("join@0", policy="remap")
        scalar = _run("PKG", plan, 1)
        batched = _run("PKG", plan, 997)
        _assert_identical(scalar, batched)
        assert scalar.num_workers == 11

    def test_events_beyond_stream_never_fire(self):
        plan = RescalePlan.parse("join@5000,fail@999999")
        scalar = _run("PKG", plan, 1)
        batched = _run("PKG", plan, 256)
        _assert_identical(scalar, batched)
        assert scalar.migration.events_applied == 1

    @given(
        scheme=st.sampled_from(["PKG", "D-C", "W-C", "CH"]),
        policy=st.sampled_from(POLICY_NAMES),
        offsets=st.lists(
            st.integers(min_value=0, max_value=6_000),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        kinds=st.lists(
            st.sampled_from(["join", "leave", "fail"]), min_size=4, max_size=4
        ),
        batch=st.integers(min_value=2, max_value=800),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_plans_and_chunkings(
        self, scheme, policy, offsets, kinds, batch
    ):
        spec = ",".join(
            f"{kind}@{offset}"
            for kind, offset in zip(kinds, sorted(offsets))
        )
        plan = RescalePlan.parse(spec, policy=policy, migration_window=500)
        try:
            plan.validate_for(10)
        except Exception:
            return  # plan would shrink below 1 worker; not this test's topic
        scalar = _run(scheme, plan, 1, messages=8_000)
        batched = _run(scheme, plan, batch, messages=8_000)
        _assert_identical(scalar, batched)
