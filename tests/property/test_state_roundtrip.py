"""export_state() -> adopt_state() round-trips are byte-identical.

The hot-swap contract of :class:`~repro.partitioning.base.Partitioner`
(referenced from its docstring): exporting a live partitioner's state and
adopting it into a *fresh, identically-constructed* instance of the same
scheme must be indistinguishable from never having exported at all.  Every
future routing decision, load counter and sketch observation must match the
uninterrupted control exactly — otherwise the adaptive partitioner's
scheme switches (and any state handoff built on the contract) would perturb
results.

The sweep covers every registered scheme — the nine static schemes plus the
adaptive wrapper itself — over the scalar, batched and columnar entry
points, splitting the stream at an awkward (non-batch-aligned) point.
"""

from __future__ import annotations

import pytest

from repro.partitioning.registry import available_schemes, create_partitioner
from repro.workloads.columnar import iter_batches_columnar
from repro.workloads.zipf_stream import ZipfWorkload

#: Constructor extras for schemes whose signature requires them, matching
#: the scenario-equivalence suite; AD gets per-source clocks small enough
#: to switch schemes *before and after* the export point.
SCHEME_OPTIONS: dict[str, dict[str, object]] = {
    "GREEDY-D": {"num_choices": 4},
    "FIXED-D": {"num_choices": 5},
    "AD": {"check_interval": 500, "policy": "dwell=1000"},
}

NUM_WORKERS = 12
SEED = 7
SPLIT = 2_617  # awkward on purpose: inside a batch, past AD's first switch
TOTAL = 6_000


def keys() -> list:
    return list(
        ZipfWorkload(exponent=1.4, num_keys=500, num_messages=TOTAL, seed=SEED)
    )


def build(scheme):
    return create_partitioner(
        scheme,
        num_workers=NUM_WORKERS,
        seed=SEED,
        **SCHEME_OPTIONS.get(scheme, {}),
    )


def _fingerprint(partitioner) -> tuple:
    return (
        partitioner.messages_routed,
        tuple(partitioner.local_loads),
    )


class TestRoundTripIsByteIdentical:
    @pytest.mark.parametrize("scheme", available_schemes())
    def test_batched_roundtrip_matches_uninterrupted_run(self, scheme):
        stream = keys()
        control = build(scheme)
        control_out = control.route_batch(stream[:SPLIT])

        donor = build(scheme)
        assert donor.route_batch(stream[:SPLIT]) == control_out
        adoptee = build(scheme)
        adoptee.adopt_state(donor.export_state())
        assert _fingerprint(adoptee) == _fingerprint(control)

        # Every decision after the handoff must match the control exactly.
        assert (
            adoptee.route_batch(stream[SPLIT:])
            == control.route_batch(stream[SPLIT:])
        )
        assert _fingerprint(adoptee) == _fingerprint(control)

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_scalar_roundtrip_matches_uninterrupted_run(self, scheme):
        stream = keys()[:3_000]
        split = 1_213
        control = build(scheme)
        for key in stream[:split]:
            control.route(key)

        donor = build(scheme)
        for key in stream[:split]:
            donor.route(key)
        adoptee = build(scheme)
        adoptee.adopt_state(donor.export_state())

        assert [adoptee.route(key) for key in stream[split:]] == [
            control.route(key) for key in stream[split:]
        ]
        assert _fingerprint(adoptee) == _fingerprint(control)

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_columnar_roundtrip_matches_uninterrupted_run(self, scheme):
        # One shared dictionary, as a single source would hold: the adoptee
        # resumes on batches interned by the same id space as the donor's.
        stream = keys()
        batches = list(iter_batches_columnar(stream, batch_size=709))
        boundary = 4  # hand off between batches 3 and 4

        control = build(scheme)
        donor = build(scheme)
        for batch in batches[:boundary]:
            assert donor.route_batch_columnar(batch) == (
                control.route_batch_columnar(batch)
            )
        adoptee = build(scheme)
        adoptee.adopt_state(donor.export_state())
        assert _fingerprint(adoptee) == _fingerprint(control)

        for batch in batches[boundary:]:
            assert adoptee.route_batch_columnar(batch) == (
                control.route_batch_columnar(batch)
            )
        assert _fingerprint(adoptee) == _fingerprint(control)

    def test_adaptive_roundtrip_preserves_scheme_and_switch_log(self):
        stream = keys()
        donor = build("AD")
        donor.route_batch(stream[:SPLIT])
        assert donor.switch_events(), "split point must lie past a switch"

        adoptee = build("AD")
        adoptee.adopt_state(donor.export_state())
        assert adoptee.current_scheme == donor.current_scheme
        assert [record.to_dict() for record in adoptee.switch_events()] == [
            record.to_dict() for record in donor.switch_events()
        ]
