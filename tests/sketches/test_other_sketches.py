"""Unit tests for MisraGries, LossyCounting and CountMinSketch."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.count_min import CountMinSketch
from repro.sketches.lossy_counting import LossyCounting
from repro.sketches.misra_gries import MisraGries
from repro.workloads.zipf_stream import ZipfWorkload


def _stream(exponent=1.5, keys=500, messages=20_000, seed=3):
    return list(ZipfWorkload(exponent, keys, messages, seed=seed))


class TestMisraGries:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            MisraGries(capacity=0)

    def test_exact_under_capacity(self):
        sketch = MisraGries(capacity=10)
        sketch.add_all(["a"] * 4 + ["b"] * 2)
        assert sketch.estimate("a") == 4
        assert sketch.estimate("b") == 2

    def test_never_overestimates(self):
        stream = _stream()
        sketch = MisraGries(capacity=50)
        sketch.add_all(stream)
        exact = Counter(stream)
        for entry in sketch.entries():
            assert entry.count <= exact[entry.key]

    def test_underestimation_bounded(self):
        stream = _stream()
        capacity = 64
        sketch = MisraGries(capacity=capacity)
        sketch.add_all(stream)
        exact = Counter(stream)
        bound = len(stream) / (capacity + 1)
        for key, count in exact.most_common(10):
            assert exact[key] - sketch.estimate(key) <= bound + 1e-9

    def test_heavy_hitters_no_false_negatives(self):
        stream = _stream(exponent=1.8, seed=9)
        threshold = 0.02
        sketch = MisraGries(capacity=int(2 / threshold))
        sketch.add_all(stream)
        exact = Counter(stream)
        true_heavy = {
            key for key, count in exact.items() if count >= threshold * len(stream)
        }
        assert true_heavy <= set(sketch.heavy_hitters(threshold))

    def test_add_with_count_matches_repeated_add(self):
        bulk = MisraGries(capacity=3)
        single = MisraGries(capacity=3)
        bulk.add("a", count=5)
        for _ in range(5):
            single.add("a")
        assert bulk.estimate("a") == single.estimate("a")

    def test_add_rejects_bad_count(self):
        with pytest.raises(SketchError):
            MisraGries(capacity=2).add("a", count=-1)

    def test_capacity_respected(self):
        sketch = MisraGries(capacity=5)
        sketch.add_all(str(i) for i in range(200))
        assert len(sketch) <= 5

    def test_merge_totals_and_heavy_keys(self):
        left = MisraGries(capacity=10)
        right = MisraGries(capacity=10)
        left.add_all(["hot"] * 50 + [f"l{i}" for i in range(20)])
        right.add_all(["hot"] * 40 + [f"r{i}" for i in range(20)])
        merged = left.merge(right)
        assert merged.total == left.total + right.total
        assert "hot" in merged.heavy_hitters(0.3)

    def test_merge_rejects_other_types(self):
        with pytest.raises(SketchError):
            MisraGries(capacity=2).merge("nope")  # type: ignore[arg-type]

    def test_empty_heavy_hitters(self):
        assert MisraGries(capacity=2).heavy_hitters(0.5) == {}


class TestLossyCounting:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            LossyCounting(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            LossyCounting(epsilon=1.0)

    def test_exact_for_short_streams(self):
        sketch = LossyCounting(epsilon=0.1)
        sketch.add_all(["a", "a", "b"])
        assert sketch.estimate("a") == 2
        assert sketch.estimate("b") == 1

    def test_never_overestimates(self):
        stream = _stream()
        sketch = LossyCounting(epsilon=0.01)
        sketch.add_all(stream)
        exact = Counter(stream)
        for entry in sketch.entries():
            assert entry.count <= exact[entry.key]

    def test_underestimation_bounded_by_epsilon(self):
        stream = _stream()
        epsilon = 0.01
        sketch = LossyCounting(epsilon=epsilon)
        sketch.add_all(stream)
        exact = Counter(stream)
        for key, count in exact.most_common(10):
            assert count - sketch.estimate(key) <= epsilon * len(stream) + 1

    def test_heavy_hitters_no_false_negatives(self):
        stream = _stream(exponent=1.8, seed=11)
        threshold = 0.02
        sketch = LossyCounting(epsilon=threshold / 2)
        sketch.add_all(stream)
        exact = Counter(stream)
        true_heavy = {
            key for key, count in exact.items() if count >= threshold * len(stream)
        }
        assert true_heavy <= set(sketch.heavy_hitters(threshold))

    def test_pruning_keeps_memory_small(self):
        sketch = LossyCounting(epsilon=0.01)
        sketch.add_all(str(i % 5000) for i in range(50_000))
        # uniform stream: almost everything should be pruned regularly
        assert len(sketch) < 5000

    def test_add_rejects_bad_count(self):
        with pytest.raises(SketchError):
            LossyCounting(epsilon=0.1).add("a", count=0)

    def test_total(self):
        sketch = LossyCounting(epsilon=0.2)
        sketch.add_all("abcabc")
        assert sketch.total == 6


class TestCountMinSketch:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=4, depth=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=4, top_k=0)

    def test_for_error_sizes(self):
        sketch = CountMinSketch.for_error(epsilon=0.01, delta=0.01)
        assert sketch.width >= 100
        assert sketch.depth >= 2

    def test_for_error_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch.for_error(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            CountMinSketch.for_error(epsilon=0.1, delta=1.5)

    def test_never_underestimates(self):
        stream = _stream()
        sketch = CountMinSketch(width=256, depth=4)
        sketch.add_all(stream)
        exact = Counter(stream)
        for key, count in exact.most_common(50):
            assert sketch.estimate(key) >= count

    def test_overestimation_reasonable(self):
        stream = _stream()
        sketch = CountMinSketch(width=1024, depth=5)
        sketch.add_all(stream)
        exact = Counter(stream)
        for key, count in exact.most_common(10):
            assert sketch.estimate(key) - count <= 3 * len(stream) / 1024

    def test_heavy_hitters_from_candidates(self):
        stream = _stream(exponent=2.0, seed=13)
        sketch = CountMinSketch(width=512, depth=4, top_k=32)
        sketch.add_all(stream)
        exact_top = Counter(stream).most_common(1)[0][0]
        assert exact_top in sketch.heavy_hitters(0.2)

    def test_top_returns_sorted_candidates(self):
        sketch = CountMinSketch(width=64, depth=3, top_k=8)
        sketch.add_all(["a"] * 10 + ["b"] * 5 + ["c"])
        top = sketch.top(2)
        assert top[0].key == "a"
        assert top[0].count >= top[1].count

    def test_add_rejects_bad_count(self):
        with pytest.raises(SketchError):
            CountMinSketch(width=8).add("a", count=0)

    def test_total(self):
        sketch = CountMinSketch(width=8)
        sketch.add("a", count=3)
        sketch.add("b")
        assert sketch.total == 4
