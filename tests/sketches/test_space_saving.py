"""Unit tests for the SpaceSaving sketch."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.space_saving import SpaceSaving
from repro.workloads.zipf_stream import ZipfWorkload


def _exact_counts(keys):
    return Counter(keys)


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(capacity=0)

    def test_for_threshold_capacity(self):
        sketch = SpaceSaving.for_threshold(0.01, slack=1.0)
        assert sketch.capacity == 100

    def test_for_threshold_with_slack(self):
        sketch = SpaceSaving.for_threshold(0.01, slack=2.0)
        assert sketch.capacity == 200

    def test_for_threshold_rounds_up(self):
        # Regression: int(round(...)) used banker's rounding and
        # under-provisioned — for_threshold(0.4) got capacity 2 where the
        # no-false-negative guarantee needs ceil(1 / 0.4) = 3 counters.
        assert SpaceSaving.for_threshold(0.4).capacity == 3

    @pytest.mark.parametrize("slack", [1.0, 1.5, 2.0])
    def test_for_threshold_capacity_never_below_guarantee(self, slack):
        # The documented guarantee is capacity >= slack / threshold for
        # every threshold, not just the ones that divide evenly.
        thresholds = [0.003, 0.01, 0.07, 1 / 7, 0.25, 1 / 3, 0.4, 0.6, 0.9, 1.0]
        for threshold in thresholds:
            capacity = SpaceSaving.for_threshold(threshold, slack=slack).capacity
            assert capacity >= slack / threshold, (
                f"threshold={threshold}, slack={slack}: capacity {capacity} "
                f"< {slack / threshold}"
            )

    def test_grow_preserves_counters(self):
        sketch = SpaceSaving(capacity=2)
        for key in ["a", "a", "b", "a", "c"]:
            sketch.add(key)
        monitored = {entry.key: entry.count for entry in sketch.entries()}
        sketch.grow(5)
        assert sketch.capacity == 5
        assert {entry.key: entry.count for entry in sketch.entries()} == monitored
        # The freed budget admits new keys without evicting the old ones.
        sketch.add("d")
        assert sketch.estimate("a") >= 3
        assert sketch.estimate("d") == 1

    def test_grow_rejects_shrink(self):
        with pytest.raises(SketchError):
            SpaceSaving(capacity=10).grow(5)

    def test_for_threshold_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving.for_threshold(0.0)
        with pytest.raises(ConfigurationError):
            SpaceSaving.for_threshold(1.5)

    def test_for_threshold_rejects_bad_slack(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving.for_threshold(0.1, slack=0.0)


class TestBasicCounting:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSaving(capacity=10)
        stream = ["a"] * 5 + ["b"] * 3 + ["c"] * 2
        sketch.add_all(stream)
        assert sketch.estimate("a") == 5
        assert sketch.estimate("b") == 3
        assert sketch.estimate("c") == 2
        assert sketch.error("a") == 0

    def test_total_tracks_stream_length(self):
        sketch = SpaceSaving(capacity=2)
        sketch.add_all(["x"] * 7 + ["y"] * 4 + ["z"] * 2)
        assert sketch.total == 13

    def test_unseen_key_estimate_zero(self):
        sketch = SpaceSaving(capacity=4)
        sketch.add("a")
        assert sketch.estimate("never") == 0
        assert "never" not in sketch

    def test_add_with_count(self):
        sketch = SpaceSaving(capacity=4)
        sketch.add("a", count=10)
        sketch.add("a", count=5)
        assert sketch.estimate("a") == 15

    def test_add_rejects_non_positive_count(self):
        sketch = SpaceSaving(capacity=4)
        with pytest.raises(SketchError):
            sketch.add("a", count=0)

    def test_len_bounded_by_capacity(self):
        sketch = SpaceSaving(capacity=5)
        sketch.add_all(str(i) for i in range(100))
        assert len(sketch) <= 5

    def test_min_count_empty(self):
        assert SpaceSaving(capacity=3).min_count() == 0


class TestGuarantees:
    """The classic SpaceSaving guarantees on adversarial-ish streams."""

    def test_never_underestimates(self):
        stream = list(ZipfWorkload(1.2, 500, 20_000, seed=3))
        sketch = SpaceSaving(capacity=50)
        sketch.add_all(stream)
        exact = _exact_counts(stream)
        for entry in sketch.entries():
            assert entry.count >= exact[entry.key]

    def test_error_bounded_by_total_over_capacity(self):
        stream = list(ZipfWorkload(1.0, 500, 20_000, seed=4))
        capacity = 64
        sketch = SpaceSaving(capacity=capacity)
        sketch.add_all(stream)
        for entry in sketch.entries():
            assert entry.error <= len(stream) / capacity

    def test_overestimation_bounded(self):
        stream = list(ZipfWorkload(1.5, 500, 20_000, seed=5))
        capacity = 64
        sketch = SpaceSaving(capacity=capacity)
        sketch.add_all(stream)
        exact = _exact_counts(stream)
        for entry in sketch.entries():
            assert entry.count - exact[entry.key] <= len(stream) / capacity

    def test_guaranteed_count_is_lower_bound(self):
        stream = list(ZipfWorkload(1.5, 500, 10_000, seed=6))
        sketch = SpaceSaving(capacity=32)
        sketch.add_all(stream)
        exact = _exact_counts(stream)
        for entry in sketch.entries():
            assert sketch.guaranteed(entry.key) <= exact[entry.key]

    def test_heavy_hitters_no_false_negatives(self):
        stream = list(ZipfWorkload(1.8, 1000, 30_000, seed=7))
        threshold = 0.02
        sketch = SpaceSaving(capacity=int(2 / threshold))
        sketch.add_all(stream)
        exact = _exact_counts(stream)
        true_heavy = {
            key for key, count in exact.items() if count >= threshold * len(stream)
        }
        reported = set(sketch.heavy_hitters(threshold))
        assert true_heavy <= reported

    def test_heavy_hitters_empty_sketch(self):
        assert SpaceSaving(capacity=5).heavy_hitters(0.1) == {}

    def test_top_key_identified(self):
        stream = list(ZipfWorkload(2.0, 1000, 20_000, seed=8))
        sketch = SpaceSaving(capacity=20)
        sketch.add_all(stream)
        exact_top = _exact_counts(stream).most_common(1)[0][0]
        sketch_top = max(sketch.entries(), key=lambda entry: entry.count).key
        assert sketch_top == exact_top


class TestEviction:
    def test_replacement_inherits_min_plus_one(self):
        sketch = SpaceSaving(capacity=2)
        sketch.add("a")        # a:1
        sketch.add("b")        # b:1
        sketch.add("c")        # evicts one of the count-1 keys, c: 2 error 1
        assert sketch.estimate("c") == 2
        assert sketch.error("c") == 1

    def test_monitored_set_follows_recency_on_ties(self):
        sketch = SpaceSaving(capacity=2)
        sketch.add_all(["a", "b", "c"])
        # the oldest minimal counter ("a") is evicted first
        assert sketch.estimate("a") == 0
        assert sketch.estimate("b") == 1

    def test_entries_sorted_walk_covers_all_buckets(self):
        sketch = SpaceSaving(capacity=8)
        sketch.add_all(["a"] * 5 + ["b"] * 5 + ["c"] * 2 + ["d"])
        entries = {entry.key: entry.count for entry in sketch.entries()}
        assert entries == {"a": 5, "b": 5, "c": 2, "d": 1}


class TestMerge:
    def test_merge_totals(self):
        left = SpaceSaving(capacity=10)
        right = SpaceSaving(capacity=10)
        left.add_all(["a"] * 5 + ["b"] * 2)
        right.add_all(["a"] * 3 + ["c"] * 4)
        merged = left.merge(right)
        assert merged.total == left.total + right.total

    def test_merge_never_underestimates(self):
        stream_left = list(ZipfWorkload(1.5, 300, 5_000, seed=1))
        stream_right = list(ZipfWorkload(1.5, 300, 5_000, seed=2))
        left = SpaceSaving(capacity=40)
        right = SpaceSaving(capacity=40)
        left.add_all(stream_left)
        right.add_all(stream_right)
        merged = left.merge(right)
        exact = _exact_counts(stream_left + stream_right)
        for entry in merged.entries():
            assert entry.count >= exact[entry.key]

    def test_merge_capacity_is_max(self):
        merged = SpaceSaving(capacity=10).merge(SpaceSaving(capacity=20))
        assert merged.capacity == 20

    def test_merge_rejects_other_types(self):
        with pytest.raises(SketchError):
            SpaceSaving(capacity=2).merge(object())  # type: ignore[arg-type]

    def test_merge_keeps_heavy_hitters(self):
        left = SpaceSaving(capacity=10)
        right = SpaceSaving(capacity=10)
        left.add_all(["hot"] * 100 + [f"l{i}" for i in range(30)])
        right.add_all(["hot"] * 80 + [f"r{i}" for i in range(30)])
        merged = left.merge(right)
        assert "hot" in merged.heavy_hitters(0.3)
