"""Bulk updates and in-place reset across the sketch implementations."""

from __future__ import annotations

import random

import pytest

from repro.partitioning.head_tail import HeadTailPartitioner
from repro.partitioning.w_choices import WChoices
from repro.sketches.count_min import CountMinSketch
from repro.sketches.lossy_counting import LossyCounting
from repro.sketches.misra_gries import MisraGries
from repro.sketches.space_saving import SpaceSaving


def _summary(sketch: SpaceSaving) -> list[tuple]:
    return sorted((e.key, e.count, e.error) for e in sketch.entries())


class TestSpaceSavingBulk:
    def test_add_all_equals_elementwise_adds(self):
        rng = random.Random(42)
        # bursty stream: runs of the same key, as produced by skewed sources
        stream: list[int] = []
        while len(stream) < 30_000:
            stream.extend([rng.randrange(600)] * rng.randrange(1, 8))
        elementwise = SpaceSaving(capacity=100)
        for key in stream:
            elementwise.add(key)
        bulk = SpaceSaving(capacity=100)
        bulk.add_all(stream)
        assert bulk.total == elementwise.total == len(stream)
        assert _summary(bulk) == _summary(elementwise)

    def test_add_and_estimate_matches_add_then_estimate(self):
        rng = random.Random(7)
        stream = [rng.randrange(300) for _ in range(20_000)]
        fused = SpaceSaving(capacity=64)
        plain = SpaceSaving(capacity=64)
        for key in stream:
            estimate = fused.add_and_estimate(key)
            plain.add(key)
            assert estimate == plain.estimate(key) == fused.estimate(key)
        assert _summary(fused) == _summary(plain)

    def test_add_all_handles_none_and_leading_runs(self):
        sketch = SpaceSaving(capacity=8)
        sketch.add_all([None, None, "a", "a", "a", None])
        assert sketch.total == 6
        assert sketch.estimate(None) == 3
        assert sketch.estimate("a") == 3


class TestSketchReset:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SpaceSaving(capacity=16),
            lambda: MisraGries(capacity=16),
            lambda: LossyCounting(epsilon=0.05),
            lambda: CountMinSketch(width=64, depth=3),
        ],
        ids=["space_saving", "misra_gries", "lossy_counting", "count_min"],
    )
    def test_reset_behaves_like_a_fresh_sketch(self, factory):
        rng = random.Random(3)
        stream = [rng.randrange(200) for _ in range(5_000)]
        used = factory()
        for key in stream:
            used.add(key)
        used.reset()
        fresh = factory()
        assert used.total == 0
        for key in stream[:1_000]:
            used.add(key)
            fresh.add(key)
        assert used.total == fresh.total
        assert {e.key for e in used.entries()} == {e.key for e in fresh.entries()}
        assert all(used.estimate(k) == fresh.estimate(k) for k in set(stream[:1_000]))

    def test_space_saving_reset_keeps_capacity(self):
        sketch = SpaceSaving(capacity=4)
        sketch.add_all(range(100))
        sketch.reset()
        assert sketch.capacity == 4
        assert len(sketch) == 0
        assert sketch.min_count() == 0


class TestHeadTailResetPath:
    def test_default_and_injected_sketches_reset_identically(self):
        # Both go through sketch.reset() now — no isinstance special case —
        # so a reset partitioner must route exactly like a fresh one.
        for sketch_factory in (None, lambda: MisraGries(capacity=50)):
            kwargs = {}
            if sketch_factory is not None:
                kwargs["sketch"] = sketch_factory()
            used = WChoices(num_workers=10, seed=3, **kwargs)
            keys = [f"k{i % 40}" for i in range(4_000)]
            for key in keys:
                used.route(key)
            used.reset()
            fresh_kwargs = {}
            if sketch_factory is not None:
                fresh_kwargs["sketch"] = sketch_factory()
            fresh = WChoices(num_workers=10, seed=3, **fresh_kwargs)
            assert [used.route(k) for k in keys] == [fresh.route(k) for k in keys]
            assert used.sketch is not None  # same injected object, cleared
            assert isinstance(used, HeadTailPartitioner)
