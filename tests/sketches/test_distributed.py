"""Unit tests for distributed heavy-hitter tracking."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.distributed import DistributedHeavyHitters, merge_summaries
from repro.sketches.space_saving import SpaceSaving
from repro.workloads.zipf_stream import ZipfWorkload


class TestMergeSummaries:
    def test_empty_collection_rejected(self):
        with pytest.raises(SketchError):
            merge_summaries([])

    def test_single_summary_returned_as_is(self):
        sketch = SpaceSaving(capacity=4)
        sketch.add_all("aab")
        assert merge_summaries([sketch]) is sketch

    def test_merge_many_is_associative_on_totals(self):
        sketches = []
        for seed in range(4):
            sketch = SpaceSaving(capacity=32)
            sketch.add_all(ZipfWorkload(1.5, 200, 2000, seed=seed))
            sketches.append(sketch)
        merged = merge_summaries(sketches)
        assert merged.total == sum(sketch.total for sketch in sketches)

    def test_merge_never_underestimates_combined_stream(self):
        streams = [list(ZipfWorkload(1.5, 200, 3000, seed=seed)) for seed in range(3)]
        sketches = []
        for stream in streams:
            sketch = SpaceSaving(capacity=40)
            sketch.add_all(stream)
            sketches.append(sketch)
        merged = merge_summaries(sketches)
        exact = Counter(key for stream in streams for key in stream)
        for entry in merged.entries():
            assert entry.count >= exact[entry.key]


class TestDistributedHeavyHitters:
    def test_rejects_bad_source_count(self):
        with pytest.raises(ConfigurationError):
            DistributedHeavyHitters(num_sources=0, capacity=8)

    def test_add_checks_source_range(self):
        tracker = DistributedHeavyHitters(num_sources=2, capacity=8)
        with pytest.raises(ConfigurationError):
            tracker.add(source=2, key="a")

    def test_local_and_merged_views(self):
        tracker = DistributedHeavyHitters(num_sources=2, capacity=16)
        for index in range(100):
            tracker.add(source=index % 2, key="hot")
            tracker.add(source=index % 2, key=f"cold-{index}")
        assert "hot" in tracker.local_heavy_hitters(0, 0.3)
        assert "hot" in tracker.local_heavy_hitters(1, 0.3)
        assert "hot" in tracker.merged_heavy_hitters(0.3)

    def test_total_sums_sources(self):
        tracker = DistributedHeavyHitters(num_sources=3, capacity=8)
        tracker.add_stream((i % 3, f"k{i}") for i in range(30))
        assert tracker.total() == 30

    def test_disagreement_zero_when_all_sources_see_hot_key(self):
        tracker = DistributedHeavyHitters(num_sources=2, capacity=16)
        for index in range(200):
            tracker.add(source=index % 2, key="hot")
        assert tracker.disagreement(0.5) == 0.0

    def test_disagreement_zero_without_heavy_hitters(self):
        tracker = DistributedHeavyHitters(num_sources=2, capacity=16)
        assert tracker.disagreement(0.5) == 0.0

    def test_disagreement_detects_skewed_routing(self):
        # All "hot" traffic goes to source 0; source 1 only sees noise, so it
        # misses the global heavy hitter.
        tracker = DistributedHeavyHitters(num_sources=2, capacity=16)
        for _ in range(100):
            tracker.add(source=0, key="hot")
        for index in range(100):
            tracker.add(source=1, key=f"noise-{index % 20}")
        assert tracker.disagreement(0.25) > 0.0

    def test_sketch_accessor_checks_range(self):
        tracker = DistributedHeavyHitters(num_sources=1, capacity=4)
        assert tracker.sketch(0).capacity == 4
        with pytest.raises(ConfigurationError):
            tracker.sketch(1)
