"""The fused bulk classification contract of every sketch.

``add_and_classify_batch`` / ``add_and_classify_runs`` are the hot path of
batched head/tail routing; their flags must be byte-identical to the
reference per-message ``add`` + ``estimate`` loop for every sketch, every
threshold and every warmup, or batched routing silently diverges from
scalar.  ``head_signature`` and ``head_counts`` are the cheap accessors the
D-Choices solver throttle polls; their semantics are pinned to
``heavy_hitters`` — including each sketch's own cutoff correction.
"""

from __future__ import annotations

import random

import pytest

from repro.sketches.base import runs_to_flags
from repro.sketches.count_min import CountMinSketch
from repro.sketches.lossy_counting import LossyCounting
from repro.sketches.misra_gries import MisraGries
from repro.sketches.space_saving import SpaceSaving
from repro.workloads.zipf_stream import ZipfWorkload

SKETCHES = {
    "space-saving": lambda: SpaceSaving(capacity=40),
    "misra-gries": lambda: MisraGries(capacity=40),
    "lossy-counting": lambda: LossyCounting(epsilon=0.02),
    "count-min": lambda: CountMinSketch(width=128, depth=3, top_k=32, seed=7),
}


def _streams():
    zipf = list(ZipfWorkload(1.3, 300, 4_000, seed=11))
    rng = random.Random(5)
    uniform = [f"u{rng.randrange(500)}" for _ in range(4_000)]
    bursty = [key for key in zipf[:500] for _ in range(3)]
    return {"zipf": zipf, "uniform": uniform, "bursty": bursty}


def _reference_flags(sketch, keys, threshold, warmup):
    flags = []
    for key in keys:
        sketch.add(key)
        total = sketch.total
        flags.append(total >= warmup and sketch.estimate(key) >= threshold * total)
    return flags


class TestAddAndClassifyBatch:
    @pytest.mark.parametrize("name", SKETCHES)
    @pytest.mark.parametrize("stream", ["zipf", "uniform", "bursty"])
    @pytest.mark.parametrize("warmup", [0, 100])
    def test_flags_match_reference_loop(self, name, stream, warmup):
        keys = _streams()[stream]
        threshold = 0.05
        reference = SKETCHES[name]()
        expected = _reference_flags(reference, keys, threshold, warmup)

        fused = SKETCHES[name]()
        tails: list = []
        actual: list[bool] = []
        for start in range(0, len(keys), 997):  # chunking must not matter
            actual.extend(
                fused.add_and_classify_batch(
                    keys[start : start + 997], threshold, warmup, False, tails
                )
            )

        assert actual == expected
        assert fused.total == reference.total == len(keys)
        assert tails == [key for key, hot in zip(keys, expected) if not hot]

    @pytest.mark.parametrize("name", SKETCHES)
    def test_runs_encode_the_same_classification(self, name):
        keys = _streams()["zipf"]
        threshold = 0.05
        flat = SKETCHES[name]()
        expected = flat.add_and_classify_batch(keys, threshold, 50)

        run_form = SKETCHES[name]()
        tails: list = []
        runs = run_form.add_and_classify_runs(keys, threshold, 50, tails)

        assert runs_to_flags(runs) == expected
        assert sum(runs) + len(tails) == len(keys)
        assert len(runs) == len(tails) + 1
        assert run_form.total == flat.total

    @pytest.mark.parametrize("name", SKETCHES)
    def test_stop_at_head_parks_the_sketch(self, name):
        keys = _streams()["zipf"]
        threshold = 0.05
        reference = SKETCHES[name]()
        expected = _reference_flags(reference, keys, threshold, 0)
        first_head = expected.index(True)

        stopping = SKETCHES[name]()
        flags = stopping.add_and_classify_batch(keys, threshold, 0, True)

        # The pass halts right after the first head message, and the sketch
        # has seen exactly the keys up to and including it — nothing more.
        assert flags == expected[: first_head + 1]
        assert flags[-1]
        assert stopping.total == first_head + 1

    def test_stop_at_head_without_head_feeds_everything(self):
        sketch = SpaceSaving(capacity=8)
        # All-distinct keys past a warmup: no estimate ever reaches 90% of
        # the total, so the stop-at-head pass must feed the whole chunk.
        keys = [f"k{i}" for i in range(100)]
        flags = sketch.add_and_classify_batch(keys, 0.9, 10, True)
        assert flags == [False] * 100
        assert sketch.total == 100

    def test_empty_chunk(self):
        sketch = SpaceSaving(capacity=4)
        assert sketch.add_and_classify_batch([], 0.1) == []
        assert sketch.add_and_classify_runs([], 0.1) == [0]
        assert runs_to_flags([0]) == []


class TestHeadSignature:
    @pytest.mark.parametrize("name", SKETCHES)
    @pytest.mark.parametrize("stream", ["zipf", "uniform", "bursty"])
    @pytest.mark.parametrize("threshold", [0.01, 0.05, 0.3])
    def test_signature_pins_heavy_hitters_len_and_max(self, name, stream, threshold):
        sketch = SKETCHES[name]()
        for key in _streams()[stream]:
            sketch.add(key)
        head = sketch.heavy_hitters(threshold)
        expected = (len(head), max(head.values())) if head else (0, 0)
        assert sketch.head_signature(threshold) == expected

    @pytest.mark.parametrize("name", SKETCHES)
    def test_signature_of_empty_sketch(self, name):
        assert SKETCHES[name]().head_signature(0.1) == (0, 0)

    def test_signature_checked_at_every_prefix(self):
        # The D-Choices throttle may read the signature at any stream
        # offset; walk one and compare against heavy_hitters each time.
        sketch = SpaceSaving(capacity=16)
        for index, key in enumerate(ZipfWorkload(1.5, 100, 800, seed=3)):
            sketch.add(key)
            if index % 37 == 0:
                head = sketch.heavy_hitters(0.08)
                expected = (len(head), max(head.values())) if head else (0, 0)
                assert sketch.head_signature(0.08) == expected


class TestHeadCounts:
    @pytest.mark.parametrize("name", SKETCHES)
    @pytest.mark.parametrize("threshold", [0.01, 0.05, 0.3])
    def test_counts_are_heavy_hitters_values(self, name, threshold):
        sketch = SKETCHES[name]()
        for key in _streams()["zipf"]:
            sketch.add(key)
        expected = sorted(sketch.heavy_hitters(threshold).values())
        assert sorted(sketch.head_counts(threshold)) == expected

    def test_counts_of_empty_sketch(self):
        assert SpaceSaving(capacity=4).head_counts(0.5) == []
