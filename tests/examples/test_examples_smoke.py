"""Smoke test: every example script must run end-to-end at tiny scale.

Examples rot silently — they import public API the tests may not cover and
nothing else executes them.  This test runs each ``examples/*.py`` as a real
subprocess (the way a reader would) with ``REPRO_EXAMPLE_MESSAGES`` shrunk
so the whole parametrized set stays CI-sized.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Tiny but large enough that head/tail schemes pass their warmup and the
#: cluster example produces meaningful percentiles.
SMOKE_MESSAGES = "3000"


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5, f"expected example scripts under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_at_tiny_scale(script: Path):
    environment = dict(os.environ)
    environment["REPRO_EXAMPLE_MESSAGES"] = SMOKE_MESSAGES
    # Keep the subprocess importable both from a PYTHONPATH=src checkout
    # and from an editable install.
    source_path = str(REPO_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        source_path if not existing else f"{source_path}{os.pathsep}{existing}"
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=environment,
        cwd=REPO_ROOT,
        timeout=180,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
