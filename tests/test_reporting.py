"""Unit tests for the reporting utilities (export + ASCII charts)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.partitioning.consistent_grouping import ConsistentGrouping
from repro.reporting.ascii_chart import ascii_bar_chart, ascii_series_chart
from repro.reporting.export import result_to_csv, result_to_json, write_result


def _sample_result() -> ExperimentResult:
    result = ExperimentResult(experiment_id="figX", title="demo")
    result.parameters = {"workers": (5, 10)}
    result.rows = [
        {"scheme": "PKG", "workers": 5, "imbalance": 0.1},
        {"scheme": "D-C", "workers": 5, "imbalance": 0.001},
    ]
    result.notes = ["just a demo"]
    return result


class TestExport:
    def test_csv_has_header_and_rows(self):
        text = result_to_csv(_sample_result())
        lines = text.strip().splitlines()
        assert lines[0] == "scheme,workers,imbalance"
        assert len(lines) == 3
        assert lines[1].startswith("PKG")

    def test_json_roundtrip(self):
        document = json.loads(result_to_json(_sample_result()))
        assert document["experiment_id"] == "figX"
        assert document["rows"][1]["scheme"] == "D-C"
        assert document["parameters"]["workers"] == [5, 10]
        assert document["notes"] == ["just a demo"]

    def test_json_stringifies_unknown_types(self):
        result = _sample_result()
        result.rows.append({"scheme": "W-C", "extra": object()})
        document = json.loads(result_to_json(result))
        assert isinstance(document["rows"][2]["extra"], str)

    def test_write_result_csv(self, tmp_path):
        path = write_result(_sample_result(), tmp_path / "out.csv")
        with open(path, encoding="utf-8") as handle:
            assert handle.readline().startswith("scheme")

    def test_write_result_json(self, tmp_path):
        path = write_result(_sample_result(), tmp_path / "out.json")
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["title"] == "demo"

    def test_write_result_unknown_extension(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_result(_sample_result(), tmp_path / "out.txt")


class TestAsciiBarChart:
    def test_renders_all_labels(self):
        chart = ascii_bar_chart({"KG": 10.0, "SG": 40.0})
        assert "KG" in chart and "SG" in chart
        assert chart.count("\n") == 1

    def test_bar_lengths_proportional(self):
        chart = ascii_bar_chart({"small": 1.0, "big": 10.0}, width=20)
        small_line, big_line = chart.splitlines()
        assert big_line.count("#") > small_line.count("#")

    def test_zero_values(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart

    def test_rejects_empty_and_bad_width(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart({})
        with pytest.raises(ConfigurationError):
            ascii_bar_chart({"a": 1.0}, width=0)


class TestAsciiSeriesChart:
    def test_renders_legend_and_ranges(self):
        chart = ascii_series_chart(
            {"PKG": {5: 0.1, 50: 0.3}, "D-C": {5: 0.001, 50: 0.002}},
            log_y=True,
        )
        assert "legend:" in chart
        assert "PKG" in chart and "D-C" in chart
        assert "log(y)" in chart

    def test_linear_axis_label(self):
        chart = ascii_series_chart({"only": {0: 1.0, 1: 2.0}})
        assert "y: [" in chart

    def test_rejects_empty_inputs(self):
        with pytest.raises(ConfigurationError):
            ascii_series_chart({})
        with pytest.raises(ConfigurationError):
            ascii_series_chart({"empty": {}})
        with pytest.raises(ConfigurationError):
            ascii_series_chart({"a": {0: 1.0}}, height=1)


class TestConsistentGrouping:
    def test_sticky_routing(self):
        scheme = ConsistentGrouping(num_workers=8, seed=3)
        assert scheme.route("user-1") == scheme.route("user-1")

    def test_routes_in_range(self):
        scheme = ConsistentGrouping(num_workers=8, seed=3)
        assert all(0 <= scheme.route(f"k{i}") < 8 for i in range(100))

    def test_remove_and_restore_worker(self):
        scheme = ConsistentGrouping(num_workers=4, seed=1)
        before = scheme.route_with_decision("key").worker
        scheme.remove_worker(before)
        after = scheme.route_with_decision("key").worker
        assert after != before
        scheme.restore_worker(before)
        assert scheme.route_with_decision("key").worker == before

    def test_remove_worker_out_of_range(self):
        scheme = ConsistentGrouping(num_workers=4)
        with pytest.raises(ConfigurationError):
            scheme.remove_worker(4)

    def test_available_via_registry(self):
        from repro.partitioning.registry import create_partitioner

        scheme = create_partitioner("consistent", num_workers=6, seed=2)
        assert isinstance(scheme, ConsistentGrouping)
        assert scheme.name == "CH"
