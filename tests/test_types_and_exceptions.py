"""Unit tests for the shared value types and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions
from repro.types import DatasetStats, LoadSnapshot, Message, RoutingDecision


class TestExceptions:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "PartitioningError",
            "SketchError",
            "WorkloadError",
            "SimulationError",
            "AnalysisError",
        ):
            error_class = getattr(exceptions, name)
            assert issubclass(error_class, exceptions.ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.SketchError("boom")


class TestMessage:
    def test_fields(self):
        message = Message(timestamp=1.0, key="k", value={"payload": 1})
        assert message.timestamp == 1.0
        assert message.key == "k"
        assert message.value == {"payload": 1}

    def test_frozen(self):
        message = Message(timestamp=1.0, key="k")
        with pytest.raises(AttributeError):
            message.key = "other"  # type: ignore[misc]


class TestRoutingDecision:
    def test_defaults(self):
        decision = RoutingDecision(key="k", worker=3)
        assert decision.candidates == ()
        assert decision.is_head is False


class TestDatasetStats:
    def test_as_row_percentage(self):
        stats = DatasetStats(name="X", symbol="X", messages=10, keys=5, p1=0.0932)
        row = stats.as_row()
        assert row["p1(%)"] == pytest.approx(9.32)
        assert row["Messages"] == 10


class TestLoadSnapshot:
    def test_total_and_normalized(self):
        snapshot = LoadSnapshot(time=0.0, loads=[2, 2, 4])
        assert snapshot.total == 8
        assert snapshot.normalized == pytest.approx([0.25, 0.25, 0.5])

    def test_imbalance_matches_definition(self):
        snapshot = LoadSnapshot(time=0.0, loads=[2, 2, 4])
        assert snapshot.imbalance == pytest.approx(0.5 - 1 / 3)

    def test_imbalance_never_negative(self):
        snapshot = LoadSnapshot(time=0.0, loads=[3, 3, 3])
        assert snapshot.imbalance >= 0.0
