"""Unit tests for topology declaration and validation."""

from __future__ import annotations

import pytest

from repro.dataflow.graph import Edge, Topology
from repro.exceptions import ConfigurationError
from repro.operators.aggregations import CountAggregator


def _counting_topology() -> Topology:
    topology = Topology("counts")
    topology.add_vertex("counter", CountAggregator, parallelism=4)
    topology.set_source("counter", scheme="PKG")
    return topology


class TestVertexAndEdge:
    def test_vertex_validation(self):
        topology = Topology("t")
        with pytest.raises(ConfigurationError):
            topology.add_vertex("", CountAggregator)
        with pytest.raises(ConfigurationError):
            topology.add_vertex("v", CountAggregator, parallelism=0)

    def test_edge_scheme_canonicalised(self):
        edge = Edge(source="a", target="b", scheme="dchoices")
        assert edge.scheme == "D-C"

    def test_edge_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            Edge(source="a", target="b", scheme="nonsense")


class TestTopologyConstruction:
    def test_duplicate_vertex_rejected(self):
        topology = Topology("t")
        topology.add_vertex("v", CountAggregator)
        with pytest.raises(ConfigurationError):
            topology.add_vertex("v", CountAggregator)

    def test_edge_with_unknown_vertex_rejected(self):
        topology = Topology("t")
        topology.add_vertex("v", CountAggregator)
        with pytest.raises(ConfigurationError):
            topology.add_edge("v", "missing")

    def test_source_cannot_be_target(self):
        topology = Topology("t")
        topology.add_vertex("v", CountAggregator)
        with pytest.raises(ConfigurationError):
            topology.add_edge("v", Topology.SOURCE)

    def test_empty_topology_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology("")

    def test_chaining(self):
        topology = (
            Topology("t")
            .add_vertex("a", CountAggregator)
            .add_vertex("b", CountAggregator)
            .set_source("a")
            .add_edge("a", "b", scheme="W-C", theta=0.01)
        )
        assert topology.outgoing("a")[0].scheme_options == {"theta": 0.01}


class TestTopologyValidation:
    def test_valid_topology_passes(self):
        _counting_topology().validate()

    def test_missing_source_rejected(self):
        topology = Topology("t")
        topology.add_vertex("v", CountAggregator)
        with pytest.raises(ConfigurationError):
            topology.validate()

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology("t").validate()

    def test_unreachable_vertex_rejected(self):
        topology = _counting_topology()
        topology.add_vertex("orphan", CountAggregator)
        with pytest.raises(ConfigurationError):
            topology.validate()

    def test_cycle_rejected(self):
        topology = Topology("t")
        topology.add_vertex("a", CountAggregator)
        topology.add_vertex("b", CountAggregator)
        topology.set_source("a")
        topology.add_edge("a", "b")
        topology.add_edge("b", "a")
        with pytest.raises(ConfigurationError):
            topology.validate()

    def test_topological_order(self):
        topology = Topology("t")
        for name in ("a", "b", "c"):
            topology.add_vertex(name, CountAggregator)
        topology.set_source("a")
        topology.add_edge("a", "b")
        topology.add_edge("b", "c")
        order = topology.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_queries(self):
        topology = _counting_topology()
        assert topology.vertex("counter").parallelism == 4
        assert len(topology.source_edges()) == 1
        assert topology.incoming("counter")[0].source == Topology.SOURCE
        with pytest.raises(ConfigurationError):
            topology.vertex("missing")
