"""Unit and behavioural tests for the dataflow runtime."""

from __future__ import annotations

import pytest

from repro.dataflow.graph import Topology
from repro.dataflow.runtime import run_topology
from repro.exceptions import ConfigurationError
from repro.operators.aggregations import CountAggregator
from repro.operators.base import StatelessOperator
from repro.operators.reconciliation import reconcile
from repro.types import Message
from repro.workloads.zipf_stream import ZipfWorkload


def _word_split_factory(instance_id: int) -> StatelessOperator:
    return StatelessOperator(
        lambda message: [
            Message(message.timestamp, word, 1) for word in str(message.value).split()
        ],
        instance_id=instance_id,
    )


def _counting_topology(scheme: str, parallelism: int = 4) -> Topology:
    topology = Topology("wordcount")
    topology.add_vertex("counter", CountAggregator, parallelism=parallelism)
    topology.set_source("counter", scheme=scheme)
    return topology


class TestRunTopology:
    def test_counts_all_messages(self):
        result = run_topology(_counting_topology("PKG"), ["a", "b", "a"] * 100)
        metrics = result.vertex_metrics("counter")
        assert metrics.messages == 300
        assert sum(metrics.instance_loads) == 300

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            run_topology(_counting_topology("PKG"), [])

    def test_invalid_topology_rejected_before_running(self):
        topology = Topology("broken")
        topology.add_vertex("v", CountAggregator)
        with pytest.raises(ConfigurationError):
            run_topology(topology, ["a"])

    def test_unknown_vertex_metrics_rejected(self):
        result = run_topology(_counting_topology("SG"), ["a"] * 10)
        with pytest.raises(ConfigurationError):
            result.vertex_metrics("nope")

    def test_bad_external_source_count(self):
        with pytest.raises(ConfigurationError):
            run_topology(_counting_topology("SG"), ["a"], num_external_sources=0)

    def test_key_grouping_keeps_key_on_one_instance(self):
        result = run_topology(_counting_topology("KG"), ["x", "y"] * 100)
        counters = result.instances["counter"]
        for key in ("x", "y"):
            holders = [c for c in counters if c.state.peek(key) is not None]
            assert len(holders) == 1

    def test_pkg_splits_key_over_at_most_two_instances(self):
        workload = ZipfWorkload(1.5, 100, 5000, seed=3)
        result = run_topology(_counting_topology("PKG", parallelism=8), workload,
                              num_external_sources=4)
        counters = result.instances["counter"]
        for key in range(1, 20):
            holders = [c for c in counters if c.state.peek(key) is not None]
            assert len(holders) <= 2

    def test_reconciled_counts_are_exact(self):
        workload = list(ZipfWorkload(1.8, 200, 10_000, seed=5))
        result = run_topology(_counting_topology("D-C", parallelism=8), workload,
                              num_external_sources=4)
        merged, cost = reconcile(result.instances["counter"], CountAggregator.merge)
        from collections import Counter

        assert merged == dict(Counter(workload))
        assert cost.max_replication <= 8

    def test_dchoices_balances_better_than_kg(self):
        def imbalance(scheme: str) -> float:
            workload = ZipfWorkload(1.8, 1000, 30_000, seed=7)
            result = run_topology(
                _counting_topology(scheme, parallelism=10), workload,
                num_external_sources=5,
            )
            return result.vertex_metrics("counter").imbalance

        assert imbalance("D-C") < imbalance("KG")

    def test_multi_stage_topology(self):
        topology = Topology("split-count")
        topology.add_vertex("splitter", _word_split_factory, parallelism=2)
        topology.add_vertex("counter", CountAggregator, parallelism=4)
        topology.set_source("splitter", scheme="SG")
        topology.add_edge("splitter", "counter", scheme="PKG")
        sentences = [Message(float(i), f"line-{i}", "alpha beta") for i in range(100)]
        result = run_topology(topology, sentences)
        assert result.vertex_metrics("splitter").messages == 100
        # every sentence produces two words
        assert result.vertex_metrics("counter").messages == 200
        merged, _ = reconcile(result.instances["counter"], CountAggregator.merge)
        assert merged == {"alpha": 100, "beta": 100}

    def test_vertex_metrics_state_sizes(self):
        result = run_topology(_counting_topology("KG"), ["a", "b", "c"] * 10)
        metrics = result.vertex_metrics("counter")
        assert metrics.total_state_entries == 3

    def test_imbalance_zero_for_idle_vertex(self):
        topology = Topology("t")
        topology.add_vertex("counter", CountAggregator, parallelism=2)
        topology.add_vertex("sink", CountAggregator, parallelism=2)
        topology.set_source("counter", scheme="SG")
        topology.add_edge("counter", "sink", scheme="SG")
        result = run_topology(topology, ["a"] * 10)
        # CountAggregator emits nothing, so the sink never sees traffic
        assert result.vertex_metrics("sink").messages == 0
        assert result.vertex_metrics("sink").imbalance == 0.0


class TestBatchedExecution:
    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            run_topology(_counting_topology("SG"), ["a"], batch_size=0)

    def test_empty_workload_rejected_in_batched_mode(self):
        with pytest.raises(ConfigurationError):
            run_topology(_counting_topology("PKG"), [], batch_size=64)

    @pytest.mark.parametrize("batch_size", [1, 3, 100, 4096])
    def test_counts_identical_for_every_batch_size(self, batch_size):
        result = run_topology(
            _counting_topology("PKG"), ["a", "b", "a"] * 100,
            batch_size=batch_size,
        )
        metrics = result.vertex_metrics("counter")
        assert metrics.messages == 300
        assert sum(metrics.instance_loads) == 300

    def test_multi_stage_batched_matches_scalar_loads(self):
        def build():
            topology = Topology("split-count")
            topology.add_vertex("splitter", _word_split_factory, parallelism=2)
            topology.add_vertex("counter", CountAggregator, parallelism=4)
            topology.set_source("splitter", scheme="SG")
            topology.add_edge("splitter", "counter", scheme="PKG")
            return topology

        sentences = [
            Message(float(i), f"line-{i}", "alpha beta") for i in range(200)
        ]
        scalar = run_topology(build(), sentences, batch_size=1)
        batched = run_topology(build(), sentences, batch_size=64)
        for vertex in ("splitter", "counter"):
            assert (
                batched.vertex_metrics(vertex).instance_loads
                == scalar.vertex_metrics(vertex).instance_loads
            )
        merged, _ = reconcile(batched.instances["counter"], CountAggregator.merge)
        assert merged == {"alpha": 200, "beta": 200}
