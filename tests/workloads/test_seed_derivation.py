"""Regression pins for the unified ``derive_seed`` contract.

Every workload and scenario component derives its RNG seed through
``derive_seed``; these pins freeze the contract so seeds (and therefore
every cached experiment fingerprint and published number) never drift:

- a single non-negative int is the identity — pre-existing integer seeds
  keep producing the exact streams they always did;
- anything else is hashed through SHA-256 of the parts joined with the
  unit separator, masked to 63 bits — stable across processes, platforms
  and Python versions (unlike the salted builtin ``hash``).
"""

from __future__ import annotations

import pytest

from repro.workloads.base import derive_seed
from repro.workloads.drift import DriftingZipfWorkload
from repro.workloads.synthetic import WikipediaLikeWorkload
from repro.workloads.zipf_stream import ZipfWorkload


class TestDeriveSeedContract:
    def test_single_small_int_is_identity(self):
        # The load-bearing guarantee: every experiment config that passes
        # an explicit integer seed keeps its exact stream and fingerprint.
        for seed in (0, 1, 7, 42, 1601, 2**62):
            assert derive_seed(seed) == seed

    def test_negative_and_oversized_ints_fold_into_range(self):
        assert derive_seed(-3) == 3
        assert derive_seed(2**63 + 5) == 5

    def test_pinned_derived_values(self):
        # SHA-256-derived constants; a change here means every string-seeded
        # stream in existence silently changed. Do not update casually.
        assert derive_seed("flash_crowd", "truth", 42) == 5250009266533377696
        assert derive_seed("flash_crowd", "render", 42) == 3512429168804915010
        assert derive_seed("a", "b") == 8092085543480239773
        assert derive_seed("ab") == 8903089780838645540
        assert derive_seed(1, 2) == 1292624397657047035

    def test_range_and_determinism(self):
        values = {
            derive_seed("scenario", component, seed)
            for component in ("truth", "render", "noise")
            for seed in range(25)
        }
        assert len(values) == 75  # components and seeds never collide here
        for value in values:
            assert 0 <= value < 2**63
        assert derive_seed("scenario", "truth", 3) == derive_seed(
            "scenario", "truth", 3
        )

    def test_separator_prevents_concatenation_collisions(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")
        assert derive_seed("ab") != derive_seed("a", "b")

    def test_no_parts_rejected(self):
        with pytest.raises(ValueError):
            derive_seed()


class TestWorkloadAdoption:
    def test_int_seed_streams_unchanged(self):
        # Fingerprint of the first keys of a seed-7 Zipf stream — pinned so
        # the derive_seed adoption provably kept integer-seed behaviour.
        keys = list(ZipfWorkload(1.2, 100, 10, seed=7))
        assert keys == [8, 43, 18, 1, 2, 36, 1, 25, 21, 3]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: ZipfWorkload(1.3, 500, 2_000, seed=seed),
            lambda seed: DriftingZipfWorkload(1.3, 500, 2_000, num_epochs=4, seed=seed),
            lambda seed: WikipediaLikeWorkload(2_000, seed=seed),
        ],
        ids=["zipf", "drift", "wikipedia"],
    )
    def test_string_seeds_accepted_and_deterministic(self, factory):
        first = list(factory("trial-a").keys())
        again = list(factory("trial-a").keys())
        other = list(factory("trial-b").keys())
        assert first == again
        assert first != other

    def test_string_seed_equals_derived_int_seed(self):
        derived = derive_seed("trial-a")
        assert list(ZipfWorkload(1.3, 500, 1_000, seed="trial-a")) == list(
            ZipfWorkload(1.3, 500, 1_000, seed=derived)
        )
