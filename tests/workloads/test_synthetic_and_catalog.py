"""Unit tests for the synthetic real-world stand-ins, file loader and catalog."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.catalog import DATASETS, dataset_stats, load_dataset, table1_rows
from repro.workloads.file_stream import FileWorkload
from repro.workloads.synthetic import (
    CashtagLikeWorkload,
    TwitterLikeWorkload,
    WikipediaLikeWorkload,
)


class TestWikipediaLike:
    def test_p1_matches_published_value(self):
        workload = WikipediaLikeWorkload(num_messages=200_000, num_body_keys=5000, seed=1)
        counts = Counter(workload.keys())
        p1 = counts.most_common(1)[0][1] / 200_000
        assert p1 == pytest.approx(0.0932, abs=0.01)

    def test_nominal_stats(self):
        workload = WikipediaLikeWorkload(num_messages=1000, num_body_keys=100)
        stats = workload.stats()
        assert stats.symbol == "WP"
        assert stats.p1 == pytest.approx(0.0932, abs=1e-4)

    def test_hot_key_is_labelled_head(self):
        workload = WikipediaLikeWorkload(num_messages=5000, num_body_keys=100, seed=2)
        counts = Counter(workload.keys())
        assert counts.most_common(1)[0][0].startswith("head-")

    def test_reproducible(self):
        one = list(WikipediaLikeWorkload(num_messages=2000, num_body_keys=100, seed=3))
        two = list(WikipediaLikeWorkload(num_messages=2000, num_body_keys=100, seed=3))
        assert one == two


class TestTwitterLike:
    def test_p1_matches_published_value(self):
        workload = TwitterLikeWorkload(num_messages=200_000, num_body_keys=5000, seed=1)
        counts = Counter(workload.keys())
        p1 = counts.most_common(1)[0][1] / 200_000
        assert p1 == pytest.approx(0.0267, abs=0.007)

    def test_nominal_stats(self):
        stats = TwitterLikeWorkload(num_messages=1000, num_body_keys=5000).stats()
        assert stats.symbol == "TW"
        assert stats.p1 == pytest.approx(0.0267, abs=1e-4)


class TestCashtagLike:
    def test_key_space_size(self):
        workload = CashtagLikeWorkload(num_messages=20_000, num_keys=500, seed=1)
        keys = set(workload.keys())
        assert len(keys) <= 500

    def test_drift_changes_hot_key(self):
        workload = CashtagLikeWorkload(
            num_messages=40_000, num_keys=500, num_hours=4, exponent=1.5, seed=1
        )
        keys = list(workload.keys())
        quarter = len(keys) // 4
        first = Counter(keys[:quarter]).most_common(1)[0][0]
        last = Counter(keys[-quarter:]).most_common(1)[0][0]
        assert first != last

    def test_stats_symbol(self):
        assert CashtagLikeWorkload(num_messages=100).stats().symbol == "CT"

    def test_epoch_accessors(self):
        workload = CashtagLikeWorkload(num_messages=800, num_hours=8)
        assert workload.num_epochs == 8
        assert workload.epoch_of_message(0) == 0


class TestFileWorkload:
    def test_reads_keys_from_file(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("a\nb\na\n\nc\n", encoding="utf-8")
        workload = FileWorkload(path)
        assert list(workload.keys()) == ["a", "b", "a", "c"]

    def test_stats_counts_exactly(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("a\na\nb\n", encoding="utf-8")
        stats = FileWorkload(path, name="test").stats()
        assert stats.messages == 3
        assert stats.keys == 2
        assert stats.p1 == pytest.approx(2 / 3)

    def test_key_column_extraction(self, tmp_path):
        path = tmp_path / "records.tsv"
        path.write_text("1\tfoo\n2\tbar\n", encoding="utf-8")
        workload = FileWorkload(path, key_column=1)
        assert list(workload.keys()) == ["foo", "bar"]

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "records.txt"
        path.write_text("only-one-column\n", encoding="utf-8")
        workload = FileWorkload(path, key_column=3)
        with pytest.raises(WorkloadError):
            list(workload.keys())

    def test_limit(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("\n".join(str(i) for i in range(100)), encoding="utf-8")
        workload = FileWorkload(path, limit=10)
        assert len(list(workload.keys())) == 10

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            FileWorkload(tmp_path / "does-not-exist.txt")

    def test_negative_limit_rejected(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("a\n", encoding="utf-8")
        with pytest.raises(WorkloadError):
            FileWorkload(path, limit=-1)


class TestCatalog:
    def test_all_symbols_present(self):
        assert set(DATASETS) == {"WP", "TW", "CT", "ZF"}

    def test_dataset_stats_published_values(self):
        stats = dataset_stats("WP")
        assert stats.messages == 22_000_000
        assert stats.keys == 2_900_000
        assert stats.p1 == pytest.approx(0.0932)

    def test_dataset_stats_unknown_symbol(self):
        with pytest.raises(WorkloadError):
            dataset_stats("XX")

    def test_load_dataset_zf(self):
        workload = load_dataset("zf", exponent=1.5, num_keys=100, num_messages=50)
        assert len(list(workload)) == 50

    def test_load_dataset_wp(self):
        workload = load_dataset("WP", num_messages=100, seed=1)
        assert len(list(workload)) == 100

    def test_load_dataset_unknown(self):
        with pytest.raises(WorkloadError):
            load_dataset("nope")

    def test_table1_rows_published(self):
        rows = table1_rows(measured=False)
        assert len(rows) == 4
        assert {row["Symbol"] for row in rows} == {"WP", "TW", "CT", "ZF"}

    def test_substitution_notes_present(self):
        assert all(entry.substitution_note for entry in DATASETS.values())

    def test_load_dataset_rejects_unknown_kwargs(self):
        # A typo must not silently build a default-sized stream.
        with pytest.raises(WorkloadError, match="num_mesages"):
            load_dataset("ZF", num_mesages=10)
        with pytest.raises(WorkloadError, match="WP"):
            load_dataset("WP", exponent=1.5)  # WP has no exponent knob


class TestTable1Measured:
    """Measured stand-in stats track the published Table I numbers."""

    @staticmethod
    def _measured_rows():
        rows = table1_rows(
            measured=True,
            overrides={
                "WP": {"num_messages": 150_000, "num_body_keys": 20_000},
                "TW": {"num_messages": 150_000, "num_body_keys": 30_000},
                # One hour isolates the within-epoch distribution the CT
                # stand-in was calibrated on (drift dilutes the global p1).
                "CT": {"num_messages": 150_000, "num_hours": 1},
            },
            num_messages=150_000,
            exponent=2.0,
            num_keys=10_000,
        )
        return {row["Symbol"]: row for row in rows}

    def test_measured_p1_matches_published_within_tolerance(self):
        rows = self._measured_rows()
        # Published Table I p1 values: WP 9.32%, TW 2.67%, CT 3.29%.
        assert rows["WP"]["p1(%)"] == pytest.approx(9.32, abs=1.0)
        assert rows["TW"]["p1(%)"] == pytest.approx(2.67, abs=0.7)
        assert rows["CT"]["p1(%)"] == pytest.approx(3.29, abs=2.5)
        # ZF publishes no p1 (NaN); the Zipf(z=2) stand-in must match the
        # analytic value p1 = 1/zeta(2) ~ 60.8%.
        assert rows["ZF"]["p1(%)"] == pytest.approx(60.8, abs=2.0)

    def test_measured_scale_honours_overrides(self):
        rows = self._measured_rows()
        for symbol in ("WP", "TW", "CT", "ZF"):
            assert rows[symbol]["Messages"] == 150_000

    def test_unknown_override_symbol_rejected(self):
        with pytest.raises(WorkloadError, match="XX"):
            table1_rows(measured=True, overrides={"XX": {}})

    def test_invalid_override_kwargs_rejected(self):
        with pytest.raises(WorkloadError, match="CT"):
            table1_rows(measured=True, overrides={"CT": {"num_mesages": 10}})
