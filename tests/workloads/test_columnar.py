"""Unit tests for the columnar stream layer: KeyDictionary + ColumnarBatch.

The columnar pipeline's whole correctness story rests on the dictionary:
ids must be dense, stable and chunking-independent, the stored folded keys
must equal ``_key_to_int`` of the originals, and bounded mode must only
forget the forward direction.  These tests pin each of those properties in
isolation; the end-to-end byte-identity lives in
``tests/property/test_columnar_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.hashing.hash_family import _key_to_int
from repro.workloads.columnar import (
    ColumnarBatch,
    KeyDictionary,
    iter_batches_columnar,
)
from repro.workloads.drift import DriftingZipfWorkload
from repro.workloads.synthetic import CashtagLikeWorkload, WikipediaLikeWorkload
from repro.workloads.zipf_stream import ZipfWorkload


class TestKeyDictionary:
    def test_ids_are_dense_and_first_appearance_ordered(self):
        d = KeyDictionary()
        assert d.intern("b") == 0
        assert d.intern("a") == 1
        assert d.intern("b") == 0
        assert d.intern("c") == 2
        assert len(d) == 3
        assert [d.key_of(i) for i in range(3)] == ["b", "a", "c"]

    def test_folded_matches_key_to_int(self):
        d = KeyDictionary()
        keys = ["alpha", 42, "beta", -7, "alpha"]
        d.intern_keys(keys)
        expected = [_key_to_int(k) for k in ["alpha", 42, "beta", -7]]
        assert d.folded.tolist() == expected

    @pytest.mark.parametrize("chunk", [1, 3, 7, 1000])
    def test_id_assignment_independent_of_chunking(self, chunk):
        # Interning the same stream in any chunking yields the same ids —
        # the property that makes batch-size-independent numbering possible.
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 50, size=500).tolist()
        reference = KeyDictionary()
        expected = [reference.intern(k) for k in stream]
        chunked = KeyDictionary()
        got: list[int] = []
        for start in range(0, len(stream), chunk):
            got.extend(
                chunked.intern_keys(stream[start : start + chunk]).tolist()
            )
        assert got == expected
        assert len(chunked) == len(reference)

    @pytest.mark.parametrize("chunk", [1, 7, 97])
    def test_intern_int_array_matches_elementwise(self, chunk):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 40, size=400)
        reference = KeyDictionary()
        expected = [reference.intern(int(v)) for v in stream.tolist()]
        vectorized = KeyDictionary()
        got: list[int] = []
        for start in range(0, stream.size, chunk):
            got.extend(
                vectorized.intern_int_array(stream[start : start + chunk]).tolist()
            )
        assert got == expected

    def test_intern_mapped_array_calls_key_fn_once_per_distinct_value(self):
        d = KeyDictionary()
        calls: list[int] = []

        def name(value: int) -> str:
            calls.append(value)
            return f"key-{value}"

        ids = d.intern_mapped_array(np.array([3, 1, 3, 2, 1]), name)
        assert sorted(set(calls)) == [1, 2, 3]
        assert [d.key_of(int(i)) for i in ids.tolist()] == [
            "key-3", "key-1", "key-3", "key-2", "key-1",
        ]
        # first-appearance order: 3 -> 0, 1 -> 1, 2 -> 2
        assert ids.tolist() == [0, 1, 0, 2, 1]

    def test_bounded_mode_evicts_forward_entries_only(self):
        d = KeyDictionary(max_keys=3)
        for key in ("a", "b", "c", "d"):
            d.intern(key)
        # "a" (the oldest forward entry) was evicted when "d" arrived.
        assert d.lookup("a") is None
        assert d.lookup("b") == 1
        # Reverse decoding survives eviction: id 0 still names "a".
        assert d.key_of(0) == "a"
        assert d.decode([0, 3]) == ["a", "d"]

    def test_bounded_reintern_roundtrip_issues_fresh_id(self):
        d = KeyDictionary(max_keys=3)
        for key in ("a", "b", "c", "d"):  # evicts "a"
            d.intern(key)
        fresh = d.intern("a")  # re-appears: new id, old one stays decodable
        assert fresh == 4
        assert d.key_of(4) == "a" == d.key_of(0)
        assert len(d) == 5
        # Both ids fold to the same hash input, so routing is unaffected.
        assert d.folded[0] == d.folded[4] == np.uint64(_key_to_int("a"))

    def test_max_keys_validation(self):
        with pytest.raises(WorkloadError):
            KeyDictionary(max_keys=0)

    def test_decode_rejects_out_of_range(self):
        d = KeyDictionary()
        d.intern("x")
        with pytest.raises(WorkloadError):
            d.key_of(1)
        with pytest.raises(WorkloadError):
            d.decode([0, 1])


class TestColumnarBatch:
    def test_keys_indices_and_views(self):
        d = KeyDictionary()
        ids = d.intern_keys(["a", "b", "a", "c", "b"])
        batch = ColumnarBatch(ids, d, base_index=10)
        assert len(batch) == 5
        assert batch.keys() == ["a", "b", "a", "c", "b"]
        assert batch.indices().tolist() == [10, 11, 12, 13, 14]

        part = batch.slice(1, 4)
        assert part.keys() == ["b", "a", "c"]
        assert part.base_index == 11

        strided = batch.strided(1, 2)
        assert strided.keys() == ["b", "c"]
        assert strided.base_index == 11
        # Views share the parent array (zero-copy contract).
        assert strided.ids.base is batch.ids or strided.ids.base is ids


class TestWorkloadColumnarIterators:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ZipfWorkload(1.4, 500, 5_000, seed=9),
            lambda: DriftingZipfWorkload(1.4, 400, 5_000, num_epochs=4, seed=9),
            lambda: WikipediaLikeWorkload(5_000, seed=9),
            lambda: CashtagLikeWorkload(5_000, seed=9),
        ],
        ids=["zipf", "drift", "wikipedia", "cashtag"],
    )
    @pytest.mark.parametrize("batch_size", [1, 997, 8192])
    def test_columnar_stream_decodes_to_scalar_stream(self, factory, batch_size):
        expected = list(factory().keys())
        decoded: list = []
        index = 0
        for batch in factory().iter_batches_columnar(batch_size):
            assert batch.base_index == index
            decoded.extend(batch.keys())
            index += len(batch)
        assert decoded == expected

    def test_id_numbering_is_batch_size_independent(self):
        def ids_at(batch_size: int) -> list[int]:
            out: list[int] = []
            for batch in ZipfWorkload(1.4, 300, 4_000, seed=1).iter_batches_columnar(
                batch_size
            ):
                out.extend(batch.ids.tolist())
            return out

        assert ids_at(1) == ids_at(613) == ids_at(8192)

    def test_generic_chunker_matches_native(self):
        native: list[int] = []
        for batch in ZipfWorkload(1.4, 300, 3_000, seed=2).iter_batches_columnar(256):
            native.extend(batch.ids.tolist())
        generic: list[int] = []
        for batch in iter_batches_columnar(
            ZipfWorkload(1.4, 300, 3_000, seed=2).keys(), 256
        ):
            generic.extend(batch.ids.tolist())
        assert native == generic

    def test_caller_supplied_dictionary_is_shared(self):
        d = KeyDictionary()
        for batch in WikipediaLikeWorkload(2_000, seed=3).iter_batches_columnar(
            512, dictionary=d
        ):
            assert batch.dictionary is d
        assert len(d) > 0
