"""Unit tests for the Zipf and drifting-Zipf workloads."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.base import materialize
from repro.workloads.drift import DriftingZipfWorkload
from repro.workloads.zipf_stream import ZipfWorkload


class TestZipfWorkload:
    def test_length_matches_request(self):
        workload = ZipfWorkload(1.0, 100, 5000, seed=1)
        assert len(list(workload.keys())) == 5000

    def test_keys_within_support(self):
        workload = ZipfWorkload(1.0, 100, 5000, seed=1)
        keys = set(workload.keys())
        assert all(1 <= key <= 100 for key in keys)

    def test_reproducible_for_same_seed(self):
        one = list(ZipfWorkload(1.2, 100, 1000, seed=7))
        two = list(ZipfWorkload(1.2, 100, 1000, seed=7))
        assert one == two

    def test_different_seeds_differ(self):
        one = list(ZipfWorkload(1.2, 100, 1000, seed=7))
        two = list(ZipfWorkload(1.2, 100, 1000, seed=8))
        assert one != two

    def test_empirical_p1_close_to_distribution(self):
        workload = ZipfWorkload(1.8, 500, 50_000, seed=2)
        counts = Counter(workload.keys())
        empirical_p1 = counts.most_common(1)[0][1] / 50_000
        assert empirical_p1 == pytest.approx(workload.distribution.p1, rel=0.1)

    def test_stats_reports_nominal_values(self):
        workload = ZipfWorkload(1.4, 1000, 12345, seed=0)
        stats = workload.stats()
        assert stats.symbol == "ZF"
        assert stats.messages == 12345
        assert stats.keys == 1000
        assert stats.p1 == pytest.approx(workload.distribution.p1)

    def test_measured_stats_counts_stream(self):
        workload = ZipfWorkload(1.4, 50, 2000, seed=0)
        measured = workload.measured_stats()
        assert measured.messages == 2000
        assert measured.keys <= 50

    def test_messages_iterator_timestamps(self):
        workload = ZipfWorkload(1.0, 10, 5, seed=0)
        messages = list(workload.messages())
        assert [message.timestamp for message in messages] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_rejects_negative_messages(self):
        with pytest.raises(WorkloadError):
            ZipfWorkload(1.0, 10, -1)

    def test_zero_messages_allowed(self):
        assert list(ZipfWorkload(1.0, 10, 0)) == []

    def test_materialize_limit(self):
        workload = ZipfWorkload(1.0, 10, 1000, seed=0)
        assert len(materialize(workload, limit=10)) == 10


class TestDriftingZipfWorkload:
    def test_length_matches_request(self):
        workload = DriftingZipfWorkload(1.0, 100, 3000, num_epochs=3, seed=1)
        assert len(list(workload.keys())) == 3000

    def test_reproducible_for_same_seed(self):
        one = list(DriftingZipfWorkload(1.5, 50, 2000, num_epochs=4, seed=3))
        two = list(DriftingZipfWorkload(1.5, 50, 2000, num_epochs=4, seed=3))
        assert one == two

    def test_no_drift_fraction_keeps_head_stable(self):
        workload = DriftingZipfWorkload(
            2.0, 100, 4000, num_epochs=4, drift_fraction=0.0, seed=5
        )
        keys = list(workload.keys())
        first_head = Counter(keys[:1000]).most_common(1)[0][0]
        last_head = Counter(keys[-1000:]).most_common(1)[0][0]
        assert first_head == last_head

    def test_full_drift_changes_head(self):
        workload = DriftingZipfWorkload(
            2.0, 500, 20_000, num_epochs=4, drift_fraction=1.0, seed=5
        )
        keys = list(workload.keys())
        epoch_length = 5000
        heads = [
            Counter(keys[i * epoch_length : (i + 1) * epoch_length]).most_common(1)[0][0]
            for i in range(4)
        ]
        assert len(set(heads)) > 1

    def test_epoch_of_message(self):
        workload = DriftingZipfWorkload(1.0, 10, 100, num_epochs=4, seed=0)
        assert workload.epoch_of_message(0) == 0
        assert workload.epoch_of_message(25) == 1
        assert workload.epoch_of_message(99) == 3

    def test_epoch_of_message_out_of_range(self):
        workload = DriftingZipfWorkload(1.0, 10, 100, num_epochs=4, seed=0)
        with pytest.raises(WorkloadError):
            workload.epoch_of_message(100)

    def test_invalid_construction(self):
        with pytest.raises(WorkloadError):
            DriftingZipfWorkload(1.0, 10, 100, num_epochs=0)
        with pytest.raises(WorkloadError):
            DriftingZipfWorkload(1.0, 10, 100, drift_fraction=1.5)
        with pytest.raises(WorkloadError):
            DriftingZipfWorkload(1.0, 10, -5)

    def test_stats(self):
        workload = DriftingZipfWorkload(1.3, 200, 1000, num_epochs=5, seed=0)
        stats = workload.stats()
        assert stats.symbol == "ZF-DRIFT"
        assert stats.keys == 200
        assert stats.messages == 1000
