"""Tests for rescale events, spec parsing and plan semantics."""

from __future__ import annotations

import pytest

from repro.elasticity.events import (
    RescalePlan,
    WorkerFail,
    WorkerJoin,
    WorkerLeave,
    as_plan,
    parse_event,
)
from repro.exceptions import ConfigurationError


class TestEventParsing:
    def test_parse_each_kind(self):
        assert parse_event("join@5000") == WorkerJoin(offset=5000)
        assert parse_event("leave@12000") == WorkerLeave(offset=12000)
        assert parse_event("fail@15000") == WorkerFail(offset=15000)

    def test_parse_is_case_and_whitespace_tolerant(self):
        assert parse_event("  JOIN@7 ") == WorkerJoin(offset=7)

    @pytest.mark.parametrize(
        "spec", ["join", "@5", "grow@5", "join@", "join@x", "join@-1"]
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_event(spec)

    def test_event_spec_round_trips(self):
        event = parse_event("fail@31337")
        assert parse_event(event.spec) == event

    def test_new_num_workers(self):
        assert WorkerJoin(offset=0).new_num_workers(10) == 11
        assert WorkerLeave(offset=0).new_num_workers(10) == 9
        assert WorkerFail(offset=0).new_num_workers(10) == 9

    def test_only_fail_loses_state(self):
        assert WorkerFail(offset=0).loses_state
        assert not WorkerLeave(offset=0).loses_state
        assert not WorkerJoin(offset=0).loses_state

    def test_base_class_and_unknown_kinds_rejected(self):
        from repro.elasticity.events import RescaleEvent

        with pytest.raises(ConfigurationError):
            RescaleEvent(offset=5)  # kind "" — must use a concrete subclass
        with pytest.raises(ConfigurationError):
            RescaleEvent(offset=5, kind="teleport")


class TestRescalePlan:
    def test_parse_multi_event_spec(self):
        plan = RescalePlan.parse("join@5000,leave@12000,fail@15000")
        assert [event.kind for event in plan.events] == ["join", "leave", "fail"]
        assert plan.spec == "join@5000,leave@12000,fail@15000"

    def test_events_sorted_by_offset(self):
        plan = RescalePlan.parse("fail@300,join@100,leave@200")
        assert [event.offset for event in plan.events] == [100, 200, 300]

    def test_empty_spec_is_falsy(self):
        assert not RescalePlan.parse("")
        assert len(RescalePlan.parse("")) == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            RescalePlan.parse("join@1", policy="teleport")

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            RescalePlan.parse("join@1", migration_window=-1)

    def test_workers_at_walks_the_trajectory(self):
        plan = RescalePlan.parse("join@100,join@200,leave@300")
        assert plan.workers_at(0, 10) == 10
        assert plan.workers_at(99, 10) == 10
        assert plan.workers_at(100, 10) == 11  # fires before message 100
        assert plan.workers_at(250, 10) == 12
        assert plan.workers_at(10_000, 10) == 11

    def test_trajectory_points(self):
        plan = RescalePlan.parse("join@100,fail@300")
        assert plan.trajectory(10) == [(100, 11), (300, 10)]

    def test_validate_for_rejects_shrink_below_one(self):
        plan = RescalePlan.parse("leave@10,fail@20")
        plan.validate_for(5)  # fine
        with pytest.raises(ConfigurationError):
            plan.validate_for(2)

    def test_as_plan_normalisation(self):
        assert as_plan(None) is None
        assert as_plan("") is None
        plan = RescalePlan.parse("join@1")
        assert as_plan(plan) is plan
        parsed = as_plan("join@1,fail@2", policy="migrate", migration_window=7)
        assert parsed is not None
        assert parsed.policy == "migrate"
        assert parsed.migration_window == 7
