"""Tests for rescale policies and the migration-cost accountant."""

from __future__ import annotations

import pytest

from repro.elasticity.accountant import MigrationCostAccountant
from repro.elasticity.events import WorkerFail, WorkerJoin
from repro.elasticity.policies import POLICY_NAMES, get_policy
from repro.exceptions import ConfigurationError
from repro.partitioning.registry import create_partitioner


class TestPolicyRegistry:
    def test_canonical_names(self):
        assert POLICY_NAMES == ("rehash", "migrate", "remap")

    def test_lookup_case_insensitive(self):
        assert get_policy("REHASH").name == "rehash"

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            get_policy("nope")

    def test_windows(self):
        assert get_policy("rehash").misroute_window(500) == 0
        assert get_policy("migrate").misroute_window(500) == 500
        assert get_policy("remap").misroute_window(500) == 0


class TestPolicyApply:
    def _warm_dchoices(self, num_workers: int = 8):
        partitioner = create_partitioner(
            "D-C", num_workers=num_workers, seed=1, warmup_messages=0
        )
        for _ in range(300):
            partitioner.route("hot")
            partitioner.route("warm")
        return partitioner

    def test_rehash_resets_sender_state(self):
        partitioner = self._warm_dchoices()
        get_policy("rehash").apply(partitioner, 9)
        assert partitioner.num_workers == 9
        assert partitioner.local_loads == [0] * 9
        assert partitioner.sketch.total == 0  # head table discarded

    @pytest.mark.parametrize("policy", ["migrate", "remap"])
    def test_incremental_policies_preserve_sender_state(self, policy):
        partitioner = self._warm_dchoices()
        routed_before = partitioner.messages_routed
        head_before = set(partitioner.current_head())
        get_policy(policy).apply(partitioner, 9)
        assert partitioner.num_workers == 9
        assert sum(partitioner.local_loads) == routed_before
        assert set(partitioner.current_head()) == head_before  # head preserved

    def test_shrink_drops_highest_worker_loads(self):
        partitioner = create_partitioner("PKG", num_workers=4, seed=0)
        for index in range(400):
            partitioner.route(f"k{index % 40}")
        loads = partitioner.local_loads
        get_policy("migrate").apply(partitioner, 3)
        assert partitioner.local_loads == loads[:3]


class TestAccountant:
    def test_event_records_and_totals(self):
        accountant = MigrationCostAccountant(
            get_policy("migrate"), migration_window=4, state_bytes_per_entry=10
        )
        record = accountant.begin_event(WorkerJoin(offset=5), 4, 5)
        accountant.finish_event(
            record,
            moved_keys=frozenset({"a", "b"}),
            entries_migrated=3,
            entries_lost=0,
            head_keys_preserved=1,
        )
        # Window of 4 tuples: two hit moved keys, two do not.
        for key in ("a", "x", "b", "y"):
            assert accountant.window_open
            accountant.tick(key)
        assert not accountant.window_open  # window exhausted

        report = accountant.report()
        assert report.keys_moved == 2
        assert report.entries_migrated == 3
        assert report.bytes_migrated == 30
        assert report.tuples_misrouted == 2
        assert report.events[0].misroute_window == 4
        assert report.events[0].head_keys_preserved == 1

    def test_no_window_for_rehash(self):
        accountant = MigrationCostAccountant(
            get_policy("rehash"), migration_window=100
        )
        record = accountant.begin_event(WorkerFail(offset=9), 5, 4)
        accountant.finish_event(
            record,
            moved_keys=frozenset({"a"}),
            entries_migrated=0,
            entries_lost=7,
            head_keys_preserved=0,
        )
        assert not accountant.window_open
        assert accountant.report().entries_lost == 7

    def test_newer_event_supersedes_open_window(self):
        accountant = MigrationCostAccountant(
            get_policy("migrate"), migration_window=100
        )
        first = accountant.begin_event(WorkerJoin(offset=0), 4, 5)
        accountant.finish_event(
            first, frozenset({"a"}), entries_migrated=0, entries_lost=0,
            head_keys_preserved=0,
        )
        accountant.tick("a")
        second = accountant.begin_event(WorkerJoin(offset=10), 5, 6)
        accountant.finish_event(
            second, frozenset({"b"}), entries_migrated=0, entries_lost=0,
            head_keys_preserved=0,
        )
        accountant.tick("a")  # old moved key: no longer counted
        accountant.tick("b")
        report = accountant.report()
        assert report.events[0].tuples_misrouted == 1
        assert report.events[1].tuples_misrouted == 1

    def test_report_serialises(self):
        accountant = MigrationCostAccountant(get_policy("remap"))
        record = accountant.begin_event(WorkerJoin(offset=1), 2, 3)
        accountant.finish_event(
            record, frozenset(), entries_migrated=0, entries_lost=0,
            head_keys_preserved=0,
        )
        payload = accountant.report().to_dict()
        assert payload["rescale_policy"] == "remap"
        assert payload["events"][0]["kind"] == "join"
