"""Behavioural tests for the experiment drivers (scaled-down runs).

Each driver is run at (or below) its "quick" scale and the rows are checked
against the qualitative claims of the corresponding figure/table in the
paper.  These are the same checks EXPERIMENTS.md reports on.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_scale_imbalance,
    fig03_head_cardinality,
    fig04_fraction_workers,
    fig05_memory_vs_pkg,
    fig06_memory_vs_sg,
    fig08_head_tail_load,
    fig10_zipf_imbalance,
    fig13_throughput,
    fig14_latency,
    fig18_adaptive,
    table1_datasets,
)


@pytest.fixture(scope="module")
def fig1_result():
    config = fig01_scale_imbalance.Fig01Config(
        worker_counts=(5, 50),
        num_messages=60_000,
        num_body_keys=10_000,
    )
    return fig01_scale_imbalance.run(config)


class TestFig01:
    def test_rows_cover_all_combinations(self, fig1_result):
        assert len(fig1_result.rows) == 3 * 2

    def test_dchoices_beats_pkg_at_scale(self, fig1_result):
        pkg = fig1_result.filtered(scheme="PKG", workers=50)[0]["imbalance"]
        dchoices = fig1_result.filtered(scheme="D-C", workers=50)[0]["imbalance"]
        wchoices = fig1_result.filtered(scheme="W-C", workers=50)[0]["imbalance"]
        assert dchoices < pkg
        assert wchoices < pkg

    def test_imbalances_are_probabilities(self, fig1_result):
        assert all(0.0 <= row["imbalance"] <= 1.0 for row in fig1_result.rows)


class TestFig03:
    def test_head_small_relative_to_keyspace(self):
        result = fig03_head_cardinality.run(fig03_head_cardinality.Fig03Config.quick())
        assert all(row["head_cardinality"] <= 1000 for row in result.rows)

    def test_lower_threshold_gives_larger_head(self):
        result = fig03_head_cardinality.run(fig03_head_cardinality.Fig03Config.quick())
        for workers in (50, 100):
            for skew in (0.4, 1.2, 2.0):
                tight = result.filtered(workers=workers, skew=skew, theta="2/n")
                loose = result.filtered(workers=workers, skew=skew, theta="1/(5n)")
                assert loose[0]["head_cardinality"] >= tight[0]["head_cardinality"]


class TestFig04:
    def test_d_between_2_and_n(self):
        result = fig04_fraction_workers.run(fig04_fraction_workers.Fig04Config.quick())
        for row in result.rows:
            assert 2 <= row["d"] <= row["workers"]

    def test_fraction_below_one_at_scale(self):
        # the headline claim of Figure 4: at n in {50, 100}, d < n
        result = fig04_fraction_workers.run(fig04_fraction_workers.Fig04Config.quick())
        for row in result.rows:
            if row["workers"] >= 50:
                assert row["d_over_n"] < 1.0

    def test_d_non_decreasing_in_skew(self):
        result = fig04_fraction_workers.run(fig04_fraction_workers.Fig04Config.quick())
        for workers in (50, 100):
            values = [
                row["d"]
                for row in result.rows
                if row["workers"] == workers
            ]
            assert values == sorted(values)


class TestFig05AndFig06:
    def test_memory_overhead_vs_pkg_bounded(self):
        result = fig05_memory_vs_pkg.run(fig05_memory_vs_pkg.Fig05Config.quick())
        for row in result.rows:
            assert row["dchoices_vs_pkg_pct"] >= -1e-9
            assert row["wchoices_vs_pkg_pct"] <= 60.0
            assert row["dchoices_vs_pkg_pct"] <= row["wchoices_vs_pkg_pct"] + 1e-9

    def test_memory_saving_vs_sg_large(self):
        result = fig06_memory_vs_sg.run(fig06_memory_vs_sg.Fig06Config.quick())
        for row in result.rows:
            assert row["dchoices_vs_sg_pct"] < -50.0
            assert row["wchoices_vs_sg_pct"] < -50.0


class TestFig08:
    def test_load_fractions_sum_to_hundred(self):
        config = fig08_head_tail_load.Fig08Config(num_messages=40_000)
        result = fig08_head_tail_load.run(config)
        for scheme in ("PKG", "W-C", "RR"):
            rows = result.filtered(scheme=scheme)
            assert sum(row["total_load_pct"] for row in rows) == pytest.approx(100.0)

    def test_wchoices_closer_to_ideal_than_pkg(self):
        config = fig08_head_tail_load.Fig08Config(num_messages=40_000)
        result = fig08_head_tail_load.run(config)
        ideal = 100.0 / config.num_workers
        pkg_max = max(row["total_load_pct"] for row in result.filtered(scheme="PKG"))
        wc_max = max(row["total_load_pct"] for row in result.filtered(scheme="W-C"))
        assert abs(wc_max - ideal) <= abs(pkg_max - ideal)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig10_zipf_imbalance.Fig10Config(
            skews=(2.0,),
            worker_counts=(50,),
            key_counts=(10_000,),
            num_messages=60_000,
        )
        return fig10_zipf_imbalance.run(config)

    def test_all_schemes_present(self, result):
        assert {row["scheme"] for row in result.rows} == {"PKG", "D-C", "W-C", "RR"}

    def test_ordering_at_high_skew_and_scale(self, result):
        values = {row["scheme"]: row["imbalance"] for row in result.rows}
        assert values["W-C"] <= values["PKG"]
        assert values["D-C"] <= values["PKG"]


class TestFig13AndFig14:
    @pytest.fixture(scope="class")
    def throughput_result(self):
        config = fig13_throughput.Fig13Config(
            skews=(2.0,),
            num_messages=30_000,
            num_sources=16,
            num_workers=32,
        )
        return fig13_throughput.run(config)

    @pytest.fixture(scope="class")
    def latency_result(self):
        config = fig14_latency.Fig14Config(
            skews=(2.0,),
            num_messages=30_000,
            num_sources=16,
            num_workers=32,
        )
        return fig14_latency.run(config)

    def test_throughput_ordering(self, throughput_result):
        values = {row["scheme"]: row["throughput_per_s"] for row in throughput_result.rows}
        assert values["KG"] <= values["PKG"] * 1.05
        assert values["KG"] <= values["SG"]
        assert values["D-C"] >= 0.8 * values["SG"]
        assert values["W-C"] >= 0.8 * values["SG"]

    def test_latency_ordering(self, latency_result):
        values = {row["scheme"]: row["p99_ms"] for row in latency_result.rows}
        assert values["SG"] <= values["KG"]
        assert values["W-C"] <= values["KG"]

    def test_latency_rows_have_percentiles(self, latency_result):
        assert {"p50_ms", "p95_ms", "p99_ms", "max_avg_ms"} <= set(latency_result.rows[0])


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return fig18_adaptive.run(fig18_adaptive.Fig18Config.tiny())

    def test_rows_cover_every_scenario_and_scheme(self, result):
        config = fig18_adaptive.Fig18Config.tiny()
        scenarios = {row["scenario"] for row in result.rows}
        schemes = {row["scheme"] for row in result.rows}
        assert scenarios == set(config.scenarios)
        assert schemes == set(config.schemes)
        assert len(result.rows) == len(config.scenarios) * len(config.schemes)

    def test_ad_wins_at_least_two_drift_scenarios(self, result):
        # The headline claim of Figure 18 (ext.): strictly lower
        # worst-window imbalance than every static scheme at
        # equal-or-lower replication, on >= 2 drift scenarios.
        wins = {
            row["scenario"]
            for row in result.rows
            if row["scheme"] == fig18_adaptive.ADAPTIVE_SCHEME and row["ad_wins"]
        }
        assert len(wins) >= 2, f"AD won only {sorted(wins)}"

    def test_ad_switches_and_pays_for_them(self, result):
        # The controller must actually act under drift, and the
        # migration accountant must price the moves.  A switch may move
        # zero keys (the ladder rungs share the tail hash family, so
        # only head keys travel), but across the sweep some switch has
        # to carry a nonzero bill.
        ad_rows = [
            row for row in result.rows
            if row["scheme"] == fig18_adaptive.ADAPTIVE_SCHEME
        ]
        assert sum(row["switches"] for row in ad_rows) > 0
        assert any(row["keys_moved"] > 0 for row in ad_rows)
        for row in ad_rows:
            if row["switches"] == 0:
                assert row["keys_moved"] == 0 and row["entries_migrated"] == 0


class TestTable1:
    def test_rows_for_every_dataset(self):
        config = table1_datasets.Table1Config(measured_messages=20_000)
        result = table1_datasets.run(config)
        assert {row["symbol"] for row in result.rows} == {"WP", "TW", "CT", "ZF"}

    def test_measured_p1_close_to_published_for_wp(self):
        config = table1_datasets.Table1Config(measured_messages=50_000)
        result = table1_datasets.run(config)
        wp = next(row for row in result.rows if row["symbol"] == "WP")
        assert wp["repro_p1_pct"] == pytest.approx(9.32, abs=1.5)
