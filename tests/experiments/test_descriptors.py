"""Structural tests for the declarative experiment descriptors."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import SCALES, OutputSpec
from repro.experiments.registry import get_experiment, list_experiments, run_experiment


class TestDescriptors:
    def test_every_entry_carries_a_complete_descriptor(self):
        for experiment_id in list_experiments():
            descriptor = get_experiment(experiment_id).descriptor
            assert descriptor.experiment_id == experiment_id
            assert descriptor.title
            # Paper artifacts, plus beyond-paper extensions ("... (ext.)")
            # such as the scenario catalog.
            assert descriptor.artifact.startswith(("Figure", "Table", "Scenarios"))
            assert descriptor.claim.rstrip().endswith(".")
            assert descriptor.kind in {"analytical", "simulation", "cluster", "dataflow"}
            assert descriptor.output.kind in {"series", "bars", "table"}

    def test_every_scale_builds_a_config(self):
        for experiment_id in list_experiments():
            descriptor = get_experiment(experiment_id).descriptor
            for scale in SCALES:
                assert descriptor.config(scale) is not None

    def test_tiny_streams_are_no_larger_than_quick(self):
        for experiment_id in list_experiments():
            descriptor = get_experiment(experiment_id).descriptor
            tiny, quick = descriptor.config("tiny"), descriptor.config("quick")
            for attribute in ("num_messages", "measured_messages"):
                if hasattr(tiny, attribute):
                    assert getattr(tiny, attribute) <= getattr(quick, attribute)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig3").descriptor.config("huge")

    def test_simulation_configs_expose_batch_size(self):
        for experiment_id in list_experiments():
            descriptor = get_experiment(experiment_id).descriptor
            if descriptor.kind == "simulation":
                assert hasattr(descriptor.config("tiny"), "batch_size"), experiment_id

    def test_run_at_tiny_scale(self):
        result = run_experiment("fig3", scale="tiny")
        assert result.experiment_id == "fig3"
        assert result.rows

    def test_cli_main_runs_a_driver_module(self, capsys):
        get_experiment("fig3").descriptor.cli_main(["--scale", "tiny"])
        output = capsys.readouterr().out
        assert "head_cardinality" in output
        assert "legend:" in output  # the OutputSpec chart is rendered


class TestOutputSpec:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            experiment_id="x",
            title="t",
            rows=[
                {"scheme": "PKG", "workers": 5, "imbalance": 0.1},
                {"scheme": "PKG", "workers": 50, "imbalance": 0.3},
                {"scheme": "W-C", "workers": 5, "imbalance": 0.01},
                {"scheme": "W-C", "workers": 50, "imbalance": 0.02},
            ],
        )

    def test_series_render(self, result):
        spec = OutputSpec(kind="series", x="workers", y="imbalance", series_by=("scheme",))
        chart = spec.render(result)
        assert chart is not None
        assert "PKG" in chart and "W-C" in chart

    def test_bars_render(self, result):
        spec = OutputSpec(kind="bars", x="workers", y="imbalance", series_by=("scheme",))
        chart = spec.render(result)
        assert chart is not None
        assert "PKG/5" in chart

    def test_table_kind_renders_nothing(self, result):
        assert OutputSpec(kind="table").render(result) is None

    def test_unknown_kind_rejected(self, result):
        with pytest.raises(ConfigurationError):
            OutputSpec(kind="pie", x="workers", y="imbalance").render(result)
