"""Unit tests for the experiment plumbing (result container, formatting)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, format_table, print_result


class TestExperimentResult:
    def test_column_names_in_order(self):
        result = ExperimentResult(experiment_id="x", title="t")
        result.rows.append({"a": 1, "b": 2})
        result.rows.append({"b": 3, "c": 4})
        assert result.column_names() == ["a", "b", "c"]

    def test_series_extraction(self):
        result = ExperimentResult(experiment_id="x", title="t")
        result.rows = [
            {"workers": 5, "imbalance": 0.1},
            {"workers": 10, "imbalance": 0.2},
        ]
        assert result.series("workers", "imbalance") == {5: 0.1, 10: 0.2}

    def test_filtered(self):
        result = ExperimentResult(experiment_id="x", title="t")
        result.rows = [
            {"scheme": "PKG", "value": 1},
            {"scheme": "D-C", "value": 2},
            {"scheme": "PKG", "value": 3},
        ]
        assert len(result.filtered(scheme="PKG")) == 2
        assert result.filtered(scheme="D-C")[0]["value"] == 2


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_header_and_rows_rendered(self):
        text = format_table([{"scheme": "PKG", "imbalance": 0.25}])
        assert "scheme" in text
        assert "PKG" in text
        assert "0.25" in text

    def test_small_floats_use_scientific_notation(self):
        text = format_table([{"value": 3.2e-7}])
        assert "e-07" in text

    def test_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["a"])
        assert "b" not in text.splitlines()[0]

    def test_print_result_smoke(self, capsys):
        result = ExperimentResult(experiment_id="figX", title="demo")
        result.parameters = {"n": 5}
        result.rows = [{"value": 1}]
        result.notes = ["a note"]
        print_result(result)
        captured = capsys.readouterr().out
        assert "figX" in captured
        assert "a note" in captured
