"""Tests for the experiment registry and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.experiments.registry import get_experiment, list_experiments, run_experiment

EXPECTED_EXPERIMENTS = {
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "scenarios",
    "table1",
}


class TestRegistry:
    def test_every_figure_and_table_registered(self):
        assert set(list_experiments()) == EXPECTED_EXPERIMENTS

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("FIG1").experiment_id == "fig1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_entries_have_titles_and_configs(self):
        for experiment_id in list_experiments():
            entry = get_experiment(experiment_id)
            assert entry.title
            assert entry.quick_config() is not None
            assert entry.paper_config() is not None

    def test_run_experiment_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig3", scale="huge")

    def test_run_analytical_experiment_quick(self):
        # fig3 and fig4 are purely analytical, hence fast enough for a unit test
        result = run_experiment("fig3", scale="quick")
        assert result.experiment_id == "fig3"
        assert result.rows

    def test_fig4_quick_rows_have_expected_columns(self):
        result = run_experiment("fig4", scale="quick")
        assert {"workers", "skew", "d", "d_over_n"} <= set(result.rows[0])


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig13" in output
        assert "table1" in output

    def test_run_command_analytical(self, capsys):
        assert main(["run", "fig3"]) == 0
        output = capsys.readouterr().out
        assert "head_cardinality" in output

    def test_simulate_command(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--scheme",
                "PKG",
                "--workers",
                "5",
                "--messages",
                "2000",
                "--keys",
                "100",
                "--skew",
                "1.0",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "imbalance" in output

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestScenarioCli:
    def test_scenario_list_names_the_catalog(self, capsys):
        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("flash_crowd", "single_key_flood", "drift_mixture"):
            assert name in output

    def test_scenario_show_prints_spec_and_seeds(self, capsys):
        assert main(["scenario", "show", "single_key_flood"]) == 0
        output = capsys.readouterr().out
        assert "pattern: single_key_flood" in output
        assert "truth seed" in output
        assert "max_imbalance" in output

    def test_scenario_show_unknown_name_fails_loudly(self, capsys):
        assert main(["scenario", "show", "nope"]) == 2
        captured = capsys.readouterr()
        assert "unknown scenario" in captured.err

    def test_scenario_run_checks_expected_bounds(self, capsys):
        exit_code = main(
            [
                "scenario", "run", "flash_crowd",
                "--scheme", "D-C",
                "--messages", "5000",
                "--keys", "500",
                "--workers", "8",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "within expected bounds" in output

    def test_scenario_run_violation_exits_nonzero(self, capsys):
        # KG puts the whole 40% flood on one worker — far past every bound.
        exit_code = main(
            [
                "scenario", "run", "single_key_flood",
                "--scheme", "KG",
                "--messages", "5000",
                "--keys", "500",
                "--workers", "8",
            ]
        )
        assert exit_code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_scenario_run_unknown_name(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
