"""Behavioural tests for the elasticity experiment drivers (fig15/fig16)."""

from __future__ import annotations

import pytest

from repro.experiments import fig15_rescale_imbalance, fig16_migration_cost


@pytest.fixture(scope="module")
def fig15_result():
    return fig15_rescale_imbalance.run(
        fig15_rescale_imbalance.Fig15Config.tiny()
    )


@pytest.fixture(scope="module")
def fig16_result():
    return fig16_migration_cost.run(fig16_migration_cost.Fig16Config.tiny())


class TestFig15:
    def test_rows_cover_every_scheme(self, fig15_result):
        schemes = {row["scheme"] for row in fig15_result.rows}
        assert schemes == set(fig15_rescale_imbalance.SCHEMES)

    def test_worker_trajectory_follows_the_schedule(self, fig15_result):
        # tiny schedule: join@5000, leave@12000, fail@15000 from 10 workers.
        rows = fig15_result.filtered(scheme="PKG")
        by_offset = {row["messages"]: row["workers"] for row in rows}
        assert min(by_offset.values()) >= 8
        assert max(by_offset.values()) == 11
        final = by_offset[max(by_offset)]
        assert final == 9  # 10 + 1 - 1 - 1

    def test_imbalance_values_are_probabilities(self, fig15_result):
        assert all(
            0.0 <= row["imbalance"] <= 1.0 for row in fig15_result.rows
        )

    def test_load_aware_schemes_reconverge_below_pkg(self, fig15_result):
        def final_imbalance(scheme: str) -> float:
            rows = fig15_result.filtered(scheme=scheme)
            return rows[-1]["imbalance"]

        assert final_imbalance("W-C") < final_imbalance("PKG")
        assert final_imbalance("D-C") < final_imbalance("PKG")


class TestFig16:
    def test_rows_cover_every_scheme_policy_cell(self, fig16_result):
        cells = {(row["scheme"], row["policy"]) for row in fig16_result.rows}
        assert len(cells) == len(fig16_migration_cost.SCHEMES) * 3

    def test_every_cell_applied_all_events(self, fig16_result):
        assert all(row["events"] == 3 for row in fig16_result.rows)

    def test_consistent_hashing_moves_fewest_keys(self, fig16_result):
        for policy in ("rehash", "migrate", "remap"):
            ch = fig16_result.filtered(scheme="CH", policy=policy)[0]
            pkg = fig16_result.filtered(scheme="PKG", policy=policy)[0]
            assert ch["keys_moved"] * 4 < pkg["keys_moved"]

    def test_only_migrate_misroutes(self, fig16_result):
        for row in fig16_result.rows:
            if row["policy"] == "migrate" and row["scheme"] != "SG":
                assert row["tuples_misrouted"] > 0
            if row["policy"] in ("rehash", "remap"):
                assert row["tuples_misrouted"] == 0

    def test_fail_event_loses_state(self, fig16_result):
        # The tiny schedule ends with fail@15000, so every scheme records
        # lost entries (the failed worker held state by then).
        for scheme in fig16_migration_cost.SCHEMES:
            row = fig16_result.filtered(scheme=scheme, policy="migrate")[0]
            assert row["entries_lost"] > 0

    def test_bytes_scale_with_entries(self, fig16_result):
        for row in fig16_result.rows:
            assert row["bytes_migrated"] == row["entries_migrated"] * 64
