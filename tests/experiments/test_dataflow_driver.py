"""Behavioural tests for the multi-stage topology driver (fig17)."""

from __future__ import annotations

import pytest

from repro.experiments import fig17_topology_throughput as fig17
from repro.operators.reconciliation import merge_partial_states


@pytest.fixture(scope="module")
def tiny_config():
    return fig17.Fig17Config.tiny()


@pytest.fixture(scope="module")
def fig17_result(tiny_config):
    return fig17.run(tiny_config)


class TestFig17:
    def test_rows_cover_every_scheme(self, fig17_result):
        schemes = [row["scheme"] for row in fig17_result.rows]
        assert schemes == list(fig17.SCHEMES)

    def test_throughput_positive(self, fig17_result):
        assert all(row["throughput_per_s"] > 0 for row in fig17_result.rows)

    def test_kg_replication_is_one_and_pkg_at_most_two(self, fig17_result):
        by_scheme = {row["scheme"]: row for row in fig17_result.rows}
        assert by_scheme["KG"]["max_replication"] == 1
        assert by_scheme["PKG"]["max_replication"] <= 2

    def test_head_schemes_balance_better_than_kg(self, fig17_result):
        by_scheme = {row["scheme"]: row for row in fig17_result.rows}
        for scheme in ("D-C", "W-C"):
            assert (
                by_scheme[scheme]["aggregate_imbalance"]
                < by_scheme["KG"]["aggregate_imbalance"]
            )

    def test_reconciled_entries_identical_across_schemes(self, fig17_result):
        # Every scheme reconciles to the same (window, word) key set —
        # the balance changes, the answer does not.
        entries = {row["reconciled_entries"] for row in fig17_result.rows}
        assert len(entries) == 1

    def test_reconciled_totals_match_closed_windows(self, tiny_config):
        # Cross-check the two-level aggregation end to end: the sink's
        # (window, word) totals must equal the aggregator's closed-window
        # emissions exactly, independent of the grouping scheme.
        result_dc, _ = fig17.run_scheme(tiny_config, "D-C")
        result_kg, _ = fig17.run_scheme(tiny_config, "KG")

        def totals(topology_result):
            partials = [
                sink.partial_state()
                for sink in topology_result.instances["reconcile"]
            ]
            return merge_partial_states(partials, lambda a, b: a + b)

        assert totals(result_dc) == totals(result_kg)

    def test_batch_size_does_not_change_metrics(self, tiny_config):
        scalar, _ = fig17.run_scheme(tiny_config, "W-C", batch_size=1)
        batched, _ = fig17.run_scheme(tiny_config, "W-C", batch_size=512)
        for vertex in fig17.VERTICES:
            assert (
                batched.vertex_metrics(vertex).instance_loads
                == scalar.vertex_metrics(vertex).instance_loads
            )
