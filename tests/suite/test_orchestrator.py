"""Suite orchestrator tests, including the full tiny-scale smoke run."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.suite.orchestrator import run_suite
from repro.suite.store import ResultsStore


class TestSuiteSmoke:
    """The one-command reproduction: every registered experiment, in
    parallel, with cache hits on the second pass (the acceptance criterion
    of the suite subsystem)."""

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return ResultsStore(tmp_path_factory.mktemp("results"))

    @pytest.fixture(scope="class")
    def first_run(self, store):
        return run_suite(scale="tiny", jobs=2, store=store)

    def test_every_registered_experiment_lands_in_the_store(self, store, first_run):
        assert first_run.ok
        assert {o.experiment_id for o in first_run.outcomes} == set(
            registry.list_experiments()
        )
        assert all(o.status == "computed" for o in first_run.outcomes)
        stored = {record.experiment_id for record in store.iter_records()}
        assert stored == set(registry.list_experiments())

    def test_records_round_trip_to_experiment_results(self, store, first_run):
        for record in store.iter_records():
            result = ExperimentResult.from_dict(record.result)
            assert result.experiment_id == record.experiment_id
            assert result.rows, f"{record.experiment_id} stored no rows"
            assert record.elapsed_seconds >= 0.0

    def test_second_run_is_all_cache_hits(self, store, first_run):
        again = run_suite(scale="tiny", jobs=1, store=store)
        assert again.ok
        assert all(o.status == "cached" for o in again.outcomes)
        assert {o.fingerprint for o in again.outcomes} == {
            o.fingerprint for o in first_run.outcomes
        }

    def test_batch_size_override_does_not_invalidate_the_cache(self, store, first_run):
        # batch_size is a pure-performance knob (batch == scalar routing is
        # property-pinned), so it is excluded from the content address.
        again = run_suite(scale="tiny", jobs=1, store=store, batch_size=257)
        assert all(o.status == "cached" for o in again.outcomes)

    def test_progress_callback_sees_every_cell(self, store, first_run):
        seen = []
        run_suite(
            scale="tiny",
            jobs=1,
            store=store,
            progress=lambda outcome, done, total: seen.append((outcome.experiment_id, done, total)),
        )
        assert len(seen) == len(registry.list_experiments())
        assert seen[-1][1] == seen[-1][2] == len(seen)


class TestOrchestratorBehaviour:
    def test_subset_and_force(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        first = run_suite(experiment_ids=["fig3"], scale="tiny", jobs=1, store=store)
        assert [o.status for o in first.outcomes] == ["computed"]
        forced = run_suite(
            experiment_ids=["fig3"], scale="tiny", jobs=1, store=store, force=True
        )
        assert [o.status for o in forced.outcomes] == ["computed"]

    def test_failed_cell_reported_not_raised(self, tmp_path, monkeypatch):
        def boom(config):
            raise RuntimeError("driver exploded")

        entry = registry.get_experiment("fig3")
        broken = dataclasses.replace(
            entry, descriptor=dataclasses.replace(entry.descriptor, run=boom)
        )
        monkeypatch.setitem(registry._REGISTRY, "fig3", broken)

        store = ResultsStore(tmp_path / "results")
        summary = run_suite(experiment_ids=["fig3", "fig4"], scale="tiny", jobs=1, store=store)
        by_id = {o.experiment_id: o for o in summary.outcomes}
        assert not summary.ok
        assert by_id["fig3"].status == "failed"
        # The full traceback is kept; the summary line is just its last line.
        assert "Traceback" in (by_id["fig3"].error or "")
        assert by_id["fig3"].error_summary == "RuntimeError: driver exploded"
        assert by_id["fig4"].status == "computed"
        # Nothing bogus lands in the store for the failed cell.
        assert {r.experiment_id for r in store.iter_records()} == {"fig4"}

    def test_summary_as_result_is_exportable(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        summary = run_suite(experiment_ids=["fig3"], scale="tiny", jobs=1, store=store)
        result = summary.as_result()
        assert result.parameters["cells"] == 1
        assert result.rows[0]["experiment"] == "fig3"
        assert result.rows[0]["status"] == "computed"

    def test_rejects_bad_scale_and_jobs(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        with pytest.raises(ConfigurationError):
            run_suite(scale="huge", store=store)
        with pytest.raises(ConfigurationError):
            run_suite(scale="tiny", jobs=0, store=store)

    def test_empty_subset_runs_nothing(self, tmp_path):
        summary = run_suite(
            experiment_ids=[],
            scale="tiny",
            jobs=1,
            store=ResultsStore(tmp_path / "results"),
        )
        assert summary.outcomes == []
        assert summary.ok

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_suite(
                experiment_ids=["fig99"],
                scale="tiny",
                jobs=1,
                store=ResultsStore(tmp_path / "results"),
            )
