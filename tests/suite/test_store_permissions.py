"""A read-only results dir must fail the cell, not the whole suite run.

The store's atomic rename raises ``PermissionError`` when the results
directory was created with a different umask/owner; before the fix that
exception escaped ``run_suite`` and killed the entire run.  These tests pin
the new contract: the store cleans up and re-raises, the orchestrator turns
it into a per-cell failure.  (The process may run as root, where chmod is
not enforced, so the error is injected by patching ``os.replace`` instead
of relying on filesystem permissions.)
"""

from __future__ import annotations

import os

import pytest

from repro.suite.orchestrator import run_suite
from repro.suite.store import ResultRecord, ResultsStore


def _record() -> ResultRecord:
    return ResultRecord(
        experiment_id="fig1",
        scale="tiny",
        fingerprint="f" * 64,
        config={"x": 1},
        result={"rows": []},
        elapsed_seconds=0.1,
    )


class TestStoreSave:
    def test_permission_error_propagates_and_cleans_temp(self, tmp_path, monkeypatch):
        store = ResultsStore(tmp_path / "results")

        def denied(source, destination):
            raise PermissionError(13, "Permission denied", str(destination))

        monkeypatch.setattr(os, "replace", denied)
        with pytest.raises(PermissionError):
            store.save(_record())
        # The temporary file must not linger as store garbage.
        directory = tmp_path / "results" / "fig1"
        assert not any(directory.glob("*.tmp.*"))

    def test_save_still_works_normally(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        path = store.save(_record())
        assert path.is_file()


class TestSuiteSurvivesStorePermissionError:
    def test_write_failure_is_a_per_cell_failure(self, tmp_path, monkeypatch):
        store = ResultsStore(tmp_path / "results")

        def denied(self, record):
            raise PermissionError(13, "Permission denied", "results")

        monkeypatch.setattr(ResultsStore, "save", denied)
        summary = run_suite(
            experiment_ids=["fig3"],  # analytical: fast, no stream
            scale="tiny",
            jobs=1,
            store=store,
        )
        assert not summary.ok
        outcome = summary.outcomes[0]
        assert outcome.status == "failed"
        assert "results store write failed" in outcome.error
        assert "Permission denied" in outcome.error_summary

    def test_other_cells_still_complete(self, tmp_path, monkeypatch):
        store = ResultsStore(tmp_path / "results")
        original = ResultsStore.save

        def flaky(self, record):
            if record.experiment_id == "fig3":
                raise PermissionError(13, "Permission denied", "results")
            return original(self, record)

        monkeypatch.setattr(ResultsStore, "save", flaky)
        summary = run_suite(
            experiment_ids=["fig3", "fig4"],
            scale="tiny",
            jobs=1,
            store=store,
        )
        statuses = {
            outcome.experiment_id: outcome.status
            for outcome in summary.outcomes
        }
        assert statuses["fig3"] == "failed"
        assert statuses["fig4"] == "computed"
