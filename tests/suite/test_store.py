"""Tests for the content-addressed suite results store."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.suite.store import (
    RECORD_VERSION,
    ResultRecord,
    ResultsStore,
    config_fingerprint,
    open_store,
)


def _record(experiment_id="fig3", scale="tiny", config=None, **overrides):
    config = config or {"skews": [0.8], "num_keys": 10_000}
    fingerprint = config_fingerprint(experiment_id, scale, config)
    defaults = dict(
        experiment_id=experiment_id,
        scale=scale,
        fingerprint=fingerprint,
        config=config,
        result={
            "experiment_id": experiment_id,
            "title": "t",
            "parameters": {},
            "rows": [{"a": 1}, {"a": 2}],
            "notes": [],
        },
        elapsed_seconds=0.5,
    )
    defaults.update(overrides)
    return ResultRecord(**defaults)


class TestFingerprint:
    def test_deterministic(self):
        config = {"x": 1, "y": [1, 2.5, "z"]}
        assert config_fingerprint("fig1", "tiny", config) == config_fingerprint(
            "fig1", "tiny", dict(config)
        )

    def test_key_order_irrelevant(self):
        assert config_fingerprint("fig1", "tiny", {"a": 1, "b": 2}) == config_fingerprint(
            "fig1", "tiny", {"b": 2, "a": 1}
        )

    def test_varies_with_identity_scale_and_config(self):
        base = config_fingerprint("fig1", "tiny", {"a": 1})
        assert config_fingerprint("fig2", "tiny", {"a": 1}) != base
        assert config_fingerprint("fig1", "quick", {"a": 1}) != base
        assert config_fingerprint("fig1", "tiny", {"a": 2}) != base

    def test_batch_size_is_non_semantic(self):
        # The batched routing path is bit-identical to scalar routing, so
        # cached records must stay valid under any batch size.
        with_batch = config_fingerprint("fig1", "tiny", {"a": 1, "batch_size": 4096})
        without = config_fingerprint("fig1", "tiny", {"a": 1, "batch_size": 1})
        bare = config_fingerprint("fig1", "tiny", {"a": 1})
        assert with_batch == without == bare


class TestResultsStore:
    def test_save_then_load_roundtrip(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        record = _record()
        path = store.save(record)
        assert path.is_file()
        loaded = store.load(record.experiment_id, record.scale, record.fingerprint)
        assert loaded is not None
        assert loaded.result == record.result
        assert loaded.num_rows() == 2
        assert loaded.created_at  # stamped at construction

    def test_miss_on_unknown_cell(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        assert store.load("fig3", "tiny", "0" * 64) is None

    def test_corrupt_record_counts_as_miss(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        record = _record()
        path = store.save(record)
        path.write_text("{ not json", encoding="utf-8")
        assert store.load(record.experiment_id, record.scale, record.fingerprint) is None
        assert list(store.iter_records()) == []

    def test_version_mismatch_counts_as_miss(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        record = _record()
        path = store.save(record)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["record_version"] = RECORD_VERSION + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        assert store.load(record.experiment_id, record.scale, record.fingerprint) is None

    def test_iter_records_lists_everything(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        store.save(_record("fig3"))
        store.save(_record("fig4", config={"other": True}))
        identifiers = [record.experiment_id for record in store.iter_records()]
        assert identifiers == ["fig3", "fig4"]

    def test_clear_all_and_subset(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        store.save(_record("fig3"))
        store.save(_record("fig4", config={"other": True}))
        assert store.clear(["fig4"]) == 1
        assert [r.experiment_id for r in store.iter_records()] == ["fig3"]
        assert store.clear() == 1
        assert list(store.iter_records()) == []

    def test_clear_empty_store(self, tmp_path):
        assert ResultsStore(tmp_path / "nowhere").clear() == 0

    def test_clear_never_touches_foreign_json(self, tmp_path):
        # A user may point --results-dir at a directory with other content;
        # clear() must only delete the store's own <scale>-<hash16>.json.
        store = ResultsStore(tmp_path)
        store.save(_record("fig3"))
        foreign = tmp_path / "myproject" / "package.json"
        foreign.parent.mkdir()
        foreign.write_text("{}", encoding="utf-8")
        assert store.clear() == 1
        assert foreign.is_file()
        assert list(store.iter_records()) == []

    def test_open_store_rejects_file_path(self, tmp_path):
        target = tmp_path / "results.json"
        target.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            open_store(target)
