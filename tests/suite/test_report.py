"""Tests for the suite report module (staleness and duplicate cells)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.suite.orchestrator import run_suite
from repro.suite.report import render_report, report_rows
from repro.suite.store import ResultsStore


@pytest.fixture
def store_with_stale_record(tmp_path):
    store = ResultsStore(tmp_path / "results")
    run_suite(experiment_ids=["fig3"], scale="tiny", jobs=1, store=store)
    current = next(store.iter_records())
    # Same cell under an old fingerprint, as left behind by a preset change.
    store.save(dataclasses.replace(current, fingerprint="ab" * 32))
    return store


def test_current_column_flags_stale_records(store_with_stale_record):
    by_fingerprint = {
        row["fingerprint"]: row["current"]
        for row in report_rows(store_with_stale_record)
    }
    assert by_fingerprint["abababababababab"] == "no"
    assert sorted(by_fingerprint.values()) == ["no", "yes"]


def test_duplicate_cells_get_distinct_runtime_bars(store_with_stale_record):
    report = render_report(store_with_stale_record)
    bar_lines = [line for line in report.splitlines() if line.startswith("fig3/tiny")]
    # Both records are charted, disambiguated by fingerprint.
    assert len(bar_lines) == 2
    assert any("@ababab" in line for line in bar_lines)


def test_scale_filter(store_with_stale_record):
    assert report_rows(store_with_stale_record, scale="paper") == []
    assert len(report_rows(store_with_stale_record, scale="tiny")) == 2
