"""Tests for the ``repro-slb suite`` command group."""

from __future__ import annotations

import json

from repro.cli import main
from repro.suite.store import ResultsStore


def _run(args):
    return main(["suite", *args])


class TestSuiteRun:
    def test_run_then_cache_hit(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        base = [
            "run",
            "--scale",
            "tiny",
            "--experiments",
            "fig3",
            "fig4",
            "--jobs",
            "1",
            "--results-dir",
            results_dir,
        ]
        assert _run(base) == 0
        output = capsys.readouterr().out
        assert "computed=2, cached=0" in output

        store = ResultsStore(results_dir)
        assert {record.experiment_id for record in store.iter_records()} == {"fig3", "fig4"}

        assert _run(base) == 0
        output = capsys.readouterr().out
        assert "computed=0, cached=2" in output

    def test_run_exports_summary(self, tmp_path, capsys):
        export = tmp_path / "summary.json"
        assert (
            _run(
                [
                    "run",
                    "--scale",
                    "tiny",
                    "--experiments",
                    "fig3",
                    "--jobs",
                    "1",
                    "--results-dir",
                    str(tmp_path / "results"),
                    "--export",
                    str(export),
                ]
            )
            == 0
        )
        capsys.readouterr()
        document = json.loads(export.read_text(encoding="utf-8"))
        assert document["rows"][0]["experiment"] == "fig3"


class TestSuiteReportAndClean:
    def test_report_and_clean_lifecycle(self, tmp_path, capsys):
        results_dir = str(tmp_path / "results")
        assert (
            _run(
                [
                    "run",
                    "--scale",
                    "tiny",
                    "--experiments",
                    "fig3",
                    "fig4",
                    "--jobs",
                    "1",
                    "--results-dir",
                    results_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()

        assert _run(["report", "--results-dir", results_dir, "--charts"]) == 0
        output = capsys.readouterr().out
        assert "fig3" in output and "fig4" in output
        assert "Figure 3" in output  # artifact column from the descriptor
        assert "#" in output  # runtime bar chart

        export = tmp_path / "report.csv"
        assert _run(["report", "--results-dir", results_dir, "--export", str(export)]) == 0
        capsys.readouterr()
        assert "experiment" in export.read_text(encoding="utf-8")

        assert _run(["clean", "--results-dir", results_dir, "--experiments", "fig3"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert _run(["clean", "--results-dir", results_dir]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_report_on_empty_store(self, tmp_path, capsys):
        assert _run(["report", "--results-dir", str(tmp_path / "empty")]) == 0
        assert "no records" in capsys.readouterr().out
