"""Stream behaviour of scenario workloads: scale, support, determinism.

The truth→render split promises: exact stream lengths, keys confined to
``1..num_keys``, bit-identical reruns from the same spec, and render
styles that change arrival order without changing what the keys are.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import CATALOG, ScenarioSpec, ScenarioWorkload, build_workload
from repro.scenarios.render import BurstyRenderer, ShuffledEpochRenderer
from repro.scenarios.truth import PATTERNS, make_truth

NUM_MESSAGES = 6_000
NUM_KEYS = 400


class TestStreamContract:
    @pytest.mark.parametrize("name", list(CATALOG))
    def test_exact_length_and_key_support(self, name):
        workload = build_workload(name, NUM_MESSAGES, NUM_KEYS)
        keys = list(workload.keys())
        assert len(keys) == NUM_MESSAGES
        assert min(keys) >= 1 and max(keys) <= NUM_KEYS

    @pytest.mark.parametrize("name", list(CATALOG))
    def test_reiteration_is_identical(self, name):
        workload = build_workload(name, 3_000, NUM_KEYS)
        assert list(workload.keys()) == list(workload.keys())

    def test_batches_flatten_to_the_scalar_stream(self):
        workload = build_workload("diurnal_cycle", NUM_MESSAGES, NUM_KEYS)
        scalar = list(workload.keys())
        for batch_size in (1, 7, 512, 10_000):
            batched = [key for batch in workload.iter_batches(batch_size) for key in batch]
            assert batched == scalar

    def test_columnar_batches_decode_to_the_scalar_stream(self):
        workload = build_workload("hot_key_churn", NUM_MESSAGES, NUM_KEYS)
        scalar = list(workload.keys())
        decoded = []
        for batch in workload.iter_batches_columnar(batch_size=379):
            decoded.extend(batch.keys())
        assert decoded == scalar

    def test_stats_name_and_scale(self):
        workload = build_workload("flash_crowd", 1_000, 100)
        stats = workload.stats()
        assert stats.name == "scenario:flash_crowd"
        assert stats.messages == 1_000
        assert stats.keys == 100


class TestTruthProperties:
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_epochs_cover_the_stream_with_valid_distributions(self, pattern):
        truth = make_truth(pattern)
        rng = np.random.default_rng(5)
        total = 0
        for length, probabilities in truth.epochs(9_999, 123, rng):
            total += length
            assert probabilities.shape == (123,)
            assert np.all(probabilities >= 0)
            assert probabilities.sum() == pytest.approx(1.0)
        assert total == 9_999

    def test_flash_crowd_spikes_a_cold_key(self):
        truth = make_truth("flash_crowd", {"peak_share": 0.3, "start": 0.5})
        rng = np.random.default_rng(11)
        epochs = list(truth.epochs(10_000, 200, rng))
        calm = epochs[0][1]
        spiked = epochs[1][1]
        crowd_key = int(np.argmax(spiked - calm))
        assert spiked[crowd_key] >= 0.3
        # the crowd key was cold before the flash (bottom half of ranks)
        assert crowd_key >= 100

    def test_key_space_growth_activates_keys_gradually(self):
        truth = make_truth("key_space_growth", {"initial_fraction": 0.1})
        rng = np.random.default_rng(7)
        actives = [
            int(np.count_nonzero(probabilities))
            for _, probabilities in truth.epochs(8_000, 500, rng)
        ]
        assert actives[0] < actives[-1]
        assert actives == sorted(actives)
        assert actives[-1] == 500

    def test_hot_key_churn_rotates_the_top_identity(self):
        truth = make_truth("hot_key_churn", {"num_epochs": 4, "churn_ranks": 5})
        rng = np.random.default_rng(3)
        tops = [
            int(np.argmax(probabilities))
            for _, probabilities in truth.epochs(8_000, 200, rng)
        ]
        assert len(set(tops)) > 1


class TestRenderProperties:
    @staticmethod
    def _one_epoch(num_keys=50):
        probabilities = np.full(num_keys, 1.0 / num_keys)
        return [(1_000, probabilities)]

    def test_bursty_renderer_emits_runs(self):
        spans = BurstyRenderer(burst_length=5).spans(
            iter(self._one_epoch()), np.random.default_rng(0)
        )
        stream = np.concatenate(list(spans))
        assert stream.size == 1_000
        runs = stream[: 1_000 - (1_000 % 5)].reshape(-1, 5)
        assert np.all(runs == runs[:, :1])  # every run repeats one key

    def test_shuffled_epoch_renderer_hits_exact_multinomial_counts(self):
        rng = np.random.default_rng(1)
        probabilities = np.full(50, 1.0 / 50)
        expected = np.random.default_rng(1).multinomial(1_000, probabilities)
        spans = ShuffledEpochRenderer().spans(iter(self._one_epoch()), rng)
        stream = np.concatenate(list(spans))
        counts = np.bincount(stream, minlength=51)[1:]
        assert np.array_equal(counts, expected)

    def test_render_style_changes_order_not_popularity_process(self):
        # Same name+seed, different render style: the truth seed (and thus
        # the popularity process) is untouched; only arrivals change.
        base = {"name": "probe", "pattern": "single_key_flood", "seed": 5}
        iid = ScenarioWorkload(ScenarioSpec.from_dict(base), 8_000, 200)
        shuffled = ScenarioWorkload(
            ScenarioSpec.from_dict({**base, "render": {"style": "shuffled_epoch"}}),
            8_000,
            200,
        )
        iid_keys = list(iid.keys())
        shuffled_keys = list(shuffled.keys())
        assert iid_keys != shuffled_keys
        # both renders flood the same key — the truth drew it once
        assert max(set(iid_keys), key=iid_keys.count) == max(
            set(shuffled_keys), key=shuffled_keys.count
        )
