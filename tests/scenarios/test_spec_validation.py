"""Fail-loudly contract of scenario specs and the catalog.

A spec missing its required ``pattern`` or ``seed``, naming an unknown
pattern/render style, or lacking the ``expected:`` block that makes it a
regression assertion must raise :class:`ScenarioError` naming the scenario
— never fall back to a default.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ScenarioError, WorkloadError
from repro.scenarios import (
    CATALOG,
    ExpectedBounds,
    ScenarioSpec,
    build_workload,
    check_result,
    get_scenario,
    list_scenarios,
    make_renderer,
    make_truth,
)
from repro.scenarios.truth import PATTERNS
from repro.simulation.results import SimulationResult
from repro.workloads.base import derive_seed


class TestRequiredFields:
    def test_missing_pattern_names_scenario_and_valid_patterns(self):
        with pytest.raises(ScenarioError, match="'flashy'.*no 'pattern'"):
            ScenarioSpec.from_dict({"name": "flashy", "seed": 1})
        with pytest.raises(ScenarioError, match="flash_crowd"):
            # the error enumerates the valid pattern names
            ScenarioSpec.from_dict({"name": "flashy", "seed": 1})

    def test_missing_seed_is_an_error(self):
        with pytest.raises(ScenarioError, match="'flashy'.*no 'seed'"):
            ScenarioSpec.from_dict({"name": "flashy", "pattern": "flash_crowd"})

    def test_missing_name_is_an_error(self):
        with pytest.raises(ScenarioError, match="no name"):
            ScenarioSpec.from_dict({"pattern": "flash_crowd", "seed": 1})

    def test_unknown_spec_fields_rejected(self):
        with pytest.raises(ScenarioError, match="unknown spec fields.*'patern'"):
            ScenarioSpec.from_dict(
                {"name": "x", "pattern": "flash_crowd", "seed": 1, "patern": "typo"}
            )

    def test_constructor_enforces_types(self):
        with pytest.raises(ScenarioError, match="pattern"):
            ScenarioSpec(name="x", pattern="", seed=1)
        with pytest.raises(ScenarioError, match="seed"):
            ScenarioSpec(name="x", pattern="flash_crowd", seed=None)
        with pytest.raises(ScenarioError, match="seed"):
            ScenarioSpec(name="x", pattern="flash_crowd", seed=True)


class TestUnknownNames:
    def test_unknown_pattern_lists_valid_patterns(self):
        spec = ScenarioSpec(name="bad", pattern="mega_flood", seed=1)
        with pytest.raises(ScenarioError) as excinfo:
            spec.validate(require_expected=False)
        message = str(excinfo.value)
        assert "'bad'" in message and "mega_flood" in message
        for pattern in sorted(PATTERNS):
            assert pattern in message

    def test_make_truth_and_renderer_fail_loudly(self):
        with pytest.raises(ScenarioError, match="unknown pattern"):
            make_truth("nope")
        with pytest.raises(ScenarioError, match="unknown render style"):
            make_renderer("nope")
        with pytest.raises(ScenarioError, match="invalid truth options"):
            make_truth("flash_crowd", {"peak_shore": 0.2}, scenario="s")
        with pytest.raises(ScenarioError, match="invalid render options"):
            make_renderer("bursty", {"bursts": 4}, scenario="s")

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ScenarioError, match="unknown scenario 'nope'"):
            get_scenario("nope")
        with pytest.raises(ScenarioError, match="flash_crowd"):
            get_scenario("nope")

    def test_scenario_error_is_a_workload_error(self):
        # Existing WorkloadError handlers keep catching scenario failures.
        assert issubclass(ScenarioError, WorkloadError)


class TestExpectedBlockContract:
    def test_missing_expected_block_fails_for_cataloged_scenarios(self):
        spec = ScenarioSpec(name="uncovered", pattern="flash_crowd", seed=3)
        with pytest.raises(ScenarioError, match="'uncovered'.*no expected"):
            spec.validate(require_expected=True)
        # ... but is fine for ad-hoc exploration
        assert spec.validate(require_expected=False) is spec

    def test_empty_expected_block_counts_as_missing(self):
        spec = ScenarioSpec(
            name="hollow", pattern="flash_crowd", seed=3, expected=ExpectedBounds()
        )
        with pytest.raises(ScenarioError, match="'hollow'.*no expected"):
            spec.validate(require_expected=True)

    def test_unknown_bound_names_rejected(self):
        with pytest.raises(ScenarioError, match="unknown expected bounds.*max_skew"):
            ExpectedBounds.from_dict({"max_skew": 1.0}, scenario="s")

    def test_check_result_without_bounds_is_an_error(self):
        spec = ScenarioSpec(name="hollow", pattern="flash_crowd", seed=3)
        result = SimulationResult(
            scheme="PKG", num_workers=2, num_sources=1, num_messages=0,
            final_imbalance=0.0, average_imbalance=0.0,
        )
        with pytest.raises(ScenarioError, match="no expected"):
            check_result(spec, result)

    def test_per_scheme_override_beats_default(self):
        bounds = ExpectedBounds(
            max_imbalance=0.01, per_scheme={"PKG": {"max_imbalance": 0.5}}
        )
        assert bounds.bound("max_imbalance", "PKG") == 0.5
        assert bounds.bound("max_imbalance", "D-C") == 0.01
        violations = bounds.check(
            imbalance=0.1, replication=1.0, p99_load_factor=1.0, scheme="PKG"
        )
        assert violations == []
        violations = bounds.check(
            imbalance=0.1, replication=1.0, p99_load_factor=1.0, scheme="D-C"
        )
        assert len(violations) == 1 and "max_imbalance" in violations[0]


class TestCatalogIntegrity:
    def test_catalog_has_at_least_six_scenarios(self):
        assert len(CATALOG) >= 6

    def test_every_entry_validates_with_expected_bounds(self):
        for name, spec in CATALOG.items():
            assert spec.name == name
            assert spec.expected is not None and not spec.expected.is_empty()
            spec.validate(require_expected=True)

    def test_catalog_covers_the_advertised_patterns(self):
        patterns = {spec.pattern for spec in CATALOG.values()}
        assert {
            "flash_crowd",
            "hot_key_churn",
            "diurnal_cycle",
            "key_space_growth",
            "single_key_flood",
            "drift_mixture",
        } <= patterns

    def test_list_scenarios_order_matches_catalog(self):
        assert list_scenarios() == list(CATALOG)

    def test_component_seeds_derive_from_name_component_seed(self):
        spec = get_scenario("flash_crowd")
        assert spec.component_seed("truth") == derive_seed(
            spec.name, "truth", spec.seed
        )
        assert spec.component_seed("truth") != spec.component_seed("render")

    def test_build_workload_rejects_bad_scales(self):
        with pytest.raises(ScenarioError, match="num_messages"):
            build_workload("flash_crowd", num_messages=-1, num_keys=10)
        with pytest.raises(ScenarioError, match="num_keys"):
            build_workload("flash_crowd", num_messages=10, num_keys=0)


class TestYamlSpecs:
    def test_yaml_round_trip(self):
        spec = ScenarioSpec.from_yaml(
            """
            name: my_flood
            pattern: single_key_flood
            seed: 99
            truth:
              flood_share: 0.5
            render:
              style: bursty
              burst_length: 3
            expected:
              max_imbalance: 0.4
            """
        )
        assert spec.pattern == "single_key_flood"
        assert spec.truth_options == {"flood_share": 0.5}
        assert spec.render.style == "bursty"
        assert spec.expected is not None
        assert spec.expected.max_imbalance == 0.4
        spec.validate(require_expected=True)

    def test_yaml_missing_pattern_fails_loudly(self):
        with pytest.raises(ScenarioError, match="no 'pattern'"):
            ScenarioSpec.from_yaml("name: broken\nseed: 1\n")

    def test_yaml_non_mapping_rejected(self):
        with pytest.raises(ScenarioError, match="mapping"):
            ScenarioSpec.from_yaml("- just\n- a list\n")
