"""The expected-assertion regression suite.

Every cataloged scenario is simulated at the tiny scale under each catalog
scheme and checked against its declared ``expected:`` bounds — the
``expected:`` blocks *are* the assertions, collected by pytest.  A failure
here means a routing change moved a scenario past its calibrated
imbalance/replication/p99 envelope, exactly the regression the catalog
exists to catch.

The CI ``scenario-regression`` job runs this module on every push.
"""

from __future__ import annotations

import pytest

from repro.scenarios import CATALOG, assert_result, build_workload, check_result
from repro.simulation.runner import run_simulation

#: Tiny scale — mirrors ScenariosConfig.tiny() so CI and the suite agree.
NUM_MESSAGES = 20_000
NUM_KEYS = 1_000
NUM_WORKERS = 8

SCHEMES = ("PKG", "D-C", "W-C", "AD")

#: AD's controller clocks are per-source message counts; at the tiny scale
#: (4k messages per source) the defaults would never fire, so the adaptive
#: runs use the Fig18Config.tiny() knobs and actually switch mid-stream.
AD_OPTIONS = {"check_interval": 250, "policy": "dwell=500"}


def _run(spec, scheme):
    workload = build_workload(spec, num_messages=NUM_MESSAGES, num_keys=NUM_KEYS)
    options = AD_OPTIONS if scheme == "AD" else None
    return run_simulation(
        workload, scheme=scheme, num_workers=NUM_WORKERS, scheme_options=options
    )


class TestExpectedBounds:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("name", list(CATALOG))
    def test_scenario_stays_within_declared_bounds(self, name, scheme):
        spec = CATALOG[name]
        result = _run(spec, scheme)
        violations = check_result(spec, result, scheme=scheme)
        assert violations == [], (
            f"scenario {name!r} under {scheme}: "
            f"imbalance={result.final_imbalance:.4f} "
            f"replication={result.replication_factor:.3f} "
            f"p99={result.p99_load_factor:.3f}; " + "; ".join(violations)
        )

    def test_assert_result_raises_on_violation(self):
        spec = CATALOG["single_key_flood"]
        result = _run(spec, "KG")  # KG cannot split the flood key at all
        with pytest.raises(Exception, match="single_key_flood"):
            assert_result(spec, result, scheme="KG")


class TestSameSeedReruns:
    @pytest.mark.parametrize("name", list(CATALOG))
    def test_rerun_is_bit_identical(self, name):
        first = _run(CATALOG[name], "D-C")
        second = _run(CATALOG[name], "D-C")
        assert first.worker_loads == second.worker_loads
        assert first.final_imbalance == second.final_imbalance
        assert first.memory_entries == second.memory_entries
        assert first.distinct_key_count == second.distinct_key_count

    def test_different_catalog_seeds_produce_different_streams(self):
        # flash_crowd (seed 1601) and bursty_flash_crowd (seed 1607) share
        # the truth pattern but not the seed — their streams must differ.
        flash = build_workload("flash_crowd", 5_000, 500)
        bursty = build_workload("bursty_flash_crowd", 5_000, 500)
        assert list(flash.keys()) != list(bursty.keys())
