"""Guard keeping docs/paper_mapping.md in lockstep with the registry.

Registering a new experiment without documenting which paper artifact it
reproduces (and how to regenerate it) fails here; so does documenting an
experiment that no longer exists.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.experiments.registry import get_experiment, list_experiments

MAPPING_PATH = Path(__file__).resolve().parents[2] / "docs" / "paper_mapping.md"

#: A mapping row starts with a backticked experiment id in the first column.
ROW_PATTERN = re.compile(r"^\|\s*`(?P<experiment_id>[a-z0-9_]+)`\s*\|")


def _mapping_rows() -> dict[str, str]:
    rows: dict[str, str] = {}
    for line in MAPPING_PATH.read_text(encoding="utf-8").splitlines():
        match = ROW_PATTERN.match(line)
        if match:
            rows[match.group("experiment_id")] = line
    return rows


@pytest.fixture(scope="module")
def mapping_rows() -> dict[str, str]:
    assert MAPPING_PATH.is_file(), f"missing {MAPPING_PATH}"
    return _mapping_rows()


def test_every_registered_experiment_is_documented(mapping_rows):
    missing = set(list_experiments()) - set(mapping_rows)
    assert not missing, (
        f"experiments registered but missing from docs/paper_mapping.md: "
        f"{sorted(missing)} — add one table row per experiment"
    )


def test_every_documented_experiment_is_registered(mapping_rows):
    stale = set(mapping_rows) - set(list_experiments())
    assert not stale, (
        f"docs/paper_mapping.md documents unregistered experiments: "
        f"{sorted(stale)} — delete the stale rows"
    )


def test_every_row_names_the_module_artifact_and_command(mapping_rows):
    for experiment_id, line in mapping_rows.items():
        descriptor = get_experiment(experiment_id).descriptor
        assert descriptor.artifact in line, (
            f"{experiment_id}: row must name the paper artifact "
            f"{descriptor.artifact!r}"
        )
        module_name = descriptor.run.__module__.rsplit(".", 1)[-1]
        assert module_name in line, (
            f"{experiment_id}: row must reference its driver module "
            f"{module_name}.py"
        )
        assert "suite run" in line and f"--experiments {experiment_id}" in line, (
            f"{experiment_id}: row must give the `suite run` command that "
            f"regenerates it"
        )
