"""Fixtures for the runtime tests.

The leak check is autouse: every runtime test — including the chaos ones
that kill workers mid-stream — must leave ``/dev/shm`` exactly as it found
it.  ``run_cluster`` owns every shared-memory segment it creates and
unlinks them in its ``finally`` block even when a run crashes, degrades or
raises; a segment surviving a test is a real resource leak, not noise.
"""

from __future__ import annotations

import gc
import glob
import os

import pytest

_SHM_DIR = "/dev/shm"


def _shm_segments() -> set[str]:
    # CPython names multiprocessing.shared_memory segments psm_<token>.
    return set(glob.glob(os.path.join(_SHM_DIR, "psm_*")))


@pytest.fixture(autouse=True)
def no_leaked_shared_memory():
    """Assert the test left no shared-memory segment behind."""
    if not os.path.isdir(_SHM_DIR):  # non-Linux: nothing to observe
        yield
        return
    before = _shm_segments()
    yield
    # Views pinned by collectable cycles would hold mappings open; collect
    # before measuring so the check sees only genuine leaks.
    gc.collect()
    leaked = _shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
