"""Unit tests of the shared cluster-state block (in-process, no shm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ClusterRuntimeError
from repro.runtime.state import (
    ClusterSnapshot,
    SharedClusterState,
    loads_imbalance,
    state_words,
)
from repro.simulation.metrics import LoadTracker


def make_state(num_workers: int = 4, head_capacity: int = 8) -> SharedClusterState:
    buffer = np.zeros(state_words(num_workers, head_capacity), dtype=np.int64)
    return SharedClusterState(buffer, num_workers, head_capacity, create=True)


class TestFlags:
    def test_fresh_state_is_clear(self):
        state = make_state()
        assert not state.aborted()
        assert not state.started()
        assert not state.source_done()
        assert not state.all_ready()

    def test_flag_transitions(self):
        state = make_state()
        state.abort()
        state.release_start()
        state.mark_source_done()
        assert state.aborted() and state.started() and state.source_done()

    def test_all_ready_requires_every_worker(self):
        state = make_state(num_workers=3)
        state.mark_ready(0)
        state.mark_ready(2)
        assert not state.all_ready()
        state.mark_ready(1)
        assert state.all_ready()


class TestWorkerSlots:
    def test_processed_counts_accumulate(self):
        state = make_state(num_workers=2)
        state.add_processed(0, 10)
        state.add_processed(0, 5)
        state.add_processed(1, 7)
        assert state.worker_processed() == [15, 7]

    def test_heartbeat_age(self):
        state = make_state(num_workers=2)
        assert state.heartbeat_age_s(0) == float("inf")
        state.heartbeat(0)
        assert state.heartbeat_age_s(0) < 1.0
        assert state.heartbeat_age_s(1) == float("inf")

    def test_out_of_range_worker_raises(self):
        state = make_state(num_workers=2)
        with pytest.raises(ClusterRuntimeError):
            state.heartbeat(2)
        with pytest.raises(ClusterRuntimeError):
            state.add_processed(-1, 1)


class TestFencing:
    def test_fence_handshake_transitions(self):
        state = make_state(num_workers=2)
        assert not state.worker_fenced(1)
        state.fence_worker(1)
        assert state.worker_fenced(1)
        assert not state.fence_acknowledged(1)
        state.acknowledge_fence(1)
        assert state.worker_fenced(1)  # acked is still out of service
        assert state.fence_acknowledged(1)
        state.clear_fence(1)
        assert not state.worker_fenced(1)
        assert not state.fence_acknowledged(1)

    def test_fences_are_per_worker(self):
        state = make_state(num_workers=3)
        state.fence_worker(1)
        assert [state.worker_fenced(w) for w in range(3)] == [False, True, False]

    def test_reset_worker_clears_ready_and_heartbeat_keeps_ledger(self):
        state = make_state(num_workers=2)
        state.mark_ready(0)
        state.heartbeat(0)
        state.add_processed(0, 42)
        state.reset_worker(0)
        assert not state.worker_ready(0)
        assert state.heartbeat_age_s(0) == float("inf")
        # The processed count is the slot's cumulative delivered ledger —
        # it must survive the respawn.
        assert state.worker_processed() == [42, 0]

    def test_fence_and_head_sections_do_not_alias(self):
        # Regression for the layout shift to five per-worker sections: a
        # fence write must never land in the head-summary region.
        state = make_state(num_workers=2, head_capacity=2)
        state.publish_routing([1, 1], 2, 3, head={10: 100, 12: 50})
        state.fence_worker(0)
        state.fence_worker(1)
        assert state.head_summary() == {10: 100, 12: 50}
        assert state.source_loads() == [1, 1]


class TestRoutingPublication:
    def test_loads_and_counters_roundtrip(self):
        state = make_state(num_workers=3)
        state.publish_routing([4, 5, 6], messages_routed=15, dict_high_water=9)
        assert state.source_loads() == [4, 5, 6]
        assert state.messages_routed() == 15
        assert state.dict_high_water() == 9

    def test_head_summary_keeps_largest_entries(self):
        state = make_state(num_workers=2, head_capacity=2)
        head = {10: 100, 11: 5, 12: 50}
        state.publish_routing([1, 1], 2, 13, head=head)
        assert state.head_summary() == {10: 100, 12: 50}

    def test_snapshot_collects_everything(self):
        state = make_state(num_workers=2)
        state.publish_routing([3, 1], 4, 2, head={0: 3})
        state.add_processed(0, 3)
        state.add_processed(1, 1)
        snapshot = state.snapshot(elapsed_s=0.5)
        assert snapshot.elapsed_s == 0.5
        assert snapshot.messages_routed == 4
        assert snapshot.source_loads == [3, 1]
        assert snapshot.worker_processed == [3, 1]
        assert snapshot.head == {0: 3}

    def test_attach_sees_creators_writes(self):
        buffer = np.zeros(state_words(2, 4), dtype=np.int64)
        creator = SharedClusterState(buffer, 2, 4, create=True)
        creator.publish_routing([7, 9], 16, 3)
        attached = SharedClusterState(buffer)
        assert attached.num_workers == 2
        assert attached.source_loads() == [7, 9]

    def test_attach_to_uninitialised_buffer_raises(self):
        with pytest.raises(ClusterRuntimeError):
            SharedClusterState(np.zeros(64, dtype=np.int64))


class TestImbalance:
    def test_matches_simulator_load_tracker(self):
        loads = [120, 80, 95, 105]
        tracker = LoadTracker(num_workers=4)
        for worker, load in enumerate(loads):
            for _ in range(load):
                tracker.record(worker)
        assert loads_imbalance(loads) == pytest.approx(tracker.imbalance())

    def test_zero_loads_give_zero_imbalance(self):
        assert loads_imbalance([0, 0, 0]) == 0.0
        assert loads_imbalance([]) == 0.0

    def test_snapshot_imbalance_property(self):
        snapshot = ClusterSnapshot(
            elapsed_s=1.0,
            messages_routed=4,
            worker_processed=[3, 1],
        )
        assert snapshot.imbalance == pytest.approx(3 / 4 - 1 / 2)
