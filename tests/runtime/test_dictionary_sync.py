"""Unit tests of the dictionary delta-sync protocol — no processes.

Both pipe ends live in this process, so the producer/consumer handshake is
driven deterministically: deltas arrive before the frames that need them,
overlapping resends are idempotent and gaps fail loudly.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.exceptions import ClusterRuntimeError
from repro.runtime.worker import (
    DictionaryReplica,
    _await_dictionary,
    _drain_deltas,
)


class FakeState:
    def __init__(self, aborted: bool = False) -> None:
        self._aborted = aborted
        self.heartbeats = 0

    def aborted(self) -> bool:
        return self._aborted

    def heartbeat(self, worker_id: int) -> None:
        # A worker waiting on a delta is healthy and must keep beating.
        self.heartbeats += 1


@pytest.fixture
def pipe():
    receive, send = multiprocessing.Pipe(duplex=False)
    yield receive, send
    receive.close()
    send.close()


class TestReplica:
    def test_apply_extends_in_order(self):
        replica = DictionaryReplica()
        replica.apply(0, ["a", "b"])
        replica.apply(2, ["c"])
        assert len(replica) == 3
        assert [replica.key_of(kid) for kid in range(3)] == ["a", "b", "c"]

    def test_overlapping_resend_is_idempotent(self):
        replica = DictionaryReplica()
        replica.apply(0, ["a", "b", "c"])
        replica.apply(1, ["b", "c", "d"])
        assert len(replica) == 4
        assert replica.key_of(3) == "d"

    def test_gap_raises(self):
        replica = DictionaryReplica()
        replica.apply(0, ["a"])
        with pytest.raises(ClusterRuntimeError, match="delta gap"):
            replica.apply(5, ["f"])


class TestDrain:
    def test_drain_applies_every_buffered_delta(self, pipe):
        receive, send = pipe
        send.send(("delta", 0, ["a", "b"]))
        send.send(("delta", 2, ["c"]))
        replica = DictionaryReplica()
        _drain_deltas(receive, replica)
        assert len(replica) == 3

    def test_drain_on_empty_pipe_is_a_noop(self, pipe):
        receive, _ = pipe
        replica = DictionaryReplica()
        _drain_deltas(receive, replica)
        assert len(replica) == 0


class TestAwait:
    def test_blocks_until_high_water_reached(self, pipe):
        receive, send = pipe
        replica = DictionaryReplica()
        send.send(("delta", 0, ["a", "b", "c"]))
        _await_dictionary(receive, replica, high_water=3, state=FakeState())
        assert len(replica) == 3

    def test_returns_immediately_when_already_caught_up(self, pipe):
        receive, _ = pipe
        replica = DictionaryReplica()
        replica.apply(0, ["a"])
        _await_dictionary(receive, replica, high_water=1, state=FakeState())
        assert len(replica) == 1

    def test_abort_unblocks_the_wait(self, pipe):
        receive, _ = pipe
        replica = DictionaryReplica()
        with pytest.raises(ClusterRuntimeError, match="aborted"):
            _await_dictionary(
                receive, replica, high_water=5, state=FakeState(aborted=True)
            )

    def test_heartbeats_while_waiting(self, pipe):
        receive, send = pipe
        replica = DictionaryReplica()
        state = FakeState()
        send.send(("delta", 0, ["a", "b"]))
        _await_dictionary(receive, replica, high_water=2, state=state)
        assert state.heartbeats > 0

    def test_silent_pipe_raises_instead_of_deadlocking(self, pipe, monkeypatch):
        # The needed delta is sent before the frame that demands it, so a
        # pipe that stays silent means the delta is lost — the wait must
        # surface a protocol error, not starve forever while heartbeating
        # (a heartbeating waiter trips no hang detector).
        import repro.runtime.worker as worker_module

        monkeypatch.setattr(worker_module, "DELTA_STARVATION_TIMEOUT_S", 0.1)
        receive, _ = pipe
        replica = DictionaryReplica()
        with pytest.raises(ClusterRuntimeError, match="delta gap"):
            _await_dictionary(receive, replica, high_water=5, state=FakeState())
