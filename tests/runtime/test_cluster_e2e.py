"""End-to-end tests of the multi-process cluster runtime.

These spawn real processes (fork start method) and move real bytes through
shared-memory rings; they are marked ``cluster`` so CI can select them into
the dedicated smoke job.  Sizes are kept small — each run takes well under
a second.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.exceptions import ConfigurationError, WorkerCrashError
from repro.runtime import (
    ClusterConfig,
    run_cluster,
    validate_against_simulation,
)
from repro.simulation.runner import run_simulation

pytestmark = [
    pytest.mark.cluster,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="cluster runtime requires the fork start method",
    ),
]


def small_config(**overrides) -> ClusterConfig:
    defaults = dict(
        scheme="PKG",
        num_workers=2,
        num_messages=12_000,
        num_keys=1_500,
        skew=1.4,
        seed=0,
        service_ns=2_000,
        mode="columnar:256",
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestEndToEnd:
    def test_every_message_arrives_exactly_once(self):
        config = small_config()
        result = run_cluster(config)
        assert result.messages_total == config.num_messages
        assert sum(result.worker_processed) == config.num_messages
        # The source's routing view and the workers' receiving view agree.
        assert result.source_loads == result.worker_processed

    def test_real_counts_match_simulator_exactly(self):
        config = small_config()
        result = run_cluster(config)
        simulated = run_simulation(
            config.build_workload(),
            scheme=config.scheme,
            num_workers=config.num_workers,
            num_sources=1,
            seed=config.seed,
            mode=config.mode,
        )
        assert result.worker_processed == list(simulated.worker_loads)
        assert result.imbalance == pytest.approx(simulated.final_imbalance)

    def test_validation_helper_reports_exact_match(self):
        config = small_config()
        report = validate_against_simulation(config)
        assert report["loads_match"]
        assert report["within_tolerance"]
        assert report["relative_difference"] == pytest.approx(0.0, abs=1e-12)

    def test_workers_decode_keys_through_delta_synced_dictionary(self):
        config = small_config()
        result = run_cluster(config)
        # The hottest reported key must be a real workload key (Zipf ranks
        # start at 1), and every worker's replica covers the dictionary.
        for worker in result.worker_results:
            if worker.top_keys:
                hottest, count = worker.top_keys[0]
                assert 1 <= hottest <= config.num_keys
                assert count > 0
            assert worker.dict_entries <= result.dict_entries
        assert result.dict_entries > 0

    def test_head_summary_published_for_head_tail_schemes(self):
        result = run_cluster(small_config(scheme="D-C", skew=1.6))
        assert result.head  # SpaceSaving summary decoded back to keys
        hottest = max(result.head, key=result.head.get)
        assert hottest == 1  # Zipf rank 1 dominates at skew 1.6

    def test_scalar_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="columnar-only"):
            small_config(mode="batched:256")


class TestFailureHandling:
    """Strict mode: supervision disabled, failures raise as in PR 8."""

    def test_worker_crash_raises_naming_the_worker(self):
        # Small rings keep the source backpressured behind the crashed
        # worker, so the failure is detected mid-stream deterministically
        # (with roomy rings the whole share buffers, the source finishes,
        # and the end-of-stream salvage path completes the run instead).
        config = small_config(
            inject="crash@w1:2000",
            max_restarts=0,
            degrade_when_exhausted=False,
            ring_capacity_words=2_048,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            run_cluster(config)
        error = excinfo.value
        assert error.worker_id == 1
        assert "worker 1" in str(error)
        assert error.restarts == 0
        # Healthy workers' progress is salvaged into the partial payload.
        assert error.partial is not None
        assert sum(error.partial["worker_processed"]) > 0

    def test_worker_hang_detected_by_heartbeat_timeout(self):
        config = small_config(
            inject="hang@w0:2000",
            heartbeat_timeout_s=0.4,
            max_restarts=0,
            degrade_when_exhausted=False,
            ring_capacity_words=2_048,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            run_cluster(config)
        assert excinfo.value.worker_id == 0
        assert "heartbeat" in str(excinfo.value)

    def test_fault_plan_naming_a_missing_worker_is_rejected(self):
        with pytest.raises(ConfigurationError, match="names worker 7"):
            small_config(inject="crash@w7:100")


class TestScaling:
    def test_more_workers_increase_aggregate_throughput(self):
        # The per-message service time is the bottleneck; two workers
        # overlap their (blocking) service and must beat one. Modest bar —
        # the bench pins the real scaling curve with bigger streams.
        base = dict(
            num_messages=24_000, num_keys=2_000, service_ns=8_000,
            mode="columnar:512",
        )
        one = run_cluster(small_config(num_workers=1, **base))
        four = run_cluster(small_config(num_workers=4, **base))
        assert four.agg_msgs_per_sec > 1.4 * one.agg_msgs_per_sec
