"""Fault injection and supervised recovery.

Three layers, cheapest first:

* :class:`TestFaultPlanParser` — pure unit tests of the spec grammar.
* :class:`TestStartupGrace` — monitor-level regression tests driven
  in-process against a fake process (no forking).
* the ``chaos``-marked classes — real multi-process runs with injected
  crashes, hangs, slowdowns and transport faults, asserting the supervisor
  recovers (or degrades) while conserving the stream exactly: every routed
  message is delivered once, itemised as lost in a drained ring, or
  delivered by a survivor through the redirect ledgers.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime import (
    ClusterConfig,
    ClusterResult,
    FaultPlan,
    run_cluster,
    validate_against_simulation,
)
from repro.runtime.runtime import _Monitor
from repro.runtime.state import SharedClusterState, state_words

_CHAOS = [
    pytest.mark.cluster,
    pytest.mark.chaos,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="cluster runtime requires the fork start method",
    ),
]


class TestFaultPlanParser:
    def test_parse_roundtrips_through_spec(self):
        spec = "crash@w2:5000,hang@w1:12000,slow@w0:3x,delta_drop@w3:1"
        plan = FaultPlan.parse(spec)
        assert plan.spec == spec
        assert [f.kind for f in plan.faults] == [
            "crash", "hang", "slow", "delta_drop",
        ]
        assert [f.worker_id for f in plan.faults] == [2, 1, 0, 3]
        assert [f.arg for f in plan.faults] == [5000, 12000, 3, 1]
        assert plan.max_worker_id == 3

    def test_persistent_suffix_parses_and_roundtrips(self):
        plan = FaultPlan.parse("crash@w1:500!")
        assert plan.faults[0].persistent
        assert plan.spec == "crash@w1:500!"

    def test_whitespace_and_empty_entries_tolerated(self):
        plan = FaultPlan.parse(" crash@w0:10 , hang@w1:20 ")
        assert len(plan.faults) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ",",
            "crash@w0",
            "crash@0:10",
            "explode@w0:10",
            "crash@w0:10x",  # x suffix belongs to slow only
            "slow@w0:3",  # ...and slow requires it
            "slow@w0:0x",
            "delta_drop@w0:0",
            "crash@w0:ten",
        ],
    )
    def test_bad_specs_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(bad)

    def test_coerce_accepts_plan_string_and_none(self):
        plan = FaultPlan.parse("crash@w0:1")
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce("crash@w0:1") == plan
        assert FaultPlan.coerce(None) is None
        with pytest.raises(ConfigurationError):
            FaultPlan.coerce(42)

    def test_for_worker_merges_this_workers_faults_only(self):
        plan = FaultPlan.parse("crash@w0:100,slow@w0:4x,hang@w1:50")
        faults = plan.for_worker(0)
        assert faults.crash_after == 100
        assert faults.service_factor == 4
        assert faults.hang_after == -1
        assert plan.for_worker(2) is None

    def test_one_shot_faults_arm_first_incarnation_only(self):
        plan = FaultPlan.parse("crash@w0:100")
        assert plan.for_worker(0, incarnation=0).crash_after == 100
        assert plan.for_worker(0, incarnation=1) is None

    def test_persistent_faults_arm_every_incarnation(self):
        plan = FaultPlan.parse("crash@w0:100!")
        for incarnation in range(3):
            assert plan.for_worker(0, incarnation).crash_after == 100

    def test_delta_drop_tokens_are_consumed(self):
        faults = FaultPlan.parse("delta_drop@w0:2").for_worker(0)
        assert faults.take_delta_drop()
        assert faults.take_delta_drop()
        assert not faults.take_delta_drop()


class _FakeProcess:
    def __init__(self, alive: bool = True, exitcode=None) -> None:
        self._alive = alive
        self.exitcode = exitcode

    def is_alive(self) -> bool:
        return self._alive


def _monitor_config(**overrides) -> ClusterConfig:
    defaults = dict(num_workers=2, startup_grace_s=0.15, heartbeat_timeout_s=0.01)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestStartupGrace:
    """A worker with *no* heartbeat yet is starting up, not hung.

    Regression: ``heartbeat_age_s == inf`` fed into the plain age check
    would declare every slow-forking (or freshly respawned) worker hung
    within one monitor tick.  The inf case must be governed by the
    explicit ``startup_grace_s``, independent of ``heartbeat_timeout_s``.
    """

    pytestmark = [pytest.mark.chaos]

    def _monitor(self, config) -> tuple[_Monitor, SharedClusterState]:
        import numpy as np

        buffer = np.zeros(state_words(config.num_workers), dtype=np.int64)
        state = SharedClusterState(buffer, config.num_workers, create=True)
        state.release_start()
        return _Monitor(state, config, time.perf_counter()), state

    def test_no_heartbeat_within_grace_is_not_a_failure(self):
        # The heartbeat timeout is far in the past already (10ms); only the
        # startup grace keeps the beat-less worker alive.
        monitor, _ = self._monitor(_monitor_config())
        monitor.watch(0, _FakeProcess())
        time.sleep(0.05)
        monitor._check_liveness()
        assert monitor.take_failure() is None

    def test_no_heartbeat_past_grace_is_a_failure(self):
        monitor, _ = self._monitor(_monitor_config())
        monitor.watch(0, _FakeProcess())
        time.sleep(0.2)
        monitor._check_liveness()
        failure = monitor.take_failure()
        assert failure is not None
        assert failure[0] == 0
        assert "startup grace" in failure[2]

    def test_stale_heartbeat_still_trips_the_age_check(self):
        monitor, state = self._monitor(_monitor_config())
        state.heartbeat(0)
        monitor.watch(0, _FakeProcess())
        time.sleep(0.05)  # > 10ms heartbeat timeout, < startup grace
        monitor._check_liveness()
        failure = monitor.take_failure()
        assert failure is not None
        assert "stopped heartbeating" in failure[2]

    def test_fenced_worker_is_never_declared_hung(self):
        monitor, state = self._monitor(_monitor_config())
        state.heartbeat(0)
        state.fence_worker(0)
        monitor.watch(0, _FakeProcess())
        time.sleep(0.05)
        monitor._check_liveness()
        assert monitor.take_failure() is None

    def test_nonzero_exit_skips_the_clean_exit_grace(self):
        monitor, _ = self._monitor(_monitor_config())
        monitor.watch(1, _FakeProcess(alive=False, exitcode=17))
        monitor._check_liveness()
        failure = monitor.take_failure()
        assert failure is not None
        assert "exit code 17" in failure[2]

    def test_clean_exit_gets_a_pipe_drain_grace(self):
        monitor, _ = self._monitor(_monitor_config())
        monitor.watch(1, _FakeProcess(alive=False, exitcode=0))
        monitor._check_liveness()
        assert monitor.take_failure() is None  # within the 1s drain grace


def chaos_config(**overrides) -> ClusterConfig:
    """Small stream, small rings: the source stays backpressured, so
    faults reliably land mid-stream (the source is not yet done)."""
    defaults = dict(
        scheme="PKG",
        num_workers=4,
        num_messages=20_000,
        num_keys=2_000,
        skew=1.4,
        seed=0,
        service_ns=10_000,
        mode="columnar:256",
        ring_capacity_words=2_048,
        startup_timeout_s=60.0,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def assert_stream_conserved(config: ClusterConfig, result: ClusterResult) -> None:
    """Exact-once accounting: every routed message is delivered, itemised
    as lost with a drained ring, or moved through the redirect ledgers."""
    n = config.num_workers
    for w in range(n):
        assert result.source_loads[w] == (
            result.worker_processed[w]
            + result.lost_per_worker[w]
            + result.redirected_out[w]
            - result.redirected_in[w]
        ), f"worker {w} does not reconcile"
    assert sum(result.source_loads) == config.num_messages
    assert sum(result.worker_processed) + result.messages_lost == config.num_messages
    assert result.messages_lost == sum(result.lost_per_worker)
    assert sum(result.redirected_out) == sum(result.redirected_in)


class TestSupervisedRecovery:
    pytestmark = _CHAOS

    def test_midstream_crash_recovers_with_one_respawn(self):
        # The acceptance scenario: a 4-worker PKG run, worker 2 hard-exits
        # mid-stream, the supervisor respawns it, and the run completes
        # with the stream conserved exactly and routing bit-identical to
        # the simulator.
        config = chaos_config(inject="crash@w2:2000")
        result = run_cluster(config)
        assert result.restarts == 1
        assert result.recovered
        assert not result.degraded
        assert result.worker_processed[2] >= 2000  # respawn kept delivering
        assert_stream_conserved(config, result)
        # The crashed ring's in-flight frames are the exact itemised loss.
        assert result.lost_per_worker[2] == result.messages_lost
        assert result.frames_lost > 0
        report = validate_against_simulation(config, result)
        assert report["recovered"]
        assert report["routing_match"]  # bit-exact routing through recovery
        assert report["conservation_ok"]
        assert report["ok"]
        # Recovery was priced through the migration accountant.
        assert result.migration is not None
        kinds = [event.kind for event in result.migration.events]
        assert "recover:w2" in kinds
        assert result.migration.entries_migrated > 0  # dictionary replay
        assert result.recovery_seconds > 0

    def test_restart_budget_exhausted_degrades_to_survivors(self):
        # A persistent crash burns the whole budget; the run must complete
        # on the survivors instead of raising.  The threshold is small and
        # the stream long so the replacement incarnation is guaranteed to
        # receive enough frames to trip the same fault mid-stream (a large
        # threshold can starve: the first crash's in-flight loss plus the
        # respawn-window redirects eat the slot's remaining share).
        config = chaos_config(
            num_messages=40_000, inject="crash@w1:300!", max_restarts=1
        )
        result = run_cluster(config)
        assert result.restarts == 1
        assert result.degraded
        assert result.degraded_workers == [1]
        assert result.worker_results[1].salvaged
        assert_stream_conserved(config, result)
        # The survivors genuinely absorbed the degraded slot's share.
        assert result.redirected_out[1] > 0
        assert result.messages_redirected == result.redirected_out[1]
        kinds = [event.kind for event in result.migration.events]
        assert "degrade:w1" in kinds
        assert result.migration.entries_lost > 0  # the dead replica
        report = validate_against_simulation(config, result)
        assert report["routing_match"]
        assert report["conservation_ok"]
        assert report["ok"]

    def test_hang_is_detected_and_recovered(self):
        config = chaos_config(
            num_workers=2,
            num_messages=12_000,
            inject="hang@w0:2000",
            heartbeat_timeout_s=0.4,
        )
        result = run_cluster(config)
        assert result.restarts == 1
        assert not result.degraded
        assert any("heartbeat" in line for line in result.recovery_log)
        assert_stream_conserved(config, result)

    def test_slow_fault_degrades_nothing_and_trips_no_detector(self):
        config = chaos_config(
            num_workers=2,
            num_messages=6_000,
            inject="slow@w1:3x",
            heartbeat_timeout_s=2.0,
        )
        result = run_cluster(config)
        assert not result.recovered
        assert result.restarts == 0
        assert result.messages_lost == 0
        # Delivery stays bit-exact: a slow worker is healthy.
        report = validate_against_simulation(config, result)
        assert report["delivery_exact"]
        assert report["ok"]

    def test_delta_drop_transport_fault_recovers_like_a_crash(self):
        # The dropped dictionary delta trips the replica's gap detector;
        # the worker reports the protocol error and the supervisor
        # respawns it with a full dictionary replay.
        config = chaos_config(
            num_workers=2, num_messages=12_000, inject="delta_drop@w1:1"
        )
        result = run_cluster(config)
        assert result.restarts == 1
        assert any("delta gap" in line for line in result.recovery_log)
        assert_stream_conserved(config, result)
        report = validate_against_simulation(config, result)
        assert report["ok"]


class TestCrashAtEndOfStream:
    pytestmark = _CHAOS

    def test_crash_after_source_done_salvages_without_respawn(self):
        # Big rings + a slowed worker: the source finishes routing the
        # whole stream (everything buffered) long before worker 1 reaches
        # its crash point, so the failure lands after end-of-stream and
        # must take the salvage path — ledger kept, ring drained, no
        # respawn into a stream that already ended.
        config = chaos_config(
            num_workers=2,
            num_messages=8_000,
            service_ns=1_000,
            inject="slow@w1:50x,crash@w1:2000",
            ring_capacity_words=1 << 14,
        )
        result = run_cluster(config)
        assert result.restarts == 0
        assert result.worker_results[1].salvaged
        assert any("end-of-stream" in line for line in result.recovery_log)
        # The loss is exactly the crashed ring's undelivered backlog.
        assert result.messages_lost == result.lost_per_worker[1] > 0
        assert sum(result.redirected_out) == 0
        assert_stream_conserved(config, result)

    def test_strict_mode_still_raises_after_source_done(self):
        # max_restarts=0 + degrade disabled is the PR-8 contract; it must
        # hold even for failures after end-of-stream.
        from repro.exceptions import WorkerCrashError

        config = chaos_config(
            num_workers=2,
            num_messages=8_000,
            service_ns=1_000,
            inject="slow@w1:50x,crash@w1:2000",
            ring_capacity_words=1 << 14,
            max_restarts=0,
            degrade_when_exhausted=False,
        )
        # A post-EOF crash is still salvageable (the stream completed for
        # every other worker), so even strict mode completes here — the
        # salvage path does not consume a restart.
        result = run_cluster(config)
        assert result.worker_results[1].salvaged
        assert result.restarts == 0
