"""Unit tests of the SPSC ring protocol — no processes are spawned.

The ring works over any int64 buffer, so these tests drive producer and
consumer sides in-process over a plain numpy array: wrap-around, PAD
frames, full-buffer backpressure, sequence-gap detection and EOF handling
are all exercised deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ClusterRuntimeError
from repro.runtime.ring import (
    CONTROL_WORDS,
    DATA,
    EOF,
    FRAME_HEADER_WORDS,
    RingClosed,
    SpscRing,
    ring_words,
)


def make_ring(capacity_words: int = 64) -> tuple[SpscRing, SpscRing, np.ndarray]:
    """A producer view and a consumer view over one shared array."""
    buffer = np.zeros(ring_words(capacity_words), dtype=np.int64)
    producer = SpscRing(buffer, capacity_words, create=True)
    consumer = SpscRing(buffer)  # attaches, reads capacity from control
    return producer, consumer, buffer


class TestPushPop:
    def test_roundtrip_preserves_ids_and_header(self):
        producer, consumer, _ = make_ring()
        ids = np.array([5, 3, 5, 9], dtype=np.int64)
        assert producer.try_push(ids, base_index=17, dict_high_water=10)
        frame = consumer.try_pop()
        assert frame is not None
        assert frame.seq == 0
        assert frame.kind == DATA
        assert frame.base_index == 17
        assert frame.dict_high_water == 10
        assert frame.ids.tolist() == [5, 3, 5, 9]

    def test_pop_on_empty_ring_returns_none(self):
        _, consumer, _ = make_ring()
        assert consumer.try_pop() is None

    def test_popped_ids_are_copies(self):
        producer, consumer, _ = make_ring()
        producer.try_push(np.array([1, 2, 3], dtype=np.int64))
        frame = consumer.try_pop()
        # Recycle the region with a different frame; the copy must survive.
        producer.try_push(np.array([7, 7, 7], dtype=np.int64))
        assert frame.ids.tolist() == [1, 2, 3]

    def test_sequence_numbers_increment_per_frame(self):
        producer, consumer, _ = make_ring()
        for _ in range(3):
            producer.try_push(np.array([1], dtype=np.int64))
        assert [consumer.try_pop().seq for _ in range(3)] == [0, 1, 2]


class TestWrapAround:
    def test_many_frames_wrap_the_region(self):
        producer, consumer, _ = make_ring(capacity_words=32)
        # Frames of 7 words (5 header + 2 ids) in a 32-word region force a
        # wrap roughly every fourth frame.
        for round_number in range(50):
            ids = np.array([round_number, round_number + 1], dtype=np.int64)
            assert producer.try_push(ids, base_index=round_number)
            frame = consumer.try_pop()
            assert frame.seq == round_number
            assert frame.base_index == round_number
            assert frame.ids.tolist() == [round_number, round_number + 1]

    def test_wrap_with_varying_frame_sizes(self):
        producer, consumer, _ = make_ring(capacity_words=48)
        sizes = [1, 9, 3, 17, 2, 11, 5, 1, 13, 7] * 5
        for seq, size in enumerate(sizes):
            ids = np.full(size, seq, dtype=np.int64)
            assert producer.try_push(ids)
            frame = consumer.try_pop()
            assert frame.seq == seq
            assert frame.ids.tolist() == [seq] * size

    def test_interleaved_batches_survive_wraps(self):
        producer, consumer, _ = make_ring(capacity_words=40)
        pushed = 0
        popped = 0
        while popped < 200:
            while pushed - popped < 2 and producer.try_push(
                np.array([pushed], dtype=np.int64)
            ):
                pushed += 1
            frame = consumer.try_pop()
            if frame is not None:
                assert frame.ids.tolist() == [popped]
                popped += 1


class TestExactTailFill:
    """A frame that exactly fills the words left before the wrap point.

    ``needed == tail`` is the PAD boundary: the frame must be written flush
    against the end of the region with **no** PAD frame and no skipped
    words, and the next frame must start cleanly at offset 0.  Regression
    test — an off-by-one in the ``needed > tail`` comparison would either
    waste the whole tail or corrupt the wrap.
    """

    def test_exact_fill_emits_no_pad_and_wraps_cleanly(self):
        capacity = 32
        producer, consumer, buffer = make_ring(capacity_words=capacity)
        first = np.arange(7, dtype=np.int64)
        assert producer.try_push(first, base_index=1)
        assert consumer.try_pop().ids.tolist() == list(range(7))
        # The offset is now 12, so the tail holds exactly 20 words; a frame
        # of 15 ids needs 5 + 15 = 20 words — an exact fill.
        exact = np.arange(100, 115, dtype=np.int64)
        assert producer.try_push(exact, base_index=2)
        assert int(buffer[0]) == capacity  # producer advanced by 20: no PAD
        frame = consumer.try_pop()
        assert frame.seq == 1
        assert frame.kind == DATA
        assert frame.base_index == 2
        assert frame.ids.tolist() == exact.tolist()
        # The region is fully recycled: the next frame starts at offset 0.
        assert producer.free_words() == capacity
        assert producer.try_push(np.array([7, 8, 9], dtype=np.int64))
        assert int(buffer[CONTROL_WORDS + 1]) == DATA  # header at offset 0
        frame = consumer.try_pop()
        assert frame.seq == 2
        assert frame.ids.tolist() == [7, 8, 9]

    def test_exact_fill_is_the_largest_frame_that_fits_the_tail(self):
        # With a 12-word frame unread, free == tail == 20: one id more than
        # the exact fill needs a PAD and therefore cannot fit, while the
        # exact fill still can.
        producer, consumer, _ = make_ring(capacity_words=32)
        assert producer.try_push(np.zeros(7, dtype=np.int64))
        assert not producer.try_push(np.zeros(16, dtype=np.int64))
        assert producer.try_push(np.zeros(15, dtype=np.int64))
        assert consumer.try_pop().ids.size == 7
        assert consumer.try_pop().ids.size == 15


class TestBackpressure:
    def test_try_push_returns_false_when_full(self):
        producer, consumer, _ = make_ring(capacity_words=32)
        pushed = 0
        while producer.try_push(np.array([pushed], dtype=np.int64)):
            pushed += 1
        assert pushed >= 2  # 6-word frames in a 32-word region
        # Draining one frame frees space for exactly one more.
        assert consumer.try_pop() is not None
        assert producer.try_push(np.array([pushed], dtype=np.int64))
        assert not producer.try_push(np.array([99], dtype=np.int64))

    def test_blocking_push_times_out_when_consumer_stalls(self):
        producer, _, _ = make_ring(capacity_words=32)
        while producer.try_push(np.array([1], dtype=np.int64)):
            pass
        with pytest.raises(ClusterRuntimeError, match="timed out"):
            producer.push(np.array([2], dtype=np.int64), timeout=0.05)

    def test_blocking_push_aborts_on_request(self):
        producer, _, _ = make_ring(capacity_words=32)
        while producer.try_push(np.array([1], dtype=np.int64)):
            pass
        with pytest.raises(ClusterRuntimeError, match="aborted"):
            producer.push(np.array([2], dtype=np.int64), should_abort=lambda: True)

    def test_oversized_frame_raises_instead_of_deadlocking(self):
        producer, _, _ = make_ring(capacity_words=32)
        too_big = np.zeros(producer.max_frame_ids() + 1, dtype=np.int64)
        with pytest.raises(ClusterRuntimeError, match="cannot fit"):
            producer.try_push(too_big)

    def test_free_and_pending_words_account_for_frames(self):
        producer, consumer, _ = make_ring(capacity_words=64)
        assert producer.free_words() == 64
        producer.try_push(np.array([1, 2], dtype=np.int64))
        assert producer.free_words() == 64 - (FRAME_HEADER_WORDS + 2)
        assert consumer.pending_words() == FRAME_HEADER_WORDS + 2
        consumer.try_pop()
        assert producer.free_words() == 64
        assert consumer.pending_words() == 0


class TestSequenceGapDetection:
    def test_tampered_seq_raises(self):
        producer, consumer, buffer = make_ring()
        producer.try_push(np.array([1], dtype=np.int64))
        buffer[CONTROL_WORDS] = 41  # overwrite the frame's seq word
        with pytest.raises(ClusterRuntimeError, match="sequence gap"):
            consumer.try_pop()

    def test_skipped_frame_raises(self):
        producer, consumer, _ = make_ring()
        producer.try_push(np.array([1], dtype=np.int64))
        producer.try_push(np.array([2], dtype=np.int64))
        consumer.try_pop()
        consumer._next_pop_seq += 1  # consumer believes it is further along
        with pytest.raises(ClusterRuntimeError, match="sequence gap"):
            consumer.try_pop()

    def test_corrupt_length_raises(self):
        producer, consumer, buffer = make_ring()
        producer.try_push(np.array([1], dtype=np.int64))
        buffer[CONTROL_WORDS + 2] = 10_000
        with pytest.raises(ClusterRuntimeError, match="corrupt frame"):
            consumer.try_pop()


class TestEof:
    def test_close_delivers_eof_frame(self):
        producer, consumer, _ = make_ring()
        producer.try_push(np.array([1], dtype=np.int64))
        producer.close()
        assert consumer.try_pop().kind == DATA
        frame = consumer.try_pop()
        assert frame.is_eof
        assert frame.kind == EOF
        assert frame.ids.size == 0

    def test_push_after_close_raises(self):
        producer, _, _ = make_ring()
        producer.close()
        with pytest.raises(RingClosed):
            producer.try_push(np.array([1], dtype=np.int64))

    def test_close_is_idempotent(self):
        producer, consumer, _ = make_ring()
        producer.close()
        producer.close()
        assert consumer.try_pop().is_eof
        assert consumer.try_pop() is None


class TestTimeoutDiagnostics:
    """Ring timeout errors carry the positions needed to debug a stall."""

    def test_push_timeout_names_positions_and_sequence(self):
        producer, _, _ = make_ring(capacity_words=32)
        pushed = 0
        while producer.try_push(np.array([1], dtype=np.int64)):
            pushed += 1
        with pytest.raises(ClusterRuntimeError) as excinfo:
            producer.push(np.array([2], dtype=np.int64), timeout=0.05)
        message = str(excinfo.value)
        assert "producer=" in message
        assert "consumer=0" in message
        assert f"next push seq {pushed}" in message
        assert "/32 words" in message

    def test_pop_timeout_names_positions_and_awaited_seq(self):
        producer, consumer, _ = make_ring(capacity_words=32)
        producer.try_push(np.array([1], dtype=np.int64))
        consumer.try_pop()
        with pytest.raises(ClusterRuntimeError) as excinfo:
            consumer.pop(timeout=0.05)
        message = str(excinfo.value)
        assert "producer=" in message
        assert "consumer=" in message
        assert "pending=0 words" in message
        assert "awaiting seq 1" in message

    def test_backoff_bounds_are_sane(self):
        from repro.runtime.ring import _BACKOFF_MAX_S, _BACKOFF_MIN_S

        # Deterministic (no jitter) and bounded: doubles from the floor,
        # never sleeps past the cap.
        assert 0 < _BACKOFF_MIN_S < _BACKOFF_MAX_S
        assert _BACKOFF_MAX_S <= 0.01


class TestSupervisorSalvage:
    """rebind() and drain_inflight() — the recovery side of the protocol."""

    def test_drain_counts_unpopped_frames_and_messages(self):
        producer, consumer, _ = make_ring()
        producer.try_push(np.array([1, 2, 3], dtype=np.int64))
        producer.try_push(np.array([4], dtype=np.int64))
        consumer.try_pop()  # the dead worker got one frame out
        drain = producer.drain_inflight()
        assert drain.frames == 1
        assert drain.messages == 1
        assert not drain.eof_seen
        assert producer.free_words() == producer.capacity_words

    def test_drain_sees_eof_and_skips_pads(self):
        producer, consumer, _ = make_ring(capacity_words=32)
        # Force a PAD: a 7-word frame leaves offset 12, the next 4-id frame
        # needs 9 words > 20-word tail only after another frame...  simply
        # push until wrap occurs, popping none.
        producer.try_push(np.arange(7, dtype=np.int64))
        producer.close()
        drain = producer.drain_inflight()
        assert drain.frames == 1
        assert drain.messages == 7
        assert drain.eof_seen

    def test_drain_from_mid_stream_position(self):
        # drain_inflight trusts whatever position the dead consumer left —
        # its own local pop counter must not matter.
        producer, consumer, buffer = make_ring()
        for index in range(3):
            producer.try_push(np.full(2, index, dtype=np.int64))
        consumer.try_pop()
        supervisor_view = SpscRing(buffer)  # fresh attach, never popped
        drain = supervisor_view.drain_inflight()
        assert drain.frames == 2
        assert drain.messages == 4

    def test_rebind_after_reinit_restarts_sequences(self):
        producer, consumer, buffer = make_ring(capacity_words=32)
        producer.try_push(np.array([1, 2], dtype=np.int64))
        producer.close()
        # Supervisor re-initialises the ring in place for the replacement.
        SpscRing(buffer, 32, create=True)
        producer.rebind()
        assert producer.free_words() == 32
        producer.try_push(np.array([9], dtype=np.int64), base_index=5)
        replacement = SpscRing(buffer)
        frame = replacement.try_pop()
        assert frame.seq == 0
        assert frame.base_index == 5
        assert frame.ids.tolist() == [9]

    def test_rebind_reopens_a_closed_producer(self):
        producer, _, buffer = make_ring(capacity_words=32)
        producer.close()
        SpscRing(buffer, 32, create=True)
        producer.rebind()
        producer.close()  # would raise RingClosed without the rebind
        assert SpscRing(buffer).try_pop().is_eof


class TestConstruction:
    def test_create_requires_capacity(self):
        with pytest.raises(ClusterRuntimeError):
            SpscRing(np.zeros(64, dtype=np.int64), create=True)

    def test_attach_to_uninitialised_buffer_raises(self):
        with pytest.raises(ClusterRuntimeError):
            SpscRing(np.zeros(64, dtype=np.int64))

    def test_undersized_buffer_raises(self):
        with pytest.raises(ClusterRuntimeError):
            SpscRing(np.zeros(16, dtype=np.int64), 64, create=True)

    def test_non_int64_array_raises(self):
        with pytest.raises(ClusterRuntimeError):
            SpscRing(np.zeros(64, dtype=np.float64), 32, create=True)
