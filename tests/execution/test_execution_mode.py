"""Tests of the unified ExecutionMode API and its deprecation funnel.

Pins the three contracts of the redesign:

1. every entry point (``run_simulation``, ``route_stream``,
   ``run_topology``) accepts ``mode=`` and the legacy ``batch_size=`` /
   ``columnar=`` aliases keep working, warning, and returning
   byte-identical results;
2. passing both is rejected;
3. adding ``mode`` to experiment configs did **not** invalidate the suite
   store's content-addressed cache (fingerprints pinned as literals from
   before the redesign).
"""

from __future__ import annotations

import warnings

import pytest

from repro import ExecutionMode
from repro.exceptions import ConfigurationError
from repro.execution import DEFAULT_BATCH_SIZE, resolve_mode
from repro.experiments.common import execution_mode_of, route_stream
from repro.partitioning.registry import create_partitioner
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload


def workload() -> ZipfWorkload:
    return ZipfWorkload(exponent=1.4, num_keys=800, num_messages=6_000, seed=5)


class TestExecutionModeValue:
    def test_factories(self):
        assert ExecutionMode.scalar() == ExecutionMode("scalar", 1)
        assert ExecutionMode.batched(64) == ExecutionMode("batched", 64)
        assert ExecutionMode.columnar(64) == ExecutionMode("columnar", 64)
        assert ExecutionMode.batched().batch_size == DEFAULT_BATCH_SIZE

    def test_parse_specs(self):
        assert ExecutionMode.parse("scalar") == ExecutionMode.scalar()
        assert ExecutionMode.parse("batched") == ExecutionMode.batched()
        assert ExecutionMode.parse("batched:4096") == ExecutionMode.batched(4096)
        assert ExecutionMode.parse("columnar:128") == ExecutionMode.columnar(128)

    def test_spec_roundtrip(self):
        for mode in (
            ExecutionMode.scalar(),
            ExecutionMode.batched(512),
            ExecutionMode.columnar(4096),
        ):
            assert ExecutionMode.parse(mode.spec) == mode

    def test_coerce_accepts_instances_and_strings(self):
        mode = ExecutionMode.columnar(32)
        assert ExecutionMode.coerce(mode) is mode
        assert ExecutionMode.coerce("columnar:32") == mode

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionMode.parse("vectorised")
        with pytest.raises(ConfigurationError):
            ExecutionMode.parse("batched:0")
        with pytest.raises(ConfigurationError):
            ExecutionMode("scalar", 8)  # scalar implies batch_size 1
        with pytest.raises(ConfigurationError):
            ExecutionMode.coerce(123)

    def test_parse_errors_list_the_valid_specs(self):
        # A CLI typo should show the user the full grammar, not just reject.
        for bad in ("vectorised", "", ":128", "batched:many", "scalar:8"):
            with pytest.raises(ConfigurationError, match=r"scalar \| batched"):
                ExecutionMode.parse(bad)
        with pytest.raises(ConfigurationError, match=r"scalar \| batched"):
            ExecutionMode.parse(None)  # type: ignore[arg-type]

    def test_parse_errors_name_the_offending_part(self):
        with pytest.raises(ConfigurationError, match="'vectorised'"):
            ExecutionMode.parse("vectorised:64")
        with pytest.raises(ConfigurationError, match="must be an integer"):
            ExecutionMode.parse("columnar:big")
        with pytest.raises(ConfigurationError, match="takes no batch size"):
            ExecutionMode.parse("scalar:4")
        with pytest.raises(ConfigurationError, match="must be a string"):
            ExecutionMode.parse(1024)  # type: ignore[arg-type]

    def test_properties(self):
        assert ExecutionMode.scalar().is_scalar
        assert not ExecutionMode.scalar().is_columnar
        assert ExecutionMode.columnar().is_columnar
        assert ExecutionMode.batched(64).spec == "batched:64"


class TestResolveMode:
    def test_mode_wins_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            resolved = resolve_mode("columnar:64", None, None)
        assert resolved == ExecutionMode.columnar(64)

    def test_default_when_nothing_given(self):
        default = ExecutionMode.batched(99)
        assert resolve_mode(None, None, None, default=default) == default

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_mode(None, 64, None) == ExecutionMode.batched(64)
        with pytest.warns(DeprecationWarning):
            assert resolve_mode(None, 1, None) == ExecutionMode.scalar()
        with pytest.warns(DeprecationWarning):
            assert resolve_mode(None, 64, True) == ExecutionMode.columnar(64)
        with pytest.warns(DeprecationWarning):
            assert resolve_mode(None, None, True) == ExecutionMode.columnar(
                DEFAULT_BATCH_SIZE
            )

    def test_mode_plus_legacy_is_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            resolve_mode("scalar", 64, None)


class TestEntryPointEquivalence:
    def test_run_simulation_alias_is_byte_identical(self):
        baseline = run_simulation(
            workload(), scheme="PKG", num_workers=8,
            mode=ExecutionMode.columnar(128),
        )
        with pytest.warns(DeprecationWarning):
            legacy = run_simulation(
                workload(), scheme="PKG", num_workers=8,
                batch_size=128, columnar=True,
            )
        assert legacy.worker_loads == baseline.worker_loads
        assert legacy.final_imbalance == baseline.final_imbalance

    def test_run_simulation_rejects_mode_plus_alias(self):
        with pytest.raises(ConfigurationError, match="run_simulation"):
            run_simulation(
                workload(), scheme="PKG", num_workers=8,
                mode="scalar", batch_size=64,
            )

    def test_route_stream_alias_is_byte_identical(self):
        routed_mode = route_stream(
            create_partitioner("D-C", num_workers=8, seed=3),
            workload(),
            mode="columnar:64",
        )
        with pytest.warns(DeprecationWarning):
            routed_legacy = route_stream(
                create_partitioner("D-C", num_workers=8, seed=3),
                workload(),
                batch_size=64,
                columnar=True,
            )
        assert routed_mode == routed_legacy

    def test_route_stream_scalar_mode_matches_scalar_loop(self):
        keys = list(workload())
        partitioner = create_partitioner("PKG", num_workers=8, seed=3)
        expected = [partitioner.route(key) for key in keys]
        routed = route_stream(
            create_partitioner("PKG", num_workers=8, seed=3),
            keys,
            mode=ExecutionMode.scalar(),
        )
        assert routed == expected

    def test_run_topology_accepts_mode_and_alias(self):
        from repro.dataflow.runtime import run_topology
        from repro.experiments.fig17_topology_throughput import (
            Fig17Config,
            build_topology,
            make_posts,
        )

        config = Fig17Config.tiny()
        posts = make_posts(config)
        baseline = run_topology(
            build_topology(config, "PKG"), posts, seed=0,
            num_external_sources=config.num_external_sources,
            mode=ExecutionMode.batched(256),
        )
        with pytest.warns(DeprecationWarning):
            legacy = run_topology(
                build_topology(config, "PKG"), posts, seed=0,
                num_external_sources=config.num_external_sources,
                batch_size=256,
            )
        base_metrics = baseline.vertex_metrics("aggregate")
        legacy_metrics = legacy.vertex_metrics("aggregate")
        assert legacy_metrics.instance_loads == base_metrics.instance_loads


class TestConfigAdoption:
    def test_execution_mode_of_prefers_mode_field(self):
        class Config:
            batch_size = 64
            mode = "columnar:32"

        assert execution_mode_of(Config()) == ExecutionMode.columnar(32)

    def test_execution_mode_of_falls_back_to_batch_size(self):
        class Config:
            batch_size = 64

        assert execution_mode_of(Config()) == ExecutionMode.batched(64)

        class Scalar:
            batch_size = 1

        assert execution_mode_of(Scalar()) == ExecutionMode.scalar()

    def test_execution_mode_of_defaults_to_batched(self):
        class Bare:
            pass

        assert execution_mode_of(Bare()) == ExecutionMode.batched()

    def test_simulation_config_resolves_mode(self):
        from repro.simulation.config import SimulationConfig

        config = SimulationConfig(
            scheme="PKG", num_workers=4, mode="columnar:64"
        )
        assert config.mode == ExecutionMode.columnar(64)
        assert config.columnar is True
        assert config.batch_size == 64

    def test_descriptor_configure_rejects_mode_plus_batch_size(self):
        from repro.experiments.registry import get_experiment

        descriptor = get_experiment("fig1").descriptor
        with pytest.raises(ConfigurationError, match="not both"):
            descriptor.configure("tiny", batch_size=64, mode="scalar")


class TestFingerprintStability:
    """Adding ``mode`` to configs must not invalidate cached records.

    The literals were computed on the commit *before* the ExecutionMode
    redesign; if one of these assertions fails, every user's results store
    silently becomes a cache miss.
    """

    PINNED = {
        ("scenarios", "tiny"): (
            "a1c0b75d94b82e2f2333e297cdf666f064d887efa61199a14f887f02924710b0"
        ),
        ("scenarios", "quick"): (
            "cd9efe34f7e82ab3946685f03514c13f398ea94a46635f3962a572e89fb5e75b"
        ),
        ("fig1", "tiny"): (
            "8a482dd32b0c424b69a6db07686a17cf3417f904866676a91f2580a603d04933"
        ),
        ("fig1", "quick"): (
            "83e3e474bd89217b8e040e56920c72bfb2625ef62b7b273858522ab2b0b09503"
        ),
    }

    @pytest.mark.parametrize(
        "experiment_id,scale",
        sorted(PINNED),
        ids=lambda value: str(value),
    )
    def test_fingerprints_unchanged_since_before_mode_field(
        self, experiment_id, scale
    ):
        from repro.experiments.registry import get_experiment
        from repro.suite.store import config_fingerprint

        descriptor = get_experiment(experiment_id).descriptor
        config = descriptor.config_dict(descriptor.config(scale))
        fingerprint = config_fingerprint(experiment_id, scale, config)
        assert fingerprint == self.PINNED[(experiment_id, scale)]

    def test_mode_override_does_not_change_the_fingerprint(self):
        from repro.experiments.registry import get_experiment
        from repro.suite.store import config_fingerprint

        descriptor = get_experiment("fig1").descriptor
        plain = descriptor.config_dict(descriptor.configure("tiny"))
        overridden = descriptor.config_dict(
            descriptor.configure("tiny", mode="columnar:4096")
        )
        assert config_fingerprint("fig1", "tiny", plain) == config_fingerprint(
            "fig1", "tiny", overridden
        )
