"""Engine-level behaviour of rescale plans (tracker, memory, accounting)."""

from __future__ import annotations

import pytest

from repro.elasticity.events import RescalePlan
from repro.exceptions import ConfigurationError
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import LoadTracker
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload


def _workload(messages: int = 20_000):
    return ZipfWorkload(1.4, 2_000, messages, seed=2)


class TestLoadTrackerRescale:
    def test_grow_appends_zero(self):
        tracker = LoadTracker(3)
        for worker in (0, 1, 2, 0):
            tracker.record(worker)
        tracker.rescale(5)
        assert tracker.loads == [2, 1, 1, 0, 0]
        assert tracker.total_messages == 4

    def test_shrink_drops_counts_from_total(self):
        tracker = LoadTracker(3, track_head_tail=True)
        for worker in (0, 1, 2, 2):
            tracker.record(worker, is_head=worker == 2)
        tracker.rescale(2)
        assert tracker.loads == [1, 1]
        assert tracker.total_messages == 2
        head, tail = tracker.head_tail_split()
        assert head == [0, 0]

    def test_rescale_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadTracker(2).rescale(0)


class TestConfigValidation:
    def test_plan_spec_normalised_to_plan(self):
        config = SimulationConfig(
            scheme="PKG", num_workers=5, rescale_plan="join@10,fail@20",
            rescale_policy="migrate",
        )
        assert isinstance(config.rescale_plan, RescalePlan)
        assert config.rescale_plan.policy == "migrate"

    def test_plan_shrinking_below_one_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                scheme="PKG", num_workers=1, rescale_plan="leave@10"
            )

    def test_empty_plan_is_none(self):
        config = SimulationConfig(scheme="PKG", num_workers=5, rescale_plan="")
        assert config.rescale_plan is None


class TestEngineRescale:
    def test_final_topology_reflected_in_result(self):
        result = run_simulation(
            _workload(), scheme="PKG", num_workers=10,
            rescale_plan="join@2000,join@5000,leave@9000",
        )
        assert result.num_workers == 11
        assert len(result.worker_loads) == 11
        assert result.migration is not None
        assert result.migration.events_applied == 3

    def test_fail_loses_state_leave_hands_it_off(self):
        leave = run_simulation(
            _workload(), scheme="PKG", num_workers=10,
            rescale_plan="leave@10000", rescale_policy="migrate",
        ).migration
        fail = run_simulation(
            _workload(), scheme="PKG", num_workers=10,
            rescale_plan="fail@10000", rescale_policy="migrate",
        ).migration
        assert leave.entries_lost == 0
        assert fail.entries_lost > 0
        # The same worker departs either way; what changes is the ledger.
        assert (
            leave.entries_migrated
            == fail.entries_migrated + fail.entries_lost
        )

    def test_ch_moves_an_order_of_magnitude_fewer_keys_than_pkg(self):
        plan = "join@5000,leave@12000"
        pkg = run_simulation(
            _workload(), scheme="PKG", num_workers=10, rescale_plan=plan
        ).migration
        ch = run_simulation(
            _workload(), scheme="CH", num_workers=10, rescale_plan=plan
        ).migration
        assert ch.keys_moved * 4 < pkg.keys_moved

    def test_only_migrate_misroutes(self):
        def misrouted(policy: str) -> int:
            return run_simulation(
                _workload(), scheme="PKG", num_workers=10,
                rescale_plan="join@5000", rescale_policy=policy,
                migration_window=2_000,
            ).migration.tuples_misrouted

        assert misrouted("migrate") > 0
        assert misrouted("rehash") == 0
        assert misrouted("remap") == 0

    def test_misroutes_bounded_by_window(self):
        migration = run_simulation(
            _workload(), scheme="PKG", num_workers=10,
            rescale_plan="join@5000", rescale_policy="migrate",
            migration_window=300,
        ).migration
        assert 0 < migration.tuples_misrouted <= 300

    def test_summary_includes_migration_totals(self):
        result = run_simulation(
            _workload(), scheme="PKG", num_workers=10, rescale_plan="join@5000"
        )
        summary = result.summary()
        assert summary["rescale_events"] == 1
        assert "keys_moved" in summary

    def test_no_plan_keeps_result_shape(self):
        result = run_simulation(_workload(), scheme="PKG", num_workers=10)
        assert result.migration is None
        assert "rescale_events" not in result.summary()

    def test_time_series_axis_is_monotonic_through_shrinks(self):
        # A leave/fail removes messages from the load total; the series'
        # time axis must still be the stream position, not that total.
        result = run_simulation(
            _workload(), scheme="PKG", num_workers=10,
            rescale_plan="leave@8000,fail@14000",
            track_interval=2_000,
        )
        times = result.time_series.times
        assert times == sorted(set(times))  # strictly increasing
        assert times[-1] == 20_000  # the full stream was seen

    def test_shuffle_grouping_reports_no_moved_keys(self):
        migration = run_simulation(
            _workload(), scheme="SG", num_workers=10, rescale_plan="join@5000"
        ).migration
        assert migration.keys_moved == 0
