"""Unit tests for load tracking and the imbalance metric."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.metrics import ImbalanceTimeSeries, LoadTracker
from repro.types import LoadSnapshot


class TestLoadTracker:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            LoadTracker(0)

    def test_record_and_loads(self):
        tracker = LoadTracker(3)
        for worker in (0, 1, 1, 2, 2, 2):
            tracker.record(worker)
        assert tracker.loads == [1, 2, 3]
        assert tracker.total_messages == 6

    def test_record_rejects_bad_worker(self):
        tracker = LoadTracker(3)
        with pytest.raises(SimulationError):
            tracker.record(3)
        with pytest.raises(SimulationError):
            tracker.record(-1)

    def test_normalized_loads(self):
        tracker = LoadTracker(2)
        tracker.record(0)
        tracker.record(0)
        tracker.record(1)
        assert tracker.normalized_loads() == pytest.approx([2 / 3, 1 / 3])

    def test_normalized_loads_empty(self):
        assert LoadTracker(4).normalized_loads() == [0.0] * 4

    def test_imbalance_definition(self):
        tracker = LoadTracker(4)
        for worker in (0, 0, 0, 1, 2, 3):
            tracker.record(worker)
        expected = 3 / 6 - 1 / 4
        assert tracker.imbalance() == pytest.approx(expected)

    def test_imbalance_zero_when_balanced(self):
        tracker = LoadTracker(4)
        for worker in range(4):
            tracker.record(worker)
        assert tracker.imbalance() == pytest.approx(0.0)
        assert tracker.imbalance() >= 0.0

    def test_max_load(self):
        tracker = LoadTracker(2)
        tracker.record(0)
        tracker.record(0)
        tracker.record(1)
        assert tracker.max_load() == pytest.approx(2 / 3)

    def test_max_load_empty(self):
        assert LoadTracker(2).max_load() == 0.0

    def test_snapshot(self):
        tracker = LoadTracker(2)
        tracker.record(1)
        snapshot = tracker.snapshot(time=5.0)
        assert isinstance(snapshot, LoadSnapshot)
        assert snapshot.loads == [0, 1]
        assert snapshot.imbalance == pytest.approx(1.0 - 0.5)

    def test_head_tail_split(self):
        tracker = LoadTracker(2, track_head_tail=True)
        tracker.record(0, is_head=True)
        tracker.record(0, is_head=False)
        tracker.record(1, is_head=True)
        head, tail = tracker.head_tail_split()
        assert head == [1, 1]
        assert tail == [1, 0]

    def test_head_tail_split_requires_tracking(self):
        tracker = LoadTracker(2)
        tracker.record(0)
        with pytest.raises(SimulationError):
            tracker.head_tail_split()


class TestImbalanceTimeSeries:
    def test_records_at_interval(self):
        tracker = LoadTracker(2)
        series = ImbalanceTimeSeries(interval=2)
        for worker in (0, 1, 0, 1, 0):
            tracker.record(worker)
            series.maybe_record(tracker)
        assert series.times == [2, 4]

    def test_disabled_when_interval_zero(self):
        tracker = LoadTracker(2)
        series = ImbalanceTimeSeries(interval=0)
        tracker.record(0)
        series.maybe_record(tracker)
        assert series.times == []

    def test_final_appends_last_point(self):
        tracker = LoadTracker(2)
        series = ImbalanceTimeSeries(interval=2)
        for worker in (0, 1, 0):
            tracker.record(worker)
            series.maybe_record(tracker)
        series.final(tracker)
        assert series.times[-1] == 3

    def test_final_does_not_duplicate(self):
        tracker = LoadTracker(2)
        series = ImbalanceTimeSeries(interval=1)
        tracker.record(0)
        series.maybe_record(tracker)
        series.final(tracker)
        assert series.times == [1]

    def test_average_and_maximum(self):
        series = ImbalanceTimeSeries(interval=1, times=[1, 2], values=[0.1, 0.3])
        assert series.average == pytest.approx(0.2)
        assert series.maximum == pytest.approx(0.3)

    def test_empty_series_statistics(self):
        series = ImbalanceTimeSeries(interval=1)
        assert series.average == 0.0
        assert series.maximum == 0.0

    def test_as_rows(self):
        series = ImbalanceTimeSeries(interval=1, times=[5], values=[0.2])
        assert series.as_rows() == [(5, 0.2)]


class TestLoadSnapshot:
    def test_empty_snapshot(self):
        snapshot = LoadSnapshot(time=0.0, loads=[])
        assert snapshot.total == 0
        assert snapshot.imbalance == 0.0
        assert snapshot.normalized == []

    def test_zero_total_normalization(self):
        snapshot = LoadSnapshot(time=0.0, loads=[0, 0])
        assert snapshot.normalized == [0.0, 0.0]
