"""Unit tests for the partitioning simulation engine and runner."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.runner import results_table, run_simulation, sweep
from repro.workloads.zipf_stream import ZipfWorkload


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig(scheme="PKG", num_workers=10)
        assert config.num_sources == 5
        assert config.track_interval == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(scheme="PKG", num_workers=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(scheme="PKG", num_workers=5, num_sources=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(scheme="PKG", num_workers=5, track_interval=-1)


class TestSimulationEngine:
    def test_every_message_accounted(self):
        config = SimulationConfig(scheme="PKG", num_workers=4, num_sources=2)
        engine = SimulationEngine(config)
        result = engine.run(["a", "b", "c"] * 100)
        assert result.num_messages == 300
        assert sum(result.worker_loads) == 300

    def test_unknown_scheme_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            SimulationEngine(SimulationConfig(scheme="BOGUS", num_workers=4))

    def test_empty_workload_rejected(self):
        engine = SimulationEngine(SimulationConfig(scheme="PKG", num_workers=4))
        with pytest.raises(ConfigurationError):
            engine.run([])

    def test_sources_count_respected(self):
        config = SimulationConfig(scheme="PKG", num_workers=4, num_sources=3)
        engine = SimulationEngine(config)
        engine.run(["k"] * 30)
        assert len(engine.sources) == 3
        assert all(source.messages_routed == 10 for source in engine.sources)

    def test_pkg_sources_share_hash_seed(self):
        config = SimulationConfig(scheme="PKG", num_workers=16, num_sources=4, seed=3)
        engine = SimulationEngine(config)
        engine.run(["the-key"] * 400)
        # a single key may reach at most two workers, regardless of sources
        used = [worker for worker, load in enumerate(engine.tracker.loads) if load]
        assert len(used) <= 2

    def test_shuffle_sources_offset(self):
        config = SimulationConfig(scheme="SG", num_workers=4, num_sources=4, seed=0)
        engine = SimulationEngine(config)
        result = engine.run(["x"] * 400)
        assert result.final_imbalance == pytest.approx(0.0, abs=1e-9)

    def test_time_series_tracking(self):
        config = SimulationConfig(
            scheme="PKG", num_workers=4, num_sources=2, track_interval=50
        )
        engine = SimulationEngine(config)
        result = engine.run([f"k{i % 17}" for i in range(200)])
        assert result.time_series is not None
        assert result.time_series.times[0] == 50
        assert result.time_series.times[-1] == 200

    def test_head_tail_tracking(self):
        config = SimulationConfig(
            scheme="W-C",
            num_workers=4,
            num_sources=2,
            track_head_tail=True,
            scheme_options={"warmup_messages": 0},
        )
        engine = SimulationEngine(config)
        result = engine.run(["hot"] * 500)
        assert result.head_loads is not None
        assert sum(result.head_loads) > 0
        assert result.head_key_count == 1

    def test_memory_entries_counted(self):
        config = SimulationConfig(scheme="KG", num_workers=4, num_sources=1)
        engine = SimulationEngine(config)
        result = engine.run([f"key-{i}" for i in range(100)])
        # key grouping stores every key on exactly one worker
        assert result.memory_entries == 100


class TestRunner:
    def test_run_simulation_workload_object(self):
        workload = ZipfWorkload(1.5, 100, 2000, seed=1)
        result = run_simulation(workload, scheme="D-C", num_workers=10)
        assert result.scheme == "D-C"
        assert result.num_messages == 2000

    def test_run_simulation_plain_iterable(self):
        result = run_simulation(["a", "b"] * 50, scheme="SG", num_workers=2)
        assert result.num_messages == 100

    def test_summary_keys(self):
        result = run_simulation(["a", "b"] * 50, scheme="SG", num_workers=2)
        summary = result.summary()
        assert {"scheme", "workers", "imbalance", "memory_entries"} <= set(summary)

    def test_sweep_produces_all_combinations(self):
        results = sweep(
            lambda: ZipfWorkload(1.5, 100, 1000, seed=1),
            schemes=("PKG", "W-C"),
            worker_counts=(2, 4),
        )
        assert len(results) == 4
        assert {(r.scheme, r.num_workers) for r in results} == {
            ("PKG", 2),
            ("PKG", 4),
            ("W-C", 2),
            ("W-C", 4),
        }

    def test_results_table(self):
        results = sweep(
            lambda: ZipfWorkload(1.5, 100, 500, seed=1),
            schemes=("PKG",),
            worker_counts=(2,),
        )
        table = results_table(results)
        assert len(table) == 1
        assert table[0]["scheme"] == "PKG"

    def test_normalized_loads_sum_to_one(self):
        result = run_simulation(["a", "b", "c"] * 100, scheme="PKG", num_workers=5)
        assert sum(result.normalized_loads) == pytest.approx(1.0)
        assert result.max_load >= 1 / 5
