"""Unit tests for the partitioner registry/factory."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.partitioning.d_choices import DChoices
from repro.partitioning.fixed_d import FixedDHead
from repro.partitioning.registry import (
    available_schemes,
    canonical_name,
    create_partitioner,
    head_aware_schemes,
)


class TestCanonicalName:
    @pytest.mark.parametrize(
        ("alias", "expected"),
        [
            ("pkg", "PKG"),
            ("PKG", "PKG"),
            ("dchoices", "D-C"),
            ("d_choices", "D-C"),
            ("DC", "D-C"),
            ("w-c", "W-C"),
            ("wchoices", "W-C"),
            ("shuffle", "SG"),
            ("key_grouping", "KG"),
            ("round_robin", "RR"),
            ("greedy", "GREEDY-D"),
            ("fixed_d", "FIXED-D"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert canonical_name(alias) == expected

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_name("does-not-exist")

    def test_whitespace_tolerated(self):
        assert canonical_name("  pkg ") == "PKG"


class TestCreatePartitioner:
    def test_all_registered_schemes_instantiable(self):
        for name in available_schemes():
            kwargs = {"num_choices": 3} if name in ("GREEDY-D", "FIXED-D") else {}
            scheme = create_partitioner(name, num_workers=8, **kwargs)
            assert scheme.num_workers == 8
            assert scheme.name == name

    def test_kwargs_forwarded(self):
        scheme = create_partitioner("D-C", num_workers=10, theta=0.05, epsilon=1e-3)
        assert isinstance(scheme, DChoices)
        assert scheme.theta == 0.05
        assert scheme.epsilon == 1e-3

    def test_fixed_d_requires_choice_count(self):
        scheme = create_partitioner("FIXED-D", num_workers=10, num_choices=4)
        assert isinstance(scheme, FixedDHead)
        assert scheme.num_choices == 4

    def test_head_aware_schemes_subset(self):
        assert set(head_aware_schemes()) <= set(available_schemes())

    def test_routes_after_creation(self):
        scheme = create_partitioner("pkg", num_workers=4, seed=1)
        assert 0 <= scheme.route("key") < 4
