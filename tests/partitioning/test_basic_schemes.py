"""Unit tests for KG, SG, PKG and the Greedy-d building block."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError
from repro.partitioning.greedy_d import GreedyD
from repro.partitioning.key_grouping import KeyGrouping
from repro.partitioning.partial_key_grouping import PartialKeyGrouping
from repro.partitioning.shuffle_grouping import ShuffleGrouping
from repro.workloads.zipf_stream import ZipfWorkload


class TestPartitionerBase:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            KeyGrouping(num_workers=0)

    def test_local_loads_track_routing(self):
        scheme = KeyGrouping(num_workers=4, seed=1)
        for key in ["a", "b", "c", "a"]:
            scheme.route(key)
        assert sum(scheme.local_loads) == 4
        assert scheme.messages_routed == 4

    def test_reset_clears_state(self):
        scheme = PartialKeyGrouping(num_workers=4, seed=1)
        for index in range(10):
            scheme.route(f"k{index}")
        scheme.reset()
        assert sum(scheme.local_loads) == 0
        assert scheme.messages_routed == 0

    def test_route_with_decision_consistency(self):
        scheme = PartialKeyGrouping(num_workers=8, seed=2)
        decision = scheme.route_with_decision("key")
        assert decision.worker in decision.candidates
        assert decision.is_head is False


class TestKeyGrouping:
    def test_sticky_per_key(self):
        scheme = KeyGrouping(num_workers=16, seed=3)
        first = scheme.route("user-1")
        assert all(scheme.route("user-1") == first for _ in range(20))

    def test_different_keys_spread(self):
        scheme = KeyGrouping(num_workers=16, seed=3)
        workers = {scheme.route(f"key-{i}") for i in range(500)}
        assert len(workers) == 16

    def test_same_seed_same_mapping(self):
        one = KeyGrouping(num_workers=10, seed=5)
        two = KeyGrouping(num_workers=10, seed=5)
        assert [one.route(f"k{i}") for i in range(50)] == [
            two.route(f"k{i}") for i in range(50)
        ]

    def test_candidates_single(self):
        scheme = KeyGrouping(num_workers=10, seed=5)
        decision = scheme.route_with_decision("x")
        assert len(decision.candidates) == 1


class TestShuffleGrouping:
    def test_round_robin_order(self):
        scheme = ShuffleGrouping(num_workers=3, seed=0)
        assert [scheme.route("ignored") for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_seed_offsets_start(self):
        scheme = ShuffleGrouping(num_workers=4, seed=2)
        assert scheme.route("x") == 2

    def test_perfect_balance(self):
        scheme = ShuffleGrouping(num_workers=5, seed=0)
        for _ in range(1000):
            scheme.route("hot")
        loads = scheme.local_loads
        assert max(loads) - min(loads) == 0

    def test_reset_restores_offset(self):
        scheme = ShuffleGrouping(num_workers=4, seed=1)
        scheme.route("a")
        scheme.reset()
        assert scheme.route("a") == 1


class TestPartialKeyGrouping:
    def test_key_confined_to_two_workers(self):
        scheme = PartialKeyGrouping(num_workers=32, seed=7)
        workers = {scheme.route("hot") for _ in range(500)}
        assert len(workers) <= 2

    def test_picks_less_loaded_candidate(self):
        scheme = PartialKeyGrouping(num_workers=8, seed=1)
        decision = scheme.route_with_decision("k")
        first, second = decision.candidates
        if first != second:
            # preload the first candidate heavily; the next routing of the
            # same key must go to the other candidate
            for _ in range(10):
                scheme._state.loads[first] += 1
            assert scheme.route("k") == second

    def test_balances_better_than_kg_on_skew(self):
        workload = list(ZipfWorkload(1.5, 500, 20_000, seed=3))
        kg = KeyGrouping(num_workers=10, seed=4)
        pkg = PartialKeyGrouping(num_workers=10, seed=4)
        for key in workload:
            kg.route(key)
            pkg.route(key)
        assert max(pkg.local_loads) <= max(kg.local_loads)

    def test_two_sources_agree_on_candidates(self):
        one = PartialKeyGrouping(num_workers=16, seed=9)
        two = PartialKeyGrouping(num_workers=16, seed=9)
        assert (
            one.route_with_decision("k").candidates
            == two.route_with_decision("k").candidates
        )


class TestGreedyD:
    def test_rejects_bad_choice_count(self):
        with pytest.raises(ConfigurationError):
            GreedyD(num_workers=4, num_choices=0)

    def test_caps_choices_at_worker_count(self):
        scheme = GreedyD(num_workers=4, num_choices=100)
        assert scheme.num_choices == 4

    def test_key_confined_to_d_workers(self):
        scheme = GreedyD(num_workers=50, num_choices=5, seed=1)
        workers = {scheme.route("hot") for _ in range(1000)}
        assert len(workers) <= 5

    def test_more_choices_reduce_max_load(self):
        workload = list(ZipfWorkload(2.0, 200, 20_000, seed=5))
        max_loads = []
        for d in (1, 2, 8):
            scheme = GreedyD(num_workers=20, num_choices=d, seed=2)
            for key in workload:
                scheme.route(key)
            max_loads.append(max(scheme.local_loads))
        assert max_loads[0] >= max_loads[1] >= max_loads[2]

    def test_counter_distribution(self):
        scheme = GreedyD(num_workers=10, num_choices=10, seed=0)
        for index in range(1000):
            scheme.route(f"k{index % 37}")
        loads = Counter(scheme.local_loads)
        assert sum(scheme.local_loads) == 1000
