"""The rescale contract every grouping scheme must honour."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.partitioning.registry import available_schemes, create_partitioner

SCHEME_OPTIONS: dict[str, dict[str, int]] = {
    "GREEDY-D": {"num_choices": 4},
    "FIXED-D": {"num_choices": 5},
}


def _make(scheme: str, num_workers: int, seed: int = 3, **extra):
    options = dict(SCHEME_OPTIONS.get(scheme, {}))
    options.update(extra)
    return create_partitioner(scheme, num_workers=num_workers, seed=seed, **options)


@pytest.mark.parametrize("scheme", available_schemes())
class TestRescaleContract:
    def test_grow_appends_zero_loads(self, scheme):
        partitioner = _make(scheme, num_workers=6)
        for index in range(600):
            partitioner.route(f"k{index % 30}")
        loads = partitioner.local_loads
        partitioner.rescale(9)
        assert partitioner.num_workers == 9
        assert partitioner.local_loads == loads + [0, 0, 0]

    def test_shrink_drops_highest_ids(self, scheme):
        partitioner = _make(scheme, num_workers=9)
        for index in range(600):
            partitioner.route(f"k{index % 30}")
        loads = partitioner.local_loads
        partitioner.rescale(5)
        assert partitioner.num_workers == 5
        assert partitioner.local_loads == loads[:5]

    def test_routing_stays_in_range_after_rescale(self, scheme):
        partitioner = _make(scheme, num_workers=8)
        for index in range(300):
            partitioner.route(f"k{index % 20}")
        partitioner.rescale(3)
        workers = {partitioner.route(f"x{index}") for index in range(300)}
        assert workers <= set(range(3))
        partitioner.rescale(12)
        workers = {partitioner.route(f"y{index}") for index in range(600)}
        assert workers <= set(range(12))
        assert max(workers) >= 3  # new ids actually get used

    def test_rescale_to_same_size_is_noop(self, scheme):
        partitioner = _make(scheme, num_workers=7)
        for index in range(100):
            partitioner.route(f"k{index}")
        loads = partitioner.local_loads
        partitioner.rescale(7)
        assert partitioner.local_loads == loads

    def test_rescale_below_one_rejected(self, scheme):
        partitioner = _make(scheme, num_workers=3)
        with pytest.raises(ConfigurationError):
            partitioner.rescale(0)

    def test_key_candidates_is_pure_and_in_range(self, scheme):
        partitioner = _make(scheme, num_workers=8)
        for index in range(300):
            partitioner.route(f"k{index % 20}")
        loads = partitioner.local_loads
        first = partitioner.key_candidates("k3")
        second = partitioner.key_candidates("k3")
        assert first == second  # deterministic
        assert partitioner.local_loads == loads  # no state mutation
        assert all(0 <= worker < 8 for worker in first)


class TestConsistentGroupingMinimalMovement:
    def test_ring_moves_few_keys(self):
        keys = [f"key-{index}" for index in range(2_000)]
        partitioner = _make("CH", num_workers=10, seed=7)
        before = {key: partitioner.key_candidates(key) for key in keys}
        partitioner.rescale(11)
        moved = sum(
            1 for key in keys if partitioner.key_candidates(key) != before[key]
        )
        # A join should steal roughly 1/11 of the keys; modulo re-hashing
        # would move ~10/11.  Allow generous slack over the expectation.
        assert 0 < moved < len(keys) * 0.35

    def test_modulo_hash_moves_most_keys(self):
        keys = [f"key-{index}" for index in range(2_000)]
        partitioner = _make("PKG", num_workers=10, seed=7)
        before = {key: partitioner.key_candidates(key) for key in keys}
        partitioner.rescale(11)
        moved = sum(
            1 for key in keys if partitioner.key_candidates(key) != before[key]
        )
        assert moved > len(keys) * 0.5


class TestHeadTailRescale:
    def test_head_table_survives_rescale(self):
        partitioner = _make("W-C", num_workers=8, warmup_messages=0)
        for _ in range(500):
            partitioner.route("hot")
        assert "hot" in partitioner.current_head()
        partitioner.rescale(12)
        assert "hot" in partitioner.current_head()
        assert partitioner.is_head("hot")

    def test_defaulted_theta_tracks_worker_count(self):
        partitioner = _make("W-C", num_workers=10)
        assert partitioner.theta == pytest.approx(1 / 50)
        partitioner.rescale(20)
        assert partitioner.theta == pytest.approx(1 / 100)

    def test_join_rescale_grows_sketch_capacity(self):
        # Regression: the sketch kept its original capacity when a join
        # re-derived a smaller defaulted theta — at 4 workers the sketch is
        # provisioned for theta = 1/20, but after joins to 32 workers the
        # new theta 1/160 needs 1/theta = 160 counters and the old sizing
        # can silently evict true heavy hitters.
        partitioner = _make("W-C", num_workers=4, warmup_messages=0)
        assert partitioner.sketch.capacity < 160
        for workers in range(5, 33):
            partitioner.rescale(workers)
        assert partitioner.theta == pytest.approx(1 / 160)
        assert partitioner.sketch.capacity >= 1 / partitioner.theta

    @pytest.mark.parametrize("scheme", ["D-C", "W-C", "RR"])
    def test_heavy_hitter_still_head_after_joins(self, scheme):
        # 100 uniform keys: each has relative frequency 1/100, below the
        # 4-worker theta (1/20) but above the 32-worker theta (1/160) —
        # every key becomes a true heavy hitter after the joins.  With the
        # unfixed capacity (40 counters) most of them could not even be
        # monitored, so is_head() returned False for genuinely heavy keys.
        partitioner = _make(scheme, num_workers=4, warmup_messages=0)
        partitioner.rescale(32)
        for round_index in range(300):
            for key in range(100):
                partitioner.route(f"key-{key}")
        for key in range(100):
            assert partitioner.is_head(f"key-{key}"), (
                f"key-{key} has frequency 1/100 > theta = {partitioner.theta} "
                f"but was not classified as head"
            )

    def test_explicit_theta_is_kept(self):
        partitioner = _make("W-C", num_workers=10, theta=0.01)
        partitioner.rescale(20)
        assert partitioner.theta == 0.01

    def test_dchoices_resolves_after_rescale(self):
        partitioner = _make("D-C", num_workers=6, warmup_messages=0)
        for _ in range(2_000):
            partitioner.route("hot")
        partitioner.rescale(24)
        for _ in range(2_000):
            partitioner.route("hot")
        solution = partitioner.current_solution()
        # The solver ran against the new topology: whatever it picked must
        # be feasible there.
        assert solution.use_w_choices or solution.num_choices <= 24

    def test_greedy_d_choices_lifted_on_grow(self):
        partitioner = _make("GREEDY-D", num_workers=2, num_choices=4)
        assert partitioner.num_choices == 2  # capped at n
        partitioner.rescale(10)
        assert partitioner.num_choices == 4  # requested value restored

    def test_fixed_d_choices_lifted_on_grow(self):
        partitioner = _make("FIXED-D", num_workers=3, num_choices=5)
        assert partitioner.num_choices == 3
        partitioner.rescale(10)
        assert partitioner.num_choices == 5
