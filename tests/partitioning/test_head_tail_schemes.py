"""Unit tests for the head/tail-split schemes: D-C, W-C, RR and FIXED-D."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.partitioning.d_choices import DChoices
from repro.partitioning.fixed_d import FixedDHead
from repro.partitioning.round_robin_head import RoundRobinHead
from repro.partitioning.w_choices import WChoices
from repro.sketches.misra_gries import MisraGries
from repro.workloads.zipf_stream import ZipfWorkload


def _route_all(scheme, keys):
    for key in keys:
        scheme.route(key)


class TestHeadTailCommon:
    @pytest.mark.parametrize("cls", [DChoices, WChoices, RoundRobinHead])
    def test_default_theta_is_paper_default(self, cls):
        scheme = cls(num_workers=20)
        assert scheme.theta == pytest.approx(1.0 / (5 * 20))

    @pytest.mark.parametrize("cls", [DChoices, WChoices, RoundRobinHead])
    def test_rejects_bad_theta(self, cls):
        with pytest.raises(ConfigurationError):
            cls(num_workers=10, theta=0.0)
        with pytest.raises(ConfigurationError):
            cls(num_workers=10, theta=1.5)

    @pytest.mark.parametrize("cls", [DChoices, WChoices, RoundRobinHead])
    def test_rejects_negative_warmup(self, cls):
        with pytest.raises(ConfigurationError):
            cls(num_workers=10, warmup_messages=-1)

    def test_warmup_disables_head_path(self):
        scheme = WChoices(num_workers=4, warmup_messages=1000)
        for _ in range(100):
            decision = scheme.route_with_decision("hot")
            assert decision.is_head is False

    def test_head_membership_tracks_sketch(self):
        scheme = WChoices(num_workers=4, warmup_messages=0)
        for _ in range(200):
            scheme.route("hot")
        assert scheme.is_head("hot")
        assert not scheme.is_head("cold")
        assert "hot" in scheme.current_head()

    def test_tail_keys_use_two_candidates(self):
        scheme = WChoices(num_workers=32, warmup_messages=0)
        # interleave one hot key with many cold keys
        for index in range(2000):
            scheme.route("hot")
            scheme.route(f"cold-{index}")
        cold_decision = scheme.route_with_decision("cold-1")
        assert cold_decision.is_head is False
        assert len(cold_decision.candidates) == 2

    def test_injected_sketch_is_used(self):
        sketch = MisraGries(capacity=64)
        scheme = WChoices(num_workers=8, sketch=sketch, warmup_messages=0)
        for _ in range(50):
            scheme.route("hot")
        assert sketch.total == 50

    def test_reset_restores_fresh_state(self):
        scheme = DChoices(num_workers=8, warmup_messages=0)
        for _ in range(500):
            scheme.route("hot")
        scheme.reset()
        assert scheme.messages_routed == 0
        assert scheme.sketch.total == 0
        assert scheme.current_num_choices() == 2


class TestWChoices:
    def test_hot_key_spread_over_all_workers(self):
        scheme = WChoices(num_workers=8, warmup_messages=0)
        workers = set()
        for _ in range(800):
            workers.add(scheme.route("hot"))
        assert workers == set(range(8))

    def test_balances_extreme_skew(self):
        workload = ZipfWorkload(2.0, 1000, 30_000, seed=3)
        scheme = WChoices(num_workers=20, warmup_messages=100)
        _route_all(scheme, workload)
        loads = scheme.local_loads
        normalized = [load / sum(loads) for load in loads]
        imbalance = max(normalized) - 1 / 20
        assert imbalance < 0.01


class TestRoundRobinHead:
    def test_head_cycles_through_workers(self):
        scheme = RoundRobinHead(num_workers=4, warmup_messages=0)
        destinations = [scheme.route("hot") for _ in range(8)]
        assert destinations[:4] == [0, 1, 2, 3]
        assert destinations[4:] == [0, 1, 2, 3]

    def test_reset_restarts_cycle(self):
        scheme = RoundRobinHead(num_workers=4, warmup_messages=0)
        scheme.route("hot")
        scheme.reset()
        assert scheme.route("hot") == 0

    def test_head_balanced_even_if_load_oblivious(self):
        workload = ZipfWorkload(2.0, 500, 20_000, seed=5)
        scheme = RoundRobinHead(num_workers=10, warmup_messages=100)
        _route_all(scheme, workload)
        loads = scheme.local_loads
        assert max(loads) / sum(loads) < 0.25


class TestFixedDHead:
    def test_rejects_small_d(self):
        with pytest.raises(ConfigurationError):
            FixedDHead(num_workers=8, num_choices=1)

    def test_caps_d_at_n(self):
        scheme = FixedDHead(num_workers=4, num_choices=10)
        assert scheme.num_choices == 4

    def test_hot_key_confined_to_d_workers(self):
        scheme = FixedDHead(num_workers=32, num_choices=3, warmup_messages=0)
        workers = {scheme.route("hot") for _ in range(500)}
        assert len(workers) <= 3

    def test_head_decision_flag(self):
        scheme = FixedDHead(num_workers=8, num_choices=4, warmup_messages=0)
        scheme.route("hot")
        decision = scheme.route_with_decision("hot")
        assert decision.is_head is True
        assert len(decision.candidates) == 4


class TestDChoices:
    def test_rejects_bad_epsilon_and_interval(self):
        with pytest.raises(ConfigurationError):
            DChoices(num_workers=8, epsilon=-1.0)
        with pytest.raises(ConfigurationError):
            DChoices(num_workers=8, recompute_interval=0)

    def test_d_grows_with_hot_key_dominance(self):
        scheme = DChoices(num_workers=20, warmup_messages=0)
        for _ in range(5000):
            scheme.route("hot")
        # a key carrying ~100% of the load needs (almost) all workers
        assert scheme.current_num_choices() >= 10

    def test_solution_cost_reported(self):
        scheme = DChoices(num_workers=20, warmup_messages=0)
        for _ in range(2000):
            scheme.route("hot")
        solution = scheme.current_solution()
        assert solution.cost == solution.num_choices * solution.head_cardinality

    def test_mild_skew_keeps_small_d(self):
        workload = ZipfWorkload(0.5, 1000, 20_000, seed=1)
        scheme = DChoices(num_workers=10, warmup_messages=100)
        _route_all(scheme, workload)
        assert scheme.current_num_choices() <= 4

    def test_balances_extreme_skew_better_than_pkg(self):
        from repro.partitioning.partial_key_grouping import PartialKeyGrouping

        workload = list(ZipfWorkload(2.0, 1000, 30_000, seed=9))
        dchoices = DChoices(num_workers=20, warmup_messages=100)
        pkg = PartialKeyGrouping(num_workers=20, seed=0)
        for key in workload:
            dchoices.route(key)
            pkg.route(key)
        assert max(dchoices.local_loads) < max(pkg.local_loads)

    def test_head_keys_marked_in_decisions(self):
        scheme = DChoices(num_workers=10, warmup_messages=0)
        for _ in range(1000):
            scheme.route("hot")
        assert scheme.route_with_decision("hot").is_head is True


class TestDChoicesSolverCache:
    """The cached solver solution must be refreshed whenever the state it
    was derived from is discarded — not only on the defaulted-theta rescale
    path that re-derives theta."""

    def _converged(self, scheme, messages=3000):
        for _ in range(messages):
            scheme.route("hot")
        return scheme.current_solution()

    def test_reset_discards_solution_and_resolves(self):
        scheme = DChoices(num_workers=20, warmup_messages=0)
        solved = self._converged(scheme)
        assert solved.head_cardinality >= 1

        scheme.reset()
        # Back to the constructor default, not the converged solution.
        assert scheme.current_solution().head_cardinality == 0
        assert scheme.current_num_choices() == 2
        assert scheme._never_solved is True

        # And the next head message triggers a fresh solve on fresh counts.
        resolved = self._converged(scheme)
        assert resolved.head_cardinality >= 1

    def test_explicit_theta_rescale_forces_resolve(self):
        # An explicit theta survives the rescale (no re-derivation), but
        # the cached solution was solved for the old n and must still be
        # thrown away.
        scheme = DChoices(num_workers=4, theta=0.02, warmup_messages=0)
        before = self._converged(scheme)
        assert before.head_cardinality >= 1

        scheme.rescale(30)
        assert scheme.theta == 0.02  # explicit theta kept
        assert scheme._never_solved is True  # solution invalidated anyway

        after = self._converged(scheme)
        # The solver ran against the new topology: feasible for n=30, and a
        # single ~100% key now warrants far more than the 4-worker answer.
        assert after.use_w_choices or after.num_choices <= 30
        assert scheme._never_solved is False

    def test_explicit_theta_shrink_rescale_forces_resolve(self):
        scheme = DChoices(num_workers=30, theta=0.02, warmup_messages=0)
        self._converged(scheme)
        scheme.rescale(4)
        assert scheme.theta == 0.02
        assert scheme._never_solved is True
        after = self._converged(scheme)
        assert after.use_w_choices or after.num_choices <= 4


class TestHeadCandidateCache:
    """The per-head-key candidate tuples are derived from the hash family
    and the solver's d; both invalidation edges must hold or routing reads
    stale workers."""

    def test_cache_fills_for_head_keys(self):
        scheme = DChoices(num_workers=30, warmup_messages=0)
        keys = list(ZipfWorkload(1.1, 50, 4000, seed=2))
        scheme.route_batch(keys)
        if not scheme.current_solution().use_w_choices:
            assert len(scheme._head_cand_cache) >= 1
            d = scheme._head_cand_cache_d
            for candidates in scheme._head_cand_cache.values():
                # deduplicated, order-preserving, within the worker range
                assert len(set(candidates)) == len(candidates) <= d
                assert all(0 <= worker < 30 for worker in candidates)

    def test_rescale_flushes_cached_tuples(self):
        scheme = FixedDHead(num_workers=16, num_choices=4, warmup_messages=0)
        for _ in range(500):
            scheme.route("hot")
        scheme.route_batch(["hot"] * 64)
        assert scheme._head_cand_cache
        scheme.rescale(9)
        assert not scheme._head_cand_cache  # old tuples point at old workers
        scheme.route_batch(["hot"] * 64)
        for candidates in scheme._head_cand_cache.values():
            assert all(0 <= worker < 9 for worker in candidates)

    def test_reset_flushes_cached_tuples(self):
        scheme = FixedDHead(num_workers=16, num_choices=4, warmup_messages=0)
        for _ in range(500):
            scheme.route("hot")
        scheme.route_batch(["hot"] * 64)
        assert scheme._head_cand_cache
        scheme.reset()
        assert not scheme._head_cand_cache

    def test_solver_d_change_flushes_lazily(self):
        scheme = DChoices(num_workers=8, warmup_messages=0)
        scheme._head_cand_cache_d = 3
        scheme._head_cand_cache["stale"] = (0, 1, 2)
        assert scheme._cached_head_candidates("fresh", 5) is not None
        assert "stale" not in scheme._head_cand_cache
        assert scheme._head_cand_cache_d == 5
