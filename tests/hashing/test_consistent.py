"""Unit tests for the consistent-hash ring."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError
from repro.hashing.consistent import ConsistentHashRing


class TestConsistentHashRing:
    def test_lookup_returns_member(self):
        ring = ConsistentHashRing(range(5), seed=1)
        assert ring.lookup("key") in set(range(5))

    def test_lookup_deterministic(self):
        ring = ConsistentHashRing(range(5), seed=1)
        assert ring.lookup("key") == ring.lookup("key")

    def test_empty_ring_rejects_lookup(self):
        ring = ConsistentHashRing()
        with pytest.raises(ConfigurationError):
            ring.lookup("key")

    def test_add_duplicate_worker_rejected(self):
        ring = ConsistentHashRing([0, 1])
        with pytest.raises(ConfigurationError):
            ring.add_worker(1)

    def test_remove_unknown_worker_rejected(self):
        ring = ConsistentHashRing([0, 1])
        with pytest.raises(ConfigurationError):
            ring.remove_worker(7)

    def test_remove_worker_reassigns_only_its_keys(self):
        ring = ConsistentHashRing(range(10), replicas=64, seed=3)
        keys = [f"key-{i}" for i in range(2000)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove_worker(4)
        after = {key: ring.lookup(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # only keys previously owned by worker 4 may move
        assert all(before[key] == 4 for key in moved)
        assert all(after[key] != 4 for key in keys)

    def test_addition_moves_bounded_fraction(self):
        ring = ConsistentHashRing(range(10), replicas=64, seed=3)
        keys = [f"key-{i}" for i in range(2000)]
        before = {key: ring.lookup(key) for key in keys}
        ring.add_worker(10)
        after = {key: ring.lookup(key) for key in keys}
        moved = sum(before[key] != after[key] for key in keys)
        # expected ~1/11 of the keys move; allow generous slack
        assert moved < 0.3 * len(keys)
        assert all(after[key] == 10 for key in keys if before[key] != after[key])

    def test_distribution_roughly_even(self):
        ring = ConsistentHashRing(range(8), replicas=128, seed=5)
        counts = Counter(ring.lookup(f"key-{i}") for i in range(8000))
        assert len(counts) == 8
        assert min(counts.values()) > 400

    def test_lookup_many_distinct(self):
        ring = ConsistentHashRing(range(6), seed=2)
        owners = ring.lookup_many("key", 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3

    def test_lookup_many_capped_by_membership(self):
        ring = ConsistentHashRing(range(2), seed=2)
        owners = ring.lookup_many("key", 10)
        assert set(owners) == {0, 1}

    def test_lookup_many_requires_positive_count(self):
        ring = ConsistentHashRing(range(2))
        with pytest.raises(ConfigurationError):
            ring.lookup_many("key", 0)

    def test_len_and_contains(self):
        ring = ConsistentHashRing(range(3))
        assert len(ring) == 3
        assert 2 in ring
        assert 5 not in ring

    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(range(2), replicas=0)
