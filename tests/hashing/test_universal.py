"""Unit tests for the universal hashing schemes."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.hashing.universal import MultiplyShiftHash, TabulationHash


class TestMultiplyShiftHash:
    def test_range(self):
        hasher = MultiplyShiftHash(num_buckets=13, seed=1)
        assert all(0 <= hasher(i) < 13 for i in range(1000))

    def test_deterministic(self):
        one = MultiplyShiftHash(num_buckets=64, seed=5)
        two = MultiplyShiftHash(num_buckets=64, seed=5)
        assert [one(i) for i in range(100)] == [two(i) for i in range(100)]

    def test_seed_changes_function(self):
        one = MultiplyShiftHash(num_buckets=1 << 16, seed=1)
        two = MultiplyShiftHash(num_buckets=1 << 16, seed=2)
        assert [one(i) for i in range(200)] != [two(i) for i in range(200)]

    def test_rejects_non_integers(self):
        hasher = MultiplyShiftHash(num_buckets=8)
        with pytest.raises(ConfigurationError):
            hasher("not an int")

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ConfigurationError):
            MultiplyShiftHash(num_buckets=0)

    def test_rough_uniformity(self):
        hasher = MultiplyShiftHash(num_buckets=10, seed=3)
        counts = [0] * 10
        for i in range(20_000):
            counts[hasher(i * 2654435761)] += 1
        assert min(counts) > 1000

    def test_single_bucket(self):
        hasher = MultiplyShiftHash(num_buckets=1, seed=0)
        assert {hasher(i) for i in range(50)} == {0}


class TestTabulationHash:
    def test_range(self):
        hasher = TabulationHash(num_buckets=17, seed=1)
        assert all(0 <= hasher(i) < 17 for i in range(1000))

    def test_deterministic(self):
        one = TabulationHash(num_buckets=32, seed=9)
        two = TabulationHash(num_buckets=32, seed=9)
        assert [one(i) for i in range(100)] == [two(i) for i in range(100)]

    def test_seed_changes_function(self):
        one = TabulationHash(num_buckets=1 << 20, seed=1)
        two = TabulationHash(num_buckets=1 << 20, seed=2)
        assert [one(i) for i in range(50)] != [two(i) for i in range(50)]

    def test_rejects_non_integers(self):
        hasher = TabulationHash(num_buckets=8)
        with pytest.raises(ConfigurationError):
            hasher(3.14)

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ConfigurationError):
            TabulationHash(num_buckets=-1)

    def test_rough_uniformity(self):
        hasher = TabulationHash(num_buckets=10, seed=3)
        counts = [0] * 10
        for i in range(20_000):
            counts[hasher(i)] += 1
        assert min(counts) > 1500
        assert max(counts) < 2500
