"""The vectorized hashing layer must be bit-exact with the scalar path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.hashing.hash_family import HashFamily, _key_to_int, stable_hash
from repro.hashing.vectorized import splitmix64_array


class TestSplitmixArray:
    def test_matches_scalar_mixer(self):
        # stable_hash(key, 0) == splitmix64(key ^ splitmix64(0)) for integer
        # keys below 2**64, so chaining the array mixer twice must reproduce
        # the scalar path bit for bit (including wrap-around cases).
        values = [0, 1, 2**63, 2**64 - 1, 0xDEADBEEF, 0x9E3779B97F4A7C15]
        seed_mix = int(splitmix64_array(np.array([0], dtype=np.uint64))[0])
        remixed = splitmix64_array(
            np.array([v ^ seed_mix for v in values], dtype=np.uint64)
        )
        assert [stable_hash(v, 0) for v in values] == remixed.tolist()


class TestCandidatesBatch:
    def test_matches_scalar_candidates(self):
        family = HashFamily(num_functions=8, num_buckets=37, seed=11)
        keys = ["apple", "banana", b"raw-bytes", 42, -17, 2**70 + 5, "apple", ""]
        batch = family.candidates_batch(keys, 8)
        assert batch.shape == (len(keys), 8)
        for row, key in zip(batch.tolist(), keys):
            assert tuple(row) == family.candidates(key, 8)

    def test_partial_d_is_a_prefix(self):
        family = HashFamily(num_functions=6, num_buckets=10, seed=3)
        keys = [f"k{i}" for i in range(50)]
        full = family.candidates_batch(keys, 6)
        two = family.candidates_batch(keys, 2)
        assert np.array_equal(full[:, :2], two)

    def test_rejects_bad_d(self):
        family = HashFamily(num_functions=2, num_buckets=10, seed=0)
        with pytest.raises(ConfigurationError):
            family.candidates_batch(["x"], 3)
        with pytest.raises(ConfigurationError):
            family.candidates_batch(["x"], 0)

    def test_empty_batch(self):
        family = HashFamily(num_functions=2, num_buckets=10, seed=0)
        assert family.candidates_batch([], 2).shape == (0, 2)


class TestInterningCache:
    def test_repeat_lookups_hit_the_cache(self):
        family = HashFamily(num_functions=4, num_buckets=20, seed=9)
        first = family.candidates("hot-key", 4)
        assert family.candidates("hot-key", 4) is first  # cached tuple
        assert family.candidates("hot-key", 2) == first[:2]

    def test_cache_eviction_keeps_answers_correct(self):
        family = HashFamily(num_functions=2, num_buckets=16, seed=1, cache_size=8)
        reference = HashFamily(num_functions=2, num_buckets=16, seed=1, cache_size=0)
        keys = [f"key-{i % 20}" for i in range(200)]
        for key in keys:
            assert family.candidates(key, 2) == reference.candidates(key, 2)
        # FIFO bound is respected
        assert len(family._candidate_cache) <= 8
        assert len(family._int_cache) <= 8

    def test_bool_keys_do_not_alias_int_keys(self):
        family = HashFamily(num_functions=2, num_buckets=1000, seed=5)
        # Prime the caches with the bools first, then the ints.
        bool_candidates = (family.candidates(True, 2), family.candidates(False, 2))
        int_candidates = (family.candidates(1, 2), family.candidates(0, 2))
        assert bool_candidates != int_candidates
        batch = family.candidates_batch([True, 1, False, 0], 2)
        assert tuple(batch[0].tolist()) == bool_candidates[0]
        assert tuple(batch[1].tolist()) == int_candidates[0]

    def test_cross_type_equal_keys_do_not_alias_through_the_cache(self):
        # -1 == -1.0 as dict keys, but the folds differ; a cached int entry
        # must never answer for the float (and vice versa), and cache state
        # must not change any answer.
        warm = HashFamily(num_functions=2, num_buckets=11, seed=42)
        cold = HashFamily(num_functions=2, num_buckets=11, seed=42)
        warm.candidates(-1, 2)  # prime the cache with the int
        assert warm.candidates(-1.0, 2) == cold.candidates(-1.0, 2)
        assert warm.candidates_batch([-1.0], 2).tolist()[0] == list(
            cold.candidates(-1.0, 2)
        )


class TestChunkedKeyFold:
    def test_distinct_for_prefix_pairs(self):
        assert _key_to_int(b"a") != _key_to_int(b"a\x00")
        assert _key_to_int("abcdefgh") != _key_to_int("abcdefghi")
        assert _key_to_int("") != _key_to_int("\x00")

    def test_short_strings_stay_distinct_from_raw_integers(self):
        # Without the offset basis, '' and 0 (and '\x01' and 1) would fold
        # to the same 64-bit word and collide under every hash function.
        assert _key_to_int("") != _key_to_int(0)
        assert _key_to_int(b"") != _key_to_int(0)
        assert _key_to_int("\x01") != _key_to_int(1)

    def test_long_keys_are_deterministic_and_spread(self):
        keys = [f"prefix-{i}-" + "x" * 100 for i in range(500)]
        values = {_key_to_int(key) for key in keys}
        assert len(values) == 500  # no collisions among close long keys
        # str keys fold through their utf-8 bytes
        assert _key_to_int("abcdefghij") == _key_to_int(b"abcdefghij")

    def test_int_and_str_keys_stay_distinct(self):
        assert stable_hash(42, 0) != stable_hash("42", 0)
        assert stable_hash(True, 0) != stable_hash(1, 0)
