"""Unit tests for the seeded hash family."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.hashing.hash_family import (
    HashFamily,
    candidate_union,
    collision_probability,
    expected_distinct,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("apple", 1) == stable_hash("apple", 1)

    def test_different_seeds_differ(self):
        values = {stable_hash("apple", seed) for seed in range(50)}
        assert len(values) == 50

    def test_different_keys_differ(self):
        values = {stable_hash(f"key-{i}", 0) for i in range(1000)}
        assert len(values) == 1000

    def test_integer_and_string_keys_supported(self):
        assert isinstance(stable_hash(42, 0), int)
        assert isinstance(stable_hash("42", 0), int)

    def test_int_and_equal_string_hash_differently(self):
        assert stable_hash(42, 0) != stable_hash("42", 0)

    def test_bool_distinct_from_int(self):
        assert stable_hash(True, 0) != stable_hash(1, 0)

    def test_bytes_keys_supported(self):
        assert stable_hash(b"abc", 3) == stable_hash(b"abc", 3)

    def test_output_is_64_bit(self):
        for i in range(100):
            assert 0 <= stable_hash(i, 7) < 2**64


class TestHashFamily:
    def test_rejects_non_positive_functions(self):
        with pytest.raises(ConfigurationError):
            HashFamily(num_functions=0, num_buckets=10)

    def test_rejects_non_positive_buckets(self):
        with pytest.raises(ConfigurationError):
            HashFamily(num_functions=2, num_buckets=0)

    def test_candidates_length_and_range(self):
        family = HashFamily(num_functions=5, num_buckets=7, seed=3)
        candidates = family.candidates("key")
        assert len(candidates) == 5
        assert all(0 <= c < 7 for c in candidates)

    def test_candidates_prefix_property(self):
        family = HashFamily(num_functions=5, num_buckets=100, seed=3)
        assert family.candidates("key", 2) == family.candidates("key", 5)[:2]

    def test_candidates_deterministic(self):
        one = HashFamily(num_functions=3, num_buckets=50, seed=9)
        two = HashFamily(num_functions=3, num_buckets=50, seed=9)
        assert one.candidates("abc") == two.candidates("abc")

    def test_different_seeds_give_different_candidates(self):
        one = HashFamily(num_functions=2, num_buckets=1000, seed=1)
        two = HashFamily(num_functions=2, num_buckets=1000, seed=2)
        differing = sum(
            one.candidates(f"k{i}") != two.candidates(f"k{i}") for i in range(100)
        )
        assert differing > 90

    def test_hash_index_out_of_range(self):
        family = HashFamily(num_functions=2, num_buckets=10)
        with pytest.raises(ConfigurationError):
            family.hash("x", 2)

    def test_candidates_d_out_of_range(self):
        family = HashFamily(num_functions=2, num_buckets=10)
        with pytest.raises(ConfigurationError):
            family.candidates("x", 3)
        with pytest.raises(ConfigurationError):
            family.candidates("x", 0)

    def test_distinct_candidates_removes_duplicates(self):
        family = HashFamily(num_functions=8, num_buckets=2, seed=0)
        distinct = family.distinct_candidates("x")
        assert len(distinct) == len(set(distinct))
        assert set(distinct) <= {0, 1}

    def test_with_buckets_preserves_seed(self):
        family = HashFamily(num_functions=2, num_buckets=10, seed=5)
        resized = family.with_buckets(20)
        assert resized.seed == 5
        assert resized.num_buckets == 20
        assert resized.num_functions == 2

    def test_with_functions_preserves_buckets(self):
        family = HashFamily(num_functions=2, num_buckets=10, seed=5)
        grown = family.with_functions(6)
        assert grown.num_functions == 6
        assert grown.num_buckets == 10
        # the shared prefix of candidates is identical
        assert grown.candidates("k", 2) == family.candidates("k", 2)

    def test_spread_is_roughly_uniform(self):
        family = HashFamily(num_functions=1, num_buckets=10, seed=11)
        counts = family.spread((f"key-{i}" for i in range(20_000)), d=1)
        assert sum(counts) == 20_000
        assert min(counts) > 1500
        assert max(counts) < 2500

    def test_single_bucket_everything_collides(self):
        family = HashFamily(num_functions=3, num_buckets=1)
        assert family.candidates("anything") == (0, 0, 0)


class TestExpectedDistinct:
    def test_zero_choices(self):
        assert expected_distinct(10, 0) == 0.0

    def test_one_choice(self):
        assert expected_distinct(10, 1) == pytest.approx(1.0)

    def test_monotone_in_d(self):
        values = [expected_distinct(50, d) for d in range(0, 200, 5)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_upper_bounded_by_n(self):
        assert expected_distinct(10, 10_000) <= 10.0

    def test_matches_empirical_hash_behaviour(self):
        n, d = 20, 8
        family = HashFamily(num_functions=d, num_buckets=n, seed=17)
        sizes = [len(set(family.candidates(f"key-{i}"))) for i in range(3000)]
        empirical = sum(sizes) / len(sizes)
        assert empirical == pytest.approx(expected_distinct(n, d), rel=0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            expected_distinct(0, 2)
        with pytest.raises(ConfigurationError):
            expected_distinct(10, -1)


class TestCollisionHelpers:
    def test_collision_probability_single_choice(self):
        assert collision_probability(10, 1) == 0.0

    def test_collision_probability_pair(self):
        assert collision_probability(10, 2) == pytest.approx(0.1)

    def test_collision_probability_invalid_n(self):
        with pytest.raises(ConfigurationError):
            collision_probability(0, 2)

    def test_candidate_union(self):
        family = HashFamily(num_functions=4, num_buckets=100, seed=0)
        union = candidate_union([(family, "a", 4), (family, "b", 4)])
        assert union == set(family.candidates("a")) | set(family.candidates("b"))
