"""Per-id candidate tables: the hash family's columnar fast path.

``id_candidate_rows`` must be a pure gather view of ``candidates_batch`` —
bit-identical for every dictionary state, growth pattern and requested d —
and the table lifecycle (lazy growth, wider-d rebuild, FIFO bounding,
rescale invalidation) must never leak stale buckets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import hash_family as hf
from repro.hashing.hash_family import HashFamily
from repro.workloads.columnar import KeyDictionary


def _intern(dictionary: KeyDictionary, keys) -> np.ndarray:
    return dictionary.intern_keys(keys)


class TestIdCandidateRows:
    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_matches_candidates_batch(self, d):
        family = HashFamily(num_functions=5, num_buckets=23, seed=11)
        dictionary = KeyDictionary()
        keys = [f"key-{i % 37}" for i in range(300)] + list(range(50))
        ids = _intern(dictionary, keys)
        rows = family.id_candidate_rows(ids, dictionary, d)
        expected = family.candidates_batch(keys, d)
        assert np.array_equal(rows, expected)

    def test_table_grows_with_the_dictionary(self):
        family = HashFamily(num_functions=2, num_buckets=17, seed=3)
        dictionary = KeyDictionary()
        first = _intern(dictionary, [f"a{i}" for i in range(10)])
        rows_before = family.id_candidate_rows(first, dictionary)
        # Intern more keys after the table was built: the table must extend.
        second = _intern(dictionary, [f"b{i}" for i in range(2_000)])
        rows_after = family.id_candidate_rows(second, dictionary)
        assert np.array_equal(
            rows_after, family.candidates_batch([f"b{i}" for i in range(2_000)])
        )
        # The earlier ids still gather the same buckets.
        assert np.array_equal(
            family.id_candidate_rows(first, dictionary), rows_before
        )

    def test_wider_d_rebuild_is_prefix_stable(self):
        family = HashFamily(num_functions=6, num_buckets=19, seed=7)
        dictionary = KeyDictionary()
        ids = _intern(dictionary, [f"k{i}" for i in range(100)])
        narrow = family.id_candidate_rows(ids, dictionary, 2)
        wide = family.id_candidate_rows(ids, dictionary, 6)
        assert np.array_equal(wide[:, :2], narrow)
        assert np.array_equal(
            wide, family.candidates_batch([f"k{i}" for i in range(100)], 6)
        )

    def test_scalar_and_column_views_agree(self):
        family = HashFamily(num_functions=2, num_buckets=13, seed=5)
        dictionary = KeyDictionary()
        keys = ["alpha", "beta", "gamma", 42, -1]
        ids = _intern(dictionary, keys)
        rows = family.id_candidate_rows(ids, dictionary)
        columns = family.id_candidate_columns(ids, dictionary)
        for position, (key, kid) in enumerate(zip(keys, ids.tolist())):
            assert family.candidates_for_id(kid, dictionary) == family.candidates(key)
            assert tuple(rows[position].tolist()) == family.candidates(key)
            assert (columns[0][position], columns[1][position]) == family.candidates(key)

    def test_tables_are_fifo_bounded_per_family(self):
        family = HashFamily(num_functions=2, num_buckets=11, seed=1)
        dictionaries = [KeyDictionary() for _ in range(hf._MAX_ID_TABLES + 2)]
        for dictionary in dictionaries:
            ids = _intern(dictionary, ["x", "y"])
            family.id_candidate_rows(ids, dictionary)
        assert len(family._id_tables) == hf._MAX_ID_TABLES
        # The oldest dictionaries were evicted; re-querying just rebuilds.
        evicted = dictionaries[0]
        assert evicted.token not in family._id_tables
        again = family.id_candidate_rows(
            _intern(evicted, ["x", "y"]), evicted
        )
        assert np.array_equal(again, family.candidates_batch(["x", "y"]))

    def test_dictionary_tokens_are_unique_across_instances(self):
        # id() reuse after garbage collection must not alias tables; the
        # token counter guarantees distinct keys for distinct dictionaries.
        tokens = {KeyDictionary().token for _ in range(100)}
        assert len(tokens) == 100


class TestRescaleInvalidation:
    def test_scheme_rebuild_drops_id_tables(self):
        """Rescaling recreates the scheme's hash family, so per-id tables
        keyed to the old bucket count can never serve the new topology."""
        from repro.partitioning.registry import create_partitioner
        from repro.workloads.columnar import ColumnarBatch

        dictionary = KeyDictionary()
        ids = _intern(dictionary, [f"k{i % 53}" for i in range(1_000)])

        routed = create_partitioner("PKG", num_workers=10, seed=2)
        mirror = create_partitioner("PKG", num_workers=10, seed=2)
        routed.route_batch_columnar(ColumnarBatch(ids, dictionary))
        mirror.route_batch(dictionary.decode(ids))

        routed.rescale(14)
        mirror.rescale(14)
        after = routed.route_batch_columnar(ColumnarBatch(ids, dictionary))
        expected = mirror.route_batch(dictionary.decode(ids))
        assert after == expected
        assert max(after) < 14
