"""Dry validation of the GitHub Actions workflows.

The container running the tier-1 suite has no GitHub runner (nor ``act``),
so this is the executable substitute: parse both workflow files, assert the
invariants docs/ci.md promises (job set, interpreter matrix, suite smoke,
bench guard wiring), and check that every repo path a job invokes actually
exists.  Editing a workflow out of sync with the docs/policy fails here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parents[2]
WORKFLOWS = REPO_ROOT / ".github" / "workflows"


def _load(name: str) -> dict:
    path = WORKFLOWS / name
    assert path.is_file(), f"missing workflow {path}"
    document = yaml.safe_load(path.read_text(encoding="utf-8"))
    assert isinstance(document, dict), f"{name} is not a mapping"
    return document


def _job_commands(job: dict) -> str:
    return "\n".join(
        step.get("run", "") for step in job.get("steps", []) if "run" in step
    )


@pytest.fixture(scope="module")
def ci() -> dict:
    return _load("ci.yml")


@pytest.fixture(scope="module")
def bench() -> dict:
    return _load("bench.yml")


class TestCiWorkflow:
    def test_triggers_on_push_and_pull_request(self, ci):
        # YAML 1.1 parses the bare key `on` as boolean True.
        triggers = ci.get("on", ci.get(True))
        assert "push" in triggers and "pull_request" in triggers

    def test_has_lint_tests_and_suite_smoke_jobs(self, ci):
        assert {
            "lint",
            "tests",
            "suite-smoke",
            "scenario-regression",
            "cluster-smoke",
            "chaos-smoke",
        } <= set(ci["jobs"])

    def test_lint_runs_ruff_over_all_source_trees(self, ci):
        commands = _job_commands(ci["jobs"]["lint"])
        assert "ruff check" in commands
        for tree in ("src", "tests", "benchmarks", "examples"):
            assert tree in commands

    def test_tests_matrix_covers_310_to_312(self, ci):
        matrix = ci["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
        assert [str(version) for version in matrix] == ["3.10", "3.11", "3.12"]

    def test_tests_install_editable_and_run_tier1(self, ci):
        commands = _job_commands(ci["jobs"]["tests"])
        assert "pip install -e .[test]" in commands
        assert "pytest -x -q" in commands
        assert "PYTHONPATH" not in commands  # the editable install suffices

    def test_suite_smoke_runs_tiny_scale_twice(self, ci):
        commands = _job_commands(ci["jobs"]["suite-smoke"])
        assert commands.count("suite run --scale tiny") >= 2
        # The warm run must fail on recomputed or failed cells.
        assert "computed|failed" in commands

    def test_suite_smoke_exercises_dataflow_experiment(self, ci):
        # The multi-stage topology runs in both execution modes: scalar
        # (batch-size 1) and batched.
        commands = _job_commands(ci["jobs"]["suite-smoke"])
        assert "run fig17 --scale tiny --batch-size 1" in commands
        assert "run fig17 --scale tiny --batch-size 1024" in commands

    def test_scenario_regression_job_runs_the_expected_suite(self, ci):
        # The catalog's expected: bounds are CI assertions — the job must
        # run the pytest suite that collects them plus the sweep smoke.
        commands = _job_commands(ci["jobs"]["scenario-regression"])
        assert "pytest -q tests/scenarios" in commands
        assert "run scenarios --scale tiny" in commands

    def test_scenario_regression_job_smokes_the_adaptive_scheme(self, ci):
        # AD must route a cataloged drift scenario end to end through the
        # CLI and stay within the catalog's expected bounds.
        commands = _job_commands(ci["jobs"]["scenario-regression"])
        assert "scenario run drift_mixture --scheme AD" in commands

    def test_suite_smoke_exercises_adaptive_experiment(self, ci):
        # The fig18 drift sweep runs AD against every static scheme at
        # tiny scale on each PR (the win claim is pinned in
        # tests/experiments/test_experiment_drivers.py).
        commands = _job_commands(ci["jobs"]["suite-smoke"])
        assert "run fig18 --scale tiny" in commands

    def test_cluster_smoke_runs_the_marked_e2e_tests(self, ci):
        # The cluster tests spawn real processes and are opt-in via the
        # `cluster` marker; the smoke job is where they must run.
        commands = _job_commands(ci["jobs"]["cluster-smoke"])
        assert "pytest -q -m cluster tests/runtime" in commands

    def test_cluster_smoke_guards_the_scaling_floor(self, ci):
        # The reduced bench must feed the single-file floor guard: 4-worker
        # PKG aggregate throughput >= 1.5x the 1-worker run.  The ratio is
        # measured on one runner, so the floor is hardware-independent.
        commands = _job_commands(ci["jobs"]["cluster-smoke"])
        assert "bench_cluster_runtime.py --quick" in commands
        assert "--bench-file bench-cluster-ci.json" in commands
        assert "--metric scaling_vs_1w" in commands
        assert "--schemes PKG@w4" in commands
        assert "--min-value 1.5" in commands

    def test_chaos_smoke_runs_the_fault_injection_matrix(self, ci):
        # The chaos tests inject deterministic crash/hang/degrade/salvage
        # faults into real processes and assert exact stream conservation;
        # they are opt-in via the `chaos` marker and must run on every PR.
        commands = _job_commands(ci["jobs"]["chaos-smoke"])
        assert "pytest -q -m chaos tests/runtime" in commands

    def test_chaos_smoke_validates_a_recovered_cli_run(self, ci):
        # The CLI smoke must inject a mid-run crash, validate against the
        # simulator, and tolerate exit 3 (degraded-but-complete) while
        # still failing on exit 1 (conservation/validation violation).
        commands = _job_commands(ci["jobs"]["chaos-smoke"])
        assert "cluster-run --inject crash@w1:2000" in commands
        assert "--validate" in commands
        assert "test $? -eq 3" in commands

    def test_pr_job_smokes_the_columnar_bench(self, ci):
        # A PR that knocks the columnar path off its id-array fast path
        # fails here, not a day later in the nightly guard.
        commands = _job_commands(ci["jobs"]["suite-smoke"])
        assert "--metric columnar_speedup --schemes PKG D-C" in commands


class TestBenchWorkflow:
    def test_nightly_and_on_demand(self, bench):
        triggers = bench.get("on", bench.get(True))
        assert "workflow_dispatch" in triggers
        assert "schedule" in triggers
        assert triggers["schedule"][0]["cron"]

    def test_runs_reduced_scale_bench(self, bench):
        commands = _job_commands(bench["jobs"]["routing-bench"])
        assert "run_routing_bench.py" in commands
        assert "--messages" in commands and "--rounds" in commands

    def test_uploads_artifact(self, bench):
        steps = bench["jobs"]["routing-bench"]["steps"]
        uploads = [
            step for step in steps
            if "upload-artifact" in str(step.get("uses", ""))
        ]
        assert uploads, "bench guard must upload the measured JSON"

    def test_guards_batched_pkg_at_30_percent(self, bench):
        commands = _job_commands(bench["jobs"]["routing-bench"])
        assert "check_bench_regression.py" in commands
        assert "--threshold 0.30" in commands
        assert "--schemes PKG" in commands
        # Must guard the hardware-independent ratio, not absolute msg/s
        # (the baseline is committed from different hardware).
        assert "--metric batch_speedup" in commands

    def test_guards_dataflow_throughput(self, bench):
        # The nightly guard tracks the multi-stage topology's batched
        # speedup alongside raw routing (DATAFLOW-* entries in the JSON).
        commands = _job_commands(bench["jobs"]["routing-bench"])
        assert "DATAFLOW-W-C" in commands

    def test_guards_columnar_speedup_separately(self, bench):
        # The columnar guard must be its own invocation with explicit
        # schemes: DATAFLOW-* entries carry no columnar metrics, and mixing
        # the metrics in one call would either fail spuriously or skip.
        commands = _job_commands(bench["jobs"]["routing-bench"])
        assert "--metric columnar_speedup" in commands
        columnar_call = commands[commands.index("--metric columnar_speedup"):]
        assert "--schemes PKG D-C" in columnar_call


class TestReferencedPathsExist:
    @pytest.mark.parametrize(
        "path",
        [
            "benchmarks/run_routing_bench.py",
            "benchmarks/bench_dataflow.py",
            "benchmarks/bench_cluster_runtime.py",
            "benchmarks/check_bench_regression.py",
            "BENCH_routing.json",
            "BENCH_cluster.json",
            "pyproject.toml",
            "docs/ci.md",
            "docs/fault_tolerance.md",
            "tests/scenarios",
            "tests/runtime",
        ],
    )
    def test_path_exists(self, path):
        assert (REPO_ROOT / path).exists(), f"workflow references missing {path}"
