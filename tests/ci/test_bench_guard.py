"""Unit tests for the bench-guard comparison logic."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def guard():
    """Import benchmarks/check_bench_regression.py as a module."""
    path = REPO_ROOT / "benchmarks" / "check_bench_regression.py"
    spec = importlib.util.spec_from_file_location("check_bench_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


BASELINE = {
    "PKG": {"batch_msgs_per_sec": 1_000_000, "scalar_msgs_per_sec": 100_000},
    "KG": {"batch_msgs_per_sec": 2_000_000},
    "_meta": {"python": "3.12"},
}


class TestCompare:
    def test_within_threshold_passes(self, guard):
        current = {"PKG": {"batch_msgs_per_sec": 750_000}}
        assert guard.compare(BASELINE, current, schemes=["PKG"]) == []

    def test_regression_fails(self, guard):
        current = {"PKG": {"batch_msgs_per_sec": 600_000}}
        failures = guard.compare(BASELINE, current, schemes=["PKG"])
        assert len(failures) == 1 and "PKG" in failures[0]

    def test_faster_never_fails(self, guard):
        current = {"PKG": {"batch_msgs_per_sec": 5_000_000}}
        assert guard.compare(BASELINE, current, schemes=["PKG"]) == []

    def test_explicitly_guarded_scheme_must_exist(self, guard):
        # A guard told to watch PKG that cannot find PKG has failed, not
        # passed vacuously.
        failures = guard.compare(BASELINE, {}, schemes=["PKG"])
        assert len(failures) == 1 and "PKG" in failures[0]
        failures = guard.compare({}, {"PKG": {"batch_msgs_per_sec": 1}}, schemes=["PKG"])
        assert len(failures) == 1

    def test_whole_baseline_mode_skips_missing_schemes(self, guard):
        # Without --schemes the two files may cover different sets; only
        # the intersection is compared.
        failures = guard.compare(BASELINE, {"PKG": {"batch_msgs_per_sec": 999_000}})
        assert failures == []  # KG missing from current: skipped, not failed

    def test_meta_entries_ignored_by_default(self, guard):
        current = {
            "PKG": {"batch_msgs_per_sec": 900_000},
            "KG": {"batch_msgs_per_sec": 1_900_000},
        }
        assert guard.compare(BASELINE, current) == []

    def test_custom_threshold(self, guard):
        current = {"PKG": {"batch_msgs_per_sec": 900_000}}
        assert guard.compare(BASELINE, current, threshold=0.05, schemes=["PKG"])

    def test_metric_absent_from_whole_baseline_fails_hard(self, guard):
        # A typo'd or not-yet-recorded metric must not pass vacuously; the
        # failure names what the baseline does carry.
        current = {"PKG": {"columnar_speedup": 10.0}}
        failures = guard.compare(BASELINE, current, metric="columnar_speedup")
        assert len(failures) == 1
        assert "columnar_speedup" in failures[0]
        assert "batch_msgs_per_sec" in failures[0]  # available metrics listed
        assert "scalar_msgs_per_sec" in failures[0]

    def test_metric_present_somewhere_keeps_per_scheme_skips(self, guard):
        # KG lacks scalar_msgs_per_sec but PKG has it: whole-baseline mode
        # still guards PKG and just notes KG.
        current = {
            "PKG": {"scalar_msgs_per_sec": 99_000},
            "KG": {"batch_msgs_per_sec": 1_900_000},
        }
        assert guard.compare(BASELINE, current, metric="scalar_msgs_per_sec") == []

    def test_absent_metric_exits_nonzero_via_main(self, guard, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(BASELINE))
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"PKG": {"batch_msgs_per_sec": 1}}))
        assert guard.main([
            "--baseline", str(baseline_path), "--current", str(current),
            "--metric", "no_such_metric",
        ]) == 1


CLUSTER_BENCH = {
    "PKG@w1": {"agg_msgs_per_sec": 40_000, "scaling_vs_1w": 1.0},
    "PKG@w4": {"agg_msgs_per_sec": 95_000, "scaling_vs_1w": 2.4},
    "_meta": {"cpu_count": 1},
}


class TestCheckFloor:
    def test_value_at_or_above_floor_passes(self, guard):
        assert guard.check_floor(
            CLUSTER_BENCH, 1.5, metric="scaling_vs_1w", schemes=["PKG@w4"]
        ) == []
        assert guard.check_floor(
            CLUSTER_BENCH, 2.4, metric="scaling_vs_1w", schemes=["PKG@w4"]
        ) == []

    def test_value_below_floor_fails(self, guard):
        failures = guard.check_floor(
            CLUSTER_BENCH, 3.0, metric="scaling_vs_1w", schemes=["PKG@w4"]
        )
        assert len(failures) == 1 and "PKG@w4" in failures[0]

    def test_missing_entry_or_metric_fails_hard(self, guard):
        # A floor guard never skips: watching a missing cell is a failure.
        assert guard.check_floor(CLUSTER_BENCH, 1.0, schemes=["KG@w4"])
        assert guard.check_floor(
            CLUSTER_BENCH, 1.0, metric="imbalance", schemes=["PKG@w4"]
        )

    def test_default_schemes_cover_every_entry_but_meta(self, guard):
        failures = guard.check_floor(CLUSTER_BENCH, 1.0, metric="scaling_vs_1w")
        assert failures == []  # _meta skipped, both worker cells pass

    def test_empty_file_fails(self, guard):
        assert guard.check_floor({"_meta": {}}, 1.0)

    def test_main_floor_mode_exit_codes(self, guard, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(CLUSTER_BENCH))
        assert guard.main([
            "--bench-file", str(bench), "--metric", "scaling_vs_1w",
            "--schemes", "PKG@w4", "--min-value", "1.5",
        ]) == 0
        assert guard.main([
            "--bench-file", str(bench), "--metric", "scaling_vs_1w",
            "--schemes", "PKG@w4", "--min-value", "3.0",
        ]) == 1

    def test_main_rejects_mixed_or_incomplete_modes(self, guard, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(CLUSTER_BENCH))
        with pytest.raises(SystemExit):
            guard.main(["--bench-file", str(bench)])  # no --min-value
        with pytest.raises(SystemExit):
            guard.main([
                "--bench-file", str(bench), "--min-value", "1.0",
                "--current", str(bench),
            ])
        with pytest.raises(SystemExit):
            guard.main(["--current", str(bench), "--min-value", "1.0"])

    def test_committed_cluster_bench_passes_the_ci_floor(self, guard):
        bench = json.loads(
            (REPO_ROOT / "BENCH_cluster.json").read_text(encoding="utf-8")
        )
        # The committed curve must clear the same floor CI enforces.
        assert guard.check_floor(
            bench, 1.5, metric="scaling_vs_1w", schemes=["PKG@w4"]
        ) == []


class TestMain:
    def test_exit_codes(self, guard, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(BASELINE))
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"PKG": {"batch_msgs_per_sec": 990_000}}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"PKG": {"batch_msgs_per_sec": 100_000}}))

        ok = guard.main([
            "--baseline", str(baseline_path), "--current", str(good),
            "--schemes", "PKG",
        ])
        assert ok == 0
        failed = guard.main([
            "--baseline", str(baseline_path), "--current", str(bad),
            "--schemes", "PKG",
        ])
        assert failed == 1

    def test_committed_baseline_is_valid_guard_input(self, guard):
        baseline = json.loads(
            (REPO_ROOT / "BENCH_routing.json").read_text(encoding="utf-8")
        )
        # Guarding the baseline against itself must always pass.
        assert guard.compare(baseline, baseline) == []
