"""Unit tests for the d-solver (Proposition 4.1 / FINDOPTIMALCHOICES)."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import theta_range
from repro.analysis.choices import (
    all_constraints_satisfied,
    expected_worker_set_size,
    find_optimal_choices,
    lower_bound_choices,
    minimal_feasible_choices_empirical,
    prefix_constraint_satisfied,
)
from repro.analysis.head import head_cardinality
from repro.analysis.zipf import ZipfDistribution
from repro.exceptions import AnalysisError


class TestExpectedWorkerSetSize:
    def test_matches_appendix_formula(self):
        n, d, h = 50, 4, 3
        expected = n - n * ((n - 1) / n) ** (h * d)
        assert expected_worker_set_size(n, d, h) == pytest.approx(expected)

    def test_zero_choices_gives_zero(self):
        assert expected_worker_set_size(10, 0, 1) == 0.0

    def test_monotone_in_d(self):
        sizes = [expected_worker_set_size(20, d, 1) for d in range(0, 40)]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_monotone_in_prefix_length(self):
        sizes = [expected_worker_set_size(20, 3, h) for h in range(0, 20)]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_bounded_by_n(self):
        assert expected_worker_set_size(10, 100, 100) <= 10.0

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            expected_worker_set_size(0, 1)
        with pytest.raises(AnalysisError):
            expected_worker_set_size(10, -1)
        with pytest.raises(AnalysisError):
            expected_worker_set_size(10, 1, -1)


class TestPrefixConstraint:
    def test_constraint_relaxes_with_d(self):
        head = [0.3, 0.1]
        tail = 0.6
        n = 20
        satisfied = [
            prefix_constraint_satisfied(head, tail, n, d, prefix_length=1)
            for d in range(2, n)
        ]
        # once satisfied, staying satisfied as d grows (monotone feasibility)
        first_true = satisfied.index(True)
        assert all(satisfied[first_true:])

    def test_prefix_length_validated(self):
        with pytest.raises(AnalysisError):
            prefix_constraint_satisfied([0.5], 0.5, 10, 2, prefix_length=2)
        with pytest.raises(AnalysisError):
            prefix_constraint_satisfied([0.5], 0.5, 10, 2, prefix_length=0)

    def test_all_constraints_iterates_every_prefix(self):
        head = [0.2, 0.15, 0.1]
        assert all_constraints_satisfied(head, 0.55, 50, 20) in (True, False)


class TestLowerBound:
    def test_formula(self):
        assert lower_bound_choices(0.35, 10) == 4

    def test_minimum_is_two(self):
        assert lower_bound_choices(0.01, 10) == 2

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            lower_bound_choices(1.5, 10)
        with pytest.raises(AnalysisError):
            lower_bound_choices(0.5, 0)


class TestFindOptimalChoices:
    def test_empty_head_gives_two(self):
        solution = find_optimal_choices([], 1.0, 50)
        assert solution.num_choices == 2
        assert not solution.use_w_choices
        assert solution.head_cardinality == 0

    def test_returns_at_least_lower_bound(self):
        solution = find_optimal_choices([0.4, 0.1], 0.5, 20)
        assert solution.num_choices >= lower_bound_choices(0.4, 20)

    def test_solution_satisfies_all_constraints(self):
        dist = ZipfDistribution(1.4, 10_000)
        n = 50
        theta = theta_range(n).default
        head_size = head_cardinality(dist, theta)
        head = dist.probabilities[:head_size]
        tail = dist.tail_mass(head_size)
        solution = find_optimal_choices(head, tail, n)
        if not solution.use_w_choices:
            assert all_constraints_satisfied(head, tail, n, solution.num_choices)

    def test_minimality_of_solution(self):
        dist = ZipfDistribution(1.2, 10_000)
        n = 50
        theta = theta_range(n).default
        head_size = head_cardinality(dist, theta)
        head = dist.probabilities[:head_size]
        tail = dist.tail_mass(head_size)
        solution = find_optimal_choices(head, tail, n)
        if not solution.use_w_choices and solution.num_choices > lower_bound_choices(head[0], n):
            assert not all_constraints_satisfied(
                head, tail, n, solution.num_choices - 1
            )

    def test_single_dominant_key_switches_to_wchoices(self):
        solution = find_optimal_choices([0.95], 0.05, 20)
        assert solution.use_w_choices
        assert solution.num_choices == 20

    def test_d_grows_with_skew(self):
        n = 100
        theta = theta_range(n).default
        d_values = []
        for skew in (0.8, 1.4, 2.0):
            dist = ZipfDistribution(skew, 10_000)
            head_size = head_cardinality(dist, theta)
            head = dist.probabilities[:head_size]
            tail = dist.tail_mass(head_size)
            d_values.append(find_optimal_choices(head, tail, n).num_choices)
        assert d_values[0] <= d_values[1] <= d_values[2]

    def test_d_less_than_n_at_scale(self):
        # Figure 4: at n = 100, D-C should not need every worker even at
        # z = 2.0.
        n = 100
        theta = theta_range(n).default
        dist = ZipfDistribution(2.0, 10_000)
        head_size = head_cardinality(dist, theta)
        head = dist.probabilities[:head_size]
        tail = dist.tail_mass(head_size)
        solution = find_optimal_choices(head, tail, n)
        assert solution.num_choices < n

    def test_unsorted_head_is_sorted_internally(self):
        unsorted = find_optimal_choices([0.1, 0.4], 0.5, 20)
        sorted_head = find_optimal_choices([0.4, 0.1], 0.5, 20)
        assert unsorted.num_choices == sorted_head.num_choices

    def test_cost_property(self):
        solution = find_optimal_choices([0.3, 0.2], 0.5, 30)
        assert solution.cost == solution.num_choices * 2

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            find_optimal_choices([0.5], 0.5, 0)
        with pytest.raises(AnalysisError):
            find_optimal_choices([0.5], -0.1, 10)
        with pytest.raises(AnalysisError):
            find_optimal_choices([-0.5], 0.5, 10)
        with pytest.raises(AnalysisError):
            find_optimal_choices([0.5], 0.5, 10, epsilon=-1.0)


class TestEmpiricalMinimum:
    def test_picks_smallest_feasible(self):
        data = [(2, 0.5), (3, 0.2), (4, 0.05), (5, 0.04)]
        assert minimal_feasible_choices_empirical(data, 0.1) == 4

    def test_none_when_nothing_feasible(self):
        assert minimal_feasible_choices_empirical([(2, 0.5)], 0.1) is None
