"""Unit tests for the memory-overhead models (Section IV-B)."""

from __future__ import annotations

import pytest

from repro.analysis.memory import (
    memory_dchoices,
    memory_model_for_zipf,
    memory_pkg,
    memory_shuffle,
    memory_wchoices,
    relative_overhead,
)
from repro.exceptions import AnalysisError


class TestMemoryFormulas:
    def test_pkg_counts_min_f_two(self):
        assert memory_pkg([10, 1, 3]) == 2 + 1 + 2

    def test_shuffle_counts_min_f_n(self):
        assert memory_shuffle([10, 1, 3], num_workers=4) == 4 + 1 + 3

    def test_dchoices_splits_head_and_tail(self):
        counts = [100, 50, 3, 1]
        value = memory_dchoices(counts, head_size=2, num_choices=5)
        assert value == 5 + 5 + 2 + 1

    def test_wchoices_uses_n_for_head(self):
        counts = [100, 50, 3, 1]
        assert memory_wchoices(counts, head_size=1, num_workers=10) == 10 + 2 + 2 + 1

    def test_dchoices_equals_pkg_when_head_empty(self):
        counts = [9, 4, 1]
        assert memory_dchoices(counts, head_size=0, num_choices=7) == memory_pkg(counts)

    def test_ordering_pkg_le_dc_le_wc_le_sg(self):
        counts = [1000, 500, 200, 50, 10, 3, 1, 1]
        n = 20
        pkg = memory_pkg(counts)
        dchoices = memory_dchoices(counts, head_size=3, num_choices=6)
        wchoices = memory_wchoices(counts, head_size=3, num_workers=n)
        shuffle = memory_shuffle(counts, n)
        assert pkg <= dchoices <= wchoices <= shuffle

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            memory_pkg([])
        with pytest.raises(AnalysisError):
            memory_pkg([-1])
        with pytest.raises(AnalysisError):
            memory_shuffle([1], 0)
        with pytest.raises(AnalysisError):
            memory_dchoices([1, 2], head_size=3, num_choices=2)
        with pytest.raises(AnalysisError):
            memory_dchoices([1, 2], head_size=1, num_choices=1)

    def test_relative_overhead(self):
        assert relative_overhead(130, 100) == pytest.approx(30.0)
        assert relative_overhead(80, 100) == pytest.approx(-20.0)

    def test_relative_overhead_rejects_zero_reference(self):
        with pytest.raises(AnalysisError):
            relative_overhead(10, 0)


class TestMemoryModelForZipf:
    def test_model_fields_consistent(self):
        model = memory_model_for_zipf(
            exponent=1.4, num_keys=10_000, num_messages=1_000_000, num_workers=50
        )
        assert model.num_workers == 50
        assert model.pkg <= model.dchoices <= model.wchoices <= model.shuffle
        assert model.head_size >= 0
        assert 2 <= model.num_choices <= 50

    def test_overheads_vs_pkg_bounded(self):
        # Figure 5: the worst case stays within a few tens of percent.
        for skew in (0.6, 1.0, 1.4, 2.0):
            model = memory_model_for_zipf(
                exponent=skew, num_keys=10_000, num_messages=10_000_000, num_workers=100
            )
            assert model.wchoices_vs_pkg >= model.dchoices_vs_pkg >= 0.0
            assert model.wchoices_vs_pkg < 50.0

    def test_overheads_vs_sg_strongly_negative(self):
        # Figure 6: both schemes save at least ~70% compared to SG.
        for skew in (0.6, 1.0, 1.4, 2.0):
            model = memory_model_for_zipf(
                exponent=skew, num_keys=10_000, num_messages=10_000_000, num_workers=50
            )
            assert model.dchoices_vs_shuffle < -60.0
            assert model.wchoices_vs_shuffle < -60.0

    def test_custom_theta_respected(self):
        model = memory_model_for_zipf(
            exponent=1.4,
            num_keys=1000,
            num_messages=100_000,
            num_workers=20,
            theta=0.05,
        )
        assert model.theta == 0.05

    def test_rejects_bad_message_count(self):
        with pytest.raises(AnalysisError):
            memory_model_for_zipf(1.0, 100, 0, 10)
