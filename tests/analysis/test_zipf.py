"""Unit tests for the finite Zipf distribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.zipf import ZipfDistribution, empirical_probabilities, zipf_probabilities
from repro.exceptions import ConfigurationError


class TestZipfDistribution:
    def test_probabilities_sum_to_one(self):
        dist = ZipfDistribution(exponent=1.3, num_keys=5000)
        assert float(dist.probabilities.sum()) == pytest.approx(1.0)

    def test_probabilities_non_increasing(self):
        dist = ZipfDistribution(exponent=0.9, num_keys=1000)
        probabilities = dist.probabilities
        assert np.all(np.diff(probabilities) <= 1e-15)

    def test_uniform_when_exponent_zero(self):
        dist = ZipfDistribution(exponent=0.0, num_keys=10)
        assert np.allclose(dist.probabilities, 0.1)

    def test_p1_grows_with_skew(self):
        p1_values = [
            ZipfDistribution(exponent=z, num_keys=1000).p1 for z in (0.5, 1.0, 1.5, 2.0)
        ]
        assert all(b > a for a, b in zip(p1_values, p1_values[1:]))

    def test_paper_claim_z2_p1_near_sixty_percent(self):
        # "under a Zipf distribution with exponent z = 2.0, the most frequent
        # key represents nearly 60% of the occurrences"
        dist = ZipfDistribution(exponent=2.0, num_keys=10_000)
        assert 0.55 < dist.p1 < 0.65

    def test_probability_by_rank(self):
        dist = ZipfDistribution(exponent=1.0, num_keys=100)
        assert dist.probability(1) == pytest.approx(dist.p1)
        assert dist.probability(2) == pytest.approx(dist.p1 / 2)

    def test_probability_rank_out_of_range(self):
        dist = ZipfDistribution(exponent=1.0, num_keys=100)
        with pytest.raises(ConfigurationError):
            dist.probability(0)
        with pytest.raises(ConfigurationError):
            dist.probability(101)

    def test_prefix_and_tail_mass_complementary(self):
        dist = ZipfDistribution(exponent=1.2, num_keys=500)
        for length in (0, 1, 10, 500):
            assert dist.prefix_mass(length) + dist.tail_mass(length) == pytest.approx(1.0)

    def test_prefix_mass_monotone(self):
        dist = ZipfDistribution(exponent=1.2, num_keys=500)
        masses = [dist.prefix_mass(length) for length in range(0, 501, 50)]
        assert all(b >= a for a, b in zip(masses, masses[1:]))

    def test_keys_above_threshold(self):
        dist = ZipfDistribution(exponent=1.0, num_keys=100)
        count = dist.keys_above(dist.probability(10))
        assert count == 10

    def test_keys_above_zero_threshold(self):
        dist = ZipfDistribution(exponent=1.0, num_keys=100)
        assert dist.keys_above(0.0) == 100

    def test_keys_above_large_threshold(self):
        dist = ZipfDistribution(exponent=1.0, num_keys=100)
        assert dist.keys_above(1.0) == 0

    def test_expected_counts(self):
        dist = ZipfDistribution(exponent=1.0, num_keys=10)
        counts = dist.expected_counts(1000)
        assert counts.sum() == pytest.approx(1000)
        assert counts[0] == pytest.approx(1000 * dist.p1)

    def test_expected_counts_rejects_negative(self):
        dist = ZipfDistribution(exponent=1.0, num_keys=10)
        with pytest.raises(ConfigurationError):
            dist.expected_counts(-1)

    def test_sample_ranks_within_support(self):
        dist = ZipfDistribution(exponent=1.5, num_keys=50)
        rng = np.random.default_rng(0)
        ranks = dist.sample_ranks(1000, rng)
        assert ranks.min() >= 1
        assert ranks.max() <= 50

    def test_sample_ranks_skewed_towards_low_ranks(self):
        dist = ZipfDistribution(exponent=2.0, num_keys=50)
        rng = np.random.default_rng(0)
        ranks = dist.sample_ranks(5000, rng)
        assert (ranks == 1).mean() == pytest.approx(dist.p1, abs=0.05)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(exponent=-0.1, num_keys=10)
        with pytest.raises(ConfigurationError):
            ZipfDistribution(exponent=1.0, num_keys=0)


class TestHelpers:
    def test_zipf_probabilities_cached_equivalence(self):
        direct = ZipfDistribution(1.1, 100).probabilities
        cached = zipf_probabilities(1.1, 100)
        assert np.allclose(direct, np.asarray(cached))

    def test_empirical_probabilities_sorted_and_normalised(self):
        probabilities = empirical_probabilities([5, 50, 10])
        assert probabilities[0] == pytest.approx(50 / 65)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_empirical_probabilities_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_probabilities([])

    def test_empirical_probabilities_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            empirical_probabilities([1, -2])

    def test_empirical_probabilities_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            empirical_probabilities([0, 0])
