"""Unit tests for the analytical queueing model, cross-checked against the
discrete-event cluster simulator."""

from __future__ import annotations

import pytest

from repro.analysis.queueing import (
    ClusterModel,
    bottleneck_queue_latency_ms,
    latency_ratio,
    max_load_share,
    sustainable_throughput,
    throughput_ratio,
)
from repro.cluster.runner import run_cluster_experiment
from repro.exceptions import AnalysisError
from repro.workloads.zipf_stream import ZipfWorkload


def _model(**overrides) -> ClusterModel:
    parameters = {
        "num_workers": 80,
        "service_time_ms": 1.0,
        "offered_load_per_second": 4000.0,
    }
    parameters.update(overrides)
    return ClusterModel(**parameters)


class TestClusterModel:
    def test_capacities(self):
        model = _model()
        assert model.worker_capacity_per_second == pytest.approx(1000.0)
        assert model.cluster_capacity_per_second == pytest.approx(80_000.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            _model(num_workers=0)
        with pytest.raises(AnalysisError):
            _model(service_time_ms=0.0)
        with pytest.raises(AnalysisError):
            _model(offered_load_per_second=0.0)


class TestMaxLoadShare:
    def test_balanced(self):
        assert max_load_share(0.0, 10) == pytest.approx(0.1)

    def test_with_imbalance(self):
        assert max_load_share(0.25, 10) == pytest.approx(0.35)

    def test_capped_at_one(self):
        assert max_load_share(0.99, 10) == 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            max_load_share(-0.1, 10)
        with pytest.raises(AnalysisError):
            max_load_share(0.1, 0)


class TestThroughputModel:
    def test_balanced_cluster_is_input_limited(self):
        assert sustainable_throughput(_model(), 0.0) == pytest.approx(4000.0)

    def test_imbalanced_cluster_is_bottleneck_limited(self):
        # share = 1/80 + 0.5 ~= 0.5125 -> bottleneck at ~1951 msg/s
        value = sustainable_throughput(_model(), 0.5)
        assert value == pytest.approx(1000.0 / (1 / 80 + 0.5), rel=1e-6)

    def test_monotone_in_imbalance(self):
        values = [sustainable_throughput(_model(), i / 10) for i in range(10)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_throughput_ratio(self):
        ratio = throughput_ratio(_model(), imbalance_a=0.0, imbalance_b=0.5)
        assert ratio > 1.5

    def test_predicts_simulator_kg_throughput(self):
        # Run KG on the simulator, then feed its measured imbalance to the
        # model and compare the predicted throughput with the measured one.
        workload = ZipfWorkload(exponent=2.0, num_keys=2000, num_messages=30_000, seed=3)
        result = run_cluster_experiment(
            workload, "KG", num_sources=16, num_workers=32, service_time_ms=1.0,
            seed=1,
        )
        model = ClusterModel(
            num_workers=32,
            service_time_ms=1.0,
            offered_load_per_second=16 / 0.012,  # default source overhead
        )
        predicted = sustainable_throughput(model, result.imbalance)
        assert result.throughput_per_second == pytest.approx(predicted, rel=0.25)


class TestLatencyModel:
    def test_unsaturated_latency_is_service_time(self):
        assert bottleneck_queue_latency_ms(_model(), 0.0, total_in_flight=1000) == 1.0

    def test_saturated_latency_scales_with_window(self):
        small = bottleneck_queue_latency_ms(_model(), 0.5, total_in_flight=1000)
        large = bottleneck_queue_latency_ms(_model(), 0.5, total_in_flight=5000)
        assert large > small > 1.0

    def test_latency_ratio(self):
        ratio = latency_ratio(_model(), 0.0, 0.5, total_in_flight=4800)
        assert ratio < 0.01

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bottleneck_queue_latency_ms(_model(), 0.0, total_in_flight=0)

    def test_bounds_simulator_kg_latency(self):
        workload = ZipfWorkload(exponent=2.0, num_keys=2000, num_messages=30_000, seed=3)
        result = run_cluster_experiment(
            workload, "KG", num_sources=16, num_workers=32, service_time_ms=1.0,
            seed=1, max_pending_per_source=100,
        )
        model = ClusterModel(
            num_workers=32, service_time_ms=1.0, offered_load_per_second=16 / 0.012
        )
        predicted = bottleneck_queue_latency_ms(
            model, result.imbalance, total_in_flight=16 * 100
        )
        # the model is an upper bound on the bottleneck's average latency,
        # and both sides must agree that heavy queueing is happening
        assert result.latency.max_average <= predicted
        assert result.latency.max_average > 20 * model.service_time_ms
