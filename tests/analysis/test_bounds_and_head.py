"""Unit tests for the PKG bounds, threshold range and head helpers."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    max_workers_for_pkg,
    pkg_breaks_down,
    pkg_imbalance_lower_bound,
    pkg_safe_threshold,
    theta_range,
)
from repro.analysis.head import (
    head_cardinality,
    head_keys,
    head_mass,
    head_probabilities,
    select_threshold,
    uniform_head_upper_bound,
)
from repro.analysis.zipf import ZipfDistribution
from repro.exceptions import AnalysisError


class TestThetaRange:
    def test_bounds_formula(self):
        bounds = theta_range(50)
        assert bounds.lower == pytest.approx(1 / 250)
        assert bounds.upper == pytest.approx(2 / 50)
        assert bounds.default == bounds.lower

    def test_membership(self):
        bounds = theta_range(10)
        assert 1 / 50 in bounds
        assert 1 / 5 in bounds
        assert 0.5 not in bounds
        assert "not-a-number" not in bounds

    def test_clamp(self):
        bounds = theta_range(10)
        assert bounds.clamp(1.0) == bounds.upper
        assert bounds.clamp(0.0) == bounds.lower
        assert bounds.clamp(0.05) == 0.05

    def test_rejects_bad_worker_count(self):
        with pytest.raises(AnalysisError):
            theta_range(0)

    def test_safe_threshold_matches_lower(self):
        assert pkg_safe_threshold(20) == theta_range(20).lower


class TestPkgBounds:
    def test_breaks_down_condition(self):
        assert pkg_breaks_down(p1=0.5, num_workers=10)
        assert not pkg_breaks_down(p1=0.1, num_workers=10)

    def test_breaks_down_boundary(self):
        assert not pkg_breaks_down(p1=0.2, num_workers=10)

    def test_rejects_bad_p1(self):
        with pytest.raises(AnalysisError):
            pkg_breaks_down(p1=1.5, num_workers=10)

    def test_imbalance_lower_bound_zero_when_fine(self):
        assert pkg_imbalance_lower_bound(0.1, 10, 1_000_000) == 0.0

    def test_imbalance_lower_bound_grows_with_m(self):
        small = pkg_imbalance_lower_bound(0.6, 10, 1000)
        large = pkg_imbalance_lower_bound(0.6, 10, 100_000)
        assert large > small > 0.0

    def test_imbalance_lower_bound_formula(self):
        bound = pkg_imbalance_lower_bound(0.5, 10, 1000)
        assert bound == pytest.approx((0.25 - 0.1) * 1000)

    def test_imbalance_lower_bound_rejects_negative_m(self):
        with pytest.raises(AnalysisError):
            pkg_imbalance_lower_bound(0.5, 10, -1)

    def test_max_workers_for_pkg_paper_example(self):
        # z = 2.0 gives p1 close to 0.6 and the paper says PKG cannot go
        # beyond 3 workers.
        p1 = ZipfDistribution(2.0, 10_000).p1
        assert max_workers_for_pkg(p1) == 3

    def test_max_workers_for_pkg_rejects_zero(self):
        with pytest.raises(AnalysisError):
            max_workers_for_pkg(0.0)


class TestHeadHelpers:
    def test_select_threshold_default(self):
        assert select_threshold(50) == pytest.approx(1 / 250)

    def test_select_threshold_scaled(self):
        assert select_threshold(50, fraction_of_default=2.0) == pytest.approx(2 / 250)

    def test_select_threshold_rejects_bad_fraction(self):
        with pytest.raises(AnalysisError):
            select_threshold(50, fraction_of_default=0.0)

    def test_head_cardinality_monotone_in_theta(self):
        dist = ZipfDistribution(1.2, 10_000)
        low = head_cardinality(dist, 1 / 500)
        high = head_cardinality(dist, 2 / 50)
        assert low >= high

    def test_head_cardinality_rejects_bad_theta(self):
        dist = ZipfDistribution(1.2, 100)
        with pytest.raises(AnalysisError):
            head_cardinality(dist, 0.0)

    def test_head_mass_between_zero_and_one(self):
        dist = ZipfDistribution(1.6, 1000)
        mass = head_mass(dist, 1 / 250)
        assert 0.0 <= mass <= 1.0

    def test_head_probabilities_length(self):
        dist = ZipfDistribution(1.6, 1000)
        theta = 1 / 100
        assert len(head_probabilities(dist, theta)) == head_cardinality(dist, theta)

    def test_head_keys_from_mapping(self):
        counts = {"hot": 60, "warm": 25, "cold": 15}
        assert head_keys(counts, theta=0.2) == ["hot", "warm"]

    def test_head_keys_from_sequence(self):
        assert head_keys([60, 25, 15], theta=0.5) == [0]

    def test_head_keys_with_explicit_total(self):
        counts = {"hot": 60}
        assert head_keys(counts, theta=0.5, total=200) == []

    def test_head_keys_empty_total(self):
        assert head_keys({}, theta=0.5) == []

    def test_head_keys_rejects_bad_theta(self):
        with pytest.raises(AnalysisError):
            head_keys({"a": 1}, theta=-0.1)

    def test_uniform_upper_bound_is_5n_for_default(self):
        assert uniform_head_upper_bound(20) == 100

    def test_uniform_upper_bound_custom_theta(self):
        assert uniform_head_upper_bound(20, theta=0.1) == 10

    def test_uniform_upper_bound_rejects_bad_theta(self):
        with pytest.raises(AnalysisError):
            uniform_head_upper_bound(20, theta=0.0)
