"""Integration tests: whole pipelines exercising several modules together.

These are the checks that tie the library to the paper's headline claims:
PKG stops balancing at scale under skew, D-Choices / W-Choices do not, their
memory overhead stays close to PKG's, and the cluster-level effect is higher
throughput and lower latency.
"""

from __future__ import annotations

import pytest

from repro import (
    DChoices,
    PartialKeyGrouping,
    SpaceSaving,
    WikipediaLikeWorkload,
    ZipfWorkload,
    run_cluster_experiment,
    run_simulation,
)
from repro.analysis.bounds import pkg_breaks_down, theta_range
from repro.analysis.choices import find_optimal_choices
from repro.analysis.head import head_cardinality
from repro.analysis.zipf import ZipfDistribution


class TestHeadlineClaimImbalance:
    """Figure 1 / Figure 10: two choices are not enough at scale."""

    @pytest.fixture(scope="class")
    def at_scale(self):
        results = {}
        for scheme in ("PKG", "D-C", "W-C"):
            workload = ZipfWorkload(exponent=1.6, num_keys=5000, num_messages=150_000, seed=11)
            results[scheme] = run_simulation(
                workload, scheme=scheme, num_workers=60, num_sources=5, seed=2
            )
        return results

    def test_pkg_breaks_down_at_scale(self, at_scale):
        # p1 at z=1.6 is ~0.28 which exceeds 2/60, so PKG must show imbalance
        p1 = ZipfDistribution(1.6, 5000).p1
        assert pkg_breaks_down(p1, 60)
        assert at_scale["PKG"].final_imbalance > 0.01

    def test_dchoices_and_wchoices_balance_at_scale(self, at_scale):
        assert at_scale["D-C"].final_imbalance < 0.01
        assert at_scale["W-C"].final_imbalance < 0.01

    def test_improvement_is_order_of_magnitude(self, at_scale):
        assert at_scale["PKG"].final_imbalance > 5 * at_scale["D-C"].final_imbalance

    def test_memory_overhead_moderate(self, at_scale):
        # D-C pays some replication for the head, but nowhere near n per key.
        pkg_memory = at_scale["PKG"].memory_entries
        dchoices_memory = at_scale["D-C"].memory_entries
        assert dchoices_memory < 2.0 * pkg_memory


class TestSmallScaleEquivalence:
    """At small scale (n=5) every scheme balances fine (Figure 11 left)."""

    def test_all_schemes_low_imbalance(self):
        for scheme in ("PKG", "D-C", "W-C"):
            workload = WikipediaLikeWorkload(num_messages=60_000, num_body_keys=10_000, seed=3)
            result = run_simulation(workload, scheme=scheme, num_workers=5, seed=1)
            assert result.final_imbalance < 0.02


class TestSketchDrivesPartitioner:
    """The D-Choices pipeline: sketch -> head -> solver -> routing."""

    def test_online_d_close_to_analytical_d(self):
        exponent, num_keys, num_workers = 1.6, 5000, 50
        workload = ZipfWorkload(exponent, num_keys, 100_000, seed=13)
        scheme = DChoices(num_workers=num_workers, seed=5)
        for key in workload:
            scheme.route(key)

        distribution = ZipfDistribution(exponent, num_keys)
        theta = theta_range(num_workers).default
        head_size = head_cardinality(distribution, theta)
        analytical = find_optimal_choices(
            distribution.probabilities[:head_size],
            distribution.tail_mass(head_size),
            num_workers,
        )
        online = scheme.current_num_choices()
        assert online >= 2
        # the sketch-driven d is within a factor of two of the exact-
        # distribution d (it sees estimated, noisier frequencies)
        assert online <= 2 * max(2, analytical.num_choices)
        assert online >= analytical.num_choices // 2

    def test_space_saving_head_matches_true_head(self):
        workload = list(ZipfWorkload(1.8, 2000, 50_000, seed=17))
        theta = 0.01
        sketch = SpaceSaving.for_threshold(theta, slack=2.0)
        sketch.add_all(workload)
        from collections import Counter

        exact = Counter(workload)
        true_head = {
            key for key, count in exact.items() if count >= theta * len(workload)
        }
        assert true_head <= set(sketch.heavy_hitters(theta))


class TestClusterEndToEnd:
    """Figures 13/14 on a reduced cluster: ordering of throughput/latency."""

    @pytest.fixture(scope="class")
    def cluster_results(self):
        results = {}
        for scheme in ("KG", "PKG", "D-C", "SG"):
            workload = ZipfWorkload(exponent=2.0, num_keys=2000, num_messages=30_000, seed=19)
            results[scheme] = run_cluster_experiment(
                workload,
                scheme,
                num_sources=16,
                num_workers=32,
                service_time_ms=1.0,
                seed=3,
            )
        return results

    def test_throughput_ordering(self, cluster_results):
        assert (
            cluster_results["KG"].throughput_per_second
            <= cluster_results["SG"].throughput_per_second
        )
        assert (
            cluster_results["D-C"].throughput_per_second
            >= 0.8 * cluster_results["SG"].throughput_per_second
        )

    def test_latency_ordering(self, cluster_results):
        assert (
            cluster_results["D-C"].latency.p99
            <= cluster_results["KG"].latency.p99 + 1e-9
        )
        assert (
            cluster_results["SG"].latency.p99
            <= cluster_results["KG"].latency.p99 + 1e-9
        )

    def test_kg_utilization_concentrated(self, cluster_results):
        utilization = cluster_results["KG"].worker_utilization
        # under key grouping one worker does far more work than the median
        assert max(utilization) > 3 * sorted(utilization)[len(utilization) // 2]


class TestPartialKeyGroupingRegression:
    """PKG behaves exactly as the ICDE 2015 baseline it reimplements."""

    def test_two_workers_per_key_even_across_sources(self):
        workload = list(ZipfWorkload(1.2, 200, 20_000, seed=23))
        sources = [PartialKeyGrouping(num_workers=20, seed=9) for _ in range(4)]
        destinations: dict[object, set[int]] = {}
        for index, key in enumerate(workload):
            worker = sources[index % 4].route(key)
            destinations.setdefault(key, set()).add(worker)
        assert all(len(workers) <= 2 for workers in destinations.values())

    def test_balances_mild_skew_at_small_scale(self):
        workload = ZipfWorkload(0.8, 2000, 60_000, seed=29)
        result = run_simulation(workload, scheme="PKG", num_workers=5, seed=1)
        assert result.final_imbalance < 0.01
