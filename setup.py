"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
only so the package can be installed in editable mode on machines without the
``wheel`` package (offline environments), where pip falls back to the legacy
``setup.py develop`` code path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
