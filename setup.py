"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml`` (PEP 621,
src layout).  On machines with network access a plain editable install
works::

    pip install -e .          # or: pip install -e .[test]

This file exists only for offline environments without the ``wheel``
package, where the PEP 660 editable build cannot run; there the legacy
develop path still installs the package and the ``repro-slb`` console
script::

    python setup.py develop
"""

from setuptools import setup

setup()
