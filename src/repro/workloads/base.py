"""Workload interface.

A workload is an iterable of keys (optionally full :class:`Message` tuples)
with known summary statistics.  Workloads are *generators*: iterating twice
yields the same stream only if the workload was constructed with a fixed
seed, which all built-in workloads are.
"""

from __future__ import annotations

import abc
import hashlib
from collections import Counter
from typing import Iterable, Iterator

from repro.types import DatasetStats, Key, Message

#: Seeds are 63-bit so they stay positive through every consumer
#: (``numpy.random.default_rng``, ``random.Random``, JSON round-trips).
_SEED_MASK = (1 << 63) - 1

#: Unit separator: joins multi-part seed material without ambiguity
#: (``("ab", "c")`` and ``("a", "bc")`` must derive different seeds).
_SEED_SEPARATOR = "\x1f"


def derive_seed(*parts: int | str) -> int:
    """Derive a stable 63-bit seed from strings and/or integers.

    The contract (shared by every workload and the scenario catalog):

    * a single ``int`` part normalises to ``abs(value) & (2**63 - 1)`` —
      the identity for the small non-negative seeds used everywhere, so
      adopting this helper never changes an existing stream or experiment
      fingerprint;
    * anything else is joined with a unit separator and SHA-256 hashed;
      the first 8 bytes (big-endian, masked to 63 bits) are the seed.
      The result is platform-independent and stable across releases —
      regression-pinned in ``tests/workloads/test_seed_derivation.py``.

    Multi-part derivation gives every component of a composite generator
    its own decorrelated stream: ``derive_seed(scenario, component, seed)``
    changes completely when any part changes.

    Examples
    --------
    >>> derive_seed(7)
    7
    >>> derive_seed("flash_crowd", "truth", 42) == derive_seed("flash_crowd", "truth", 42)
    True
    """
    if not parts:
        raise ValueError("derive_seed requires at least one part")
    if len(parts) == 1 and isinstance(parts[0], int):
        return abs(parts[0]) & _SEED_MASK
    material = _SEED_SEPARATOR.join(str(part) for part in parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


class Workload(abc.ABC):
    """Abstract stream of keyed messages.

    Subclasses implement :meth:`keys`, yielding keys in stream order, and
    :meth:`stats`, describing the workload as a Table I row.
    """

    #: Symbol used in the paper's tables (WP, TW, CT, ZF).
    symbol: str = "?"

    @abc.abstractmethod
    def keys(self) -> Iterator[Key]:
        """Yield the key of every message, in stream order."""

    @abc.abstractmethod
    def stats(self) -> DatasetStats:
        """Summary statistics (may be exact or nominal, see subclasses)."""

    def messages(self) -> Iterator[Message]:
        """Yield full messages with consecutive integer timestamps."""
        for timestamp, key in enumerate(self.keys()):
            yield Message(timestamp=float(timestamp), key=key)

    def iter_batches(self, batch_size: int = 8192) -> Iterator[list[Key]]:
        """Yield the stream as chunked lists, in order.

        Feeds the batched routing fast path (``Partitioner.route_batch`` /
        the simulation engine) without per-key generator overhead.  The
        concatenation of all chunks equals :meth:`keys` exactly; only the
        chunk boundaries are an implementation detail.  Subclasses backed by
        array generation override this to skip the per-key yield entirely.
        """
        batch: list[Key] = []
        append = batch.append
        for key in self.keys():
            append(key)
            if len(batch) >= batch_size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def iter_batches_columnar(
        self, batch_size: int = 8192, dictionary: "KeyDictionary | None" = None
    ) -> "Iterator[ColumnarBatch]":
        """Yield the stream as :class:`~repro.workloads.columnar.ColumnarBatch`.

        Every distinct key is interned exactly once into ``dictionary`` (a
        fresh one per call when omitted); decoding the concatenated batches
        reproduces :meth:`keys` exactly, and id numbering is independent of
        ``batch_size``.  The default wraps :meth:`iter_batches`; array-backed
        workloads override it to intern whole draw chunks vectorized.
        """
        from repro.workloads.columnar import ColumnarBatch, KeyDictionary

        dictionary = dictionary if dictionary is not None else KeyDictionary()
        index = 0
        for chunk in self.iter_batches(batch_size):
            yield ColumnarBatch(dictionary.intern_keys(chunk), dictionary, index)
            index += len(chunk)

    def __iter__(self) -> Iterator[Key]:
        return self.keys()

    def measured_stats(self, name: str | None = None) -> DatasetStats:
        """Compute exact statistics by consuming the whole stream.

        More expensive than :meth:`stats` (which may return nominal values),
        but used by Table I to report what the generated streams actually
        contain.
        """
        counts: Counter[Key] = Counter()
        total = 0
        for key in self.keys():
            counts[key] += 1
            total += 1
        most_common = counts.most_common(1)
        p1 = most_common[0][1] / total if total else 0.0
        nominal = self.stats()
        return DatasetStats(
            name=name or nominal.name,
            symbol=nominal.symbol,
            messages=total,
            keys=len(counts),
            p1=p1,
            description=nominal.description,
        )

    def key_frequencies(self) -> Counter:
        """Exact key counts of the whole stream (consumes the stream)."""
        counts: Counter[Key] = Counter()
        for key in self.keys():
            counts[key] += 1
        return counts


def materialize(workload: Workload | Iterable[Key], limit: int | None = None) -> list[Key]:
    """Collect (up to ``limit``) keys of a workload into a list.

    Convenience for tests and small experiments; large sweeps should iterate
    lazily instead.
    """
    result: list[Key] = []
    for index, key in enumerate(workload):
        if limit is not None and index >= limit:
            break
        result.append(key)
    return result
