"""Dataset catalog (Table I).

Maps the dataset symbols used throughout the paper (WP, TW, CT, ZF) to the
workload generators of this reproduction and records both the statistics
published in Table I and the statistics of our synthetic stand-ins.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.exceptions import WorkloadError
from repro.types import DatasetStats
from repro.workloads.base import Workload
from repro.workloads.synthetic import (
    CashtagLikeWorkload,
    TwitterLikeWorkload,
    WikipediaLikeWorkload,
)
from repro.workloads.zipf_stream import ZipfWorkload


@dataclass(frozen=True, slots=True)
class DatasetEntry:
    """One row of the catalog: published stats + a factory for our stand-in."""

    symbol: str
    name: str
    #: Statistics as published in Table I of the paper.
    published: DatasetStats
    #: Factory building the synthetic stand-in at its default (scaled) size.
    factory: Callable[..., Workload]
    #: Why the substitution preserves the behaviour the experiments measure.
    substitution_note: str


DATASETS: dict[str, DatasetEntry] = {
    "WP": DatasetEntry(
        symbol="WP",
        name="Wikipedia",
        published=DatasetStats(
            name="Wikipedia",
            symbol="WP",
            messages=22_000_000,
            keys=2_900_000,
            p1=0.0932,
            description="Page-visit log of one day of January 2008.",
        ),
        factory=WikipediaLikeWorkload,
        substitution_note=(
            "Synthetic page-visit stream with the published p1 (9.32%) and a "
            "Zipf body; scaled to 2M messages / 1e5 keys by default."
        ),
    ),
    "TW": DatasetEntry(
        symbol="TW",
        name="Twitter",
        published=DatasetStats(
            name="Twitter",
            symbol="TW",
            messages=1_200_000_000,
            keys=31_000_000,
            p1=0.0267,
            description="Words of tweets crawled during July 2012.",
        ),
        factory=TwitterLikeWorkload,
        substitution_note=(
            "Synthetic word stream with the published p1 (2.67%); scaled to "
            "2M messages / 2e5 keys by default."
        ),
    ),
    "CT": DatasetEntry(
        symbol="CT",
        name="Cashtags",
        published=DatasetStats(
            name="Cashtags",
            symbol="CT",
            messages=690_000,
            keys=2_900,
            p1=0.0329,
            description="Cashtags of tweets crawled in November 2013.",
        ),
        factory=CashtagLikeWorkload,
        substitution_note=(
            "Drifting Zipf stream over the same key-space size with hourly "
            "full head rotation, reproducing the trace's concept drift."
        ),
    ),
    "ZF": DatasetEntry(
        symbol="ZF",
        name="Zipf",
        published=DatasetStats(
            name="Zipf",
            symbol="ZF",
            messages=10_000_000,
            keys=10_000,
            p1=float("nan"),
            description="Synthetic Zipf streams, z in {0.1..2.0}.",
        ),
        factory=ZipfWorkload,
        substitution_note="Generated exactly as in the paper (no substitution).",
    ),
}


def dataset_stats(symbol: str) -> DatasetStats:
    """Published Table I statistics for ``symbol``."""
    entry = DATASETS.get(symbol.upper())
    if entry is None:
        raise WorkloadError(
            f"unknown dataset symbol {symbol!r}; known: {sorted(DATASETS)}"
        )
    return entry.published


def load_dataset(symbol: str, **kwargs) -> Workload:
    """Instantiate the stand-in workload for ``symbol``.

    Keyword arguments are forwarded to the generator (e.g. ``num_messages``,
    ``seed``; ``exponent``/``num_keys`` for ZF).  Unknown symbols *and*
    keyword arguments the generator does not accept raise
    :class:`~repro.exceptions.WorkloadError` — a typo like
    ``num_mesages=...`` must not silently build a default-sized stream.

    Examples
    --------
    >>> workload = load_dataset("ZF", exponent=1.2, num_keys=1000, num_messages=10)
    >>> workload.symbol
    'ZF'
    """
    entry = DATASETS.get(symbol.upper())
    if entry is None:
        raise WorkloadError(
            f"unknown dataset symbol {symbol!r}; known: {sorted(DATASETS)}"
        )
    try:
        # bind_partial: reject unknown keyword arguments while leaving
        # missing-required errors to the factory itself (unchanged behaviour).
        inspect.signature(entry.factory).bind_partial(**kwargs)
    except TypeError as exc:
        raise WorkloadError(
            f"invalid arguments for dataset {entry.symbol!r} "
            f"({entry.factory.__name__}): {exc}"
        ) from exc
    return entry.factory(**kwargs)


def table1_rows(
    measured: bool = False,
    overrides: Mapping[str, Mapping[str, Any]] | None = None,
    **kwargs,
) -> list[dict[str, object]]:
    """Rows of Table I.

    With ``measured=False`` (default) the published statistics are returned.
    With ``measured=True`` the synthetic stand-ins are generated and
    measured exactly; note this consumes the full streams.  ``overrides``
    maps dataset symbols to factory keyword arguments, so tests can shrink
    individual streams, e.g. ``overrides={"WP": {"num_messages": 100_000}}``
    (arguments are validated like :func:`load_dataset`).  Bare ``kwargs``
    configure the ZF stand-in only (backwards-compatible behaviour).
    """
    overrides = overrides or {}
    unknown = sorted(set(overrides) - set(DATASETS))
    if unknown:
        raise WorkloadError(
            f"unknown dataset symbols in overrides: {unknown}; "
            f"known: {sorted(DATASETS)}"
        )
    rows: list[dict[str, object]] = []
    for symbol, entry in DATASETS.items():
        if measured:
            factory_kwargs = dict(overrides.get(symbol, {}))
            if symbol == "ZF":
                factory_kwargs.setdefault("exponent", kwargs.get("exponent", 2.0))
                factory_kwargs.setdefault("num_keys", kwargs.get("num_keys", 10_000))
                factory_kwargs.setdefault(
                    "num_messages", kwargs.get("num_messages", 100_000)
                )
            workload = load_dataset(symbol, **factory_kwargs)
            rows.append(workload.measured_stats().as_row())
        else:
            rows.append(entry.published.as_row())
    return rows
