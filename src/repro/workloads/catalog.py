"""Dataset catalog (Table I).

Maps the dataset symbols used throughout the paper (WP, TW, CT, ZF) to the
workload generators of this reproduction and records both the statistics
published in Table I and the statistics of our synthetic stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import WorkloadError
from repro.types import DatasetStats
from repro.workloads.base import Workload
from repro.workloads.synthetic import (
    CashtagLikeWorkload,
    TwitterLikeWorkload,
    WikipediaLikeWorkload,
)
from repro.workloads.zipf_stream import ZipfWorkload


@dataclass(frozen=True, slots=True)
class DatasetEntry:
    """One row of the catalog: published stats + a factory for our stand-in."""

    symbol: str
    name: str
    #: Statistics as published in Table I of the paper.
    published: DatasetStats
    #: Factory building the synthetic stand-in at its default (scaled) size.
    factory: Callable[..., Workload]
    #: Why the substitution preserves the behaviour the experiments measure.
    substitution_note: str


DATASETS: dict[str, DatasetEntry] = {
    "WP": DatasetEntry(
        symbol="WP",
        name="Wikipedia",
        published=DatasetStats(
            name="Wikipedia",
            symbol="WP",
            messages=22_000_000,
            keys=2_900_000,
            p1=0.0932,
            description="Page-visit log of one day of January 2008.",
        ),
        factory=WikipediaLikeWorkload,
        substitution_note=(
            "Synthetic page-visit stream with the published p1 (9.32%) and a "
            "Zipf body; scaled to 2M messages / 1e5 keys by default."
        ),
    ),
    "TW": DatasetEntry(
        symbol="TW",
        name="Twitter",
        published=DatasetStats(
            name="Twitter",
            symbol="TW",
            messages=1_200_000_000,
            keys=31_000_000,
            p1=0.0267,
            description="Words of tweets crawled during July 2012.",
        ),
        factory=TwitterLikeWorkload,
        substitution_note=(
            "Synthetic word stream with the published p1 (2.67%); scaled to "
            "2M messages / 2e5 keys by default."
        ),
    ),
    "CT": DatasetEntry(
        symbol="CT",
        name="Cashtags",
        published=DatasetStats(
            name="Cashtags",
            symbol="CT",
            messages=690_000,
            keys=2_900,
            p1=0.0329,
            description="Cashtags of tweets crawled in November 2013.",
        ),
        factory=CashtagLikeWorkload,
        substitution_note=(
            "Drifting Zipf stream over the same key-space size with hourly "
            "full head rotation, reproducing the trace's concept drift."
        ),
    ),
    "ZF": DatasetEntry(
        symbol="ZF",
        name="Zipf",
        published=DatasetStats(
            name="Zipf",
            symbol="ZF",
            messages=10_000_000,
            keys=10_000,
            p1=float("nan"),
            description="Synthetic Zipf streams, z in {0.1..2.0}.",
        ),
        factory=ZipfWorkload,
        substitution_note="Generated exactly as in the paper (no substitution).",
    ),
}


def dataset_stats(symbol: str) -> DatasetStats:
    """Published Table I statistics for ``symbol``."""
    entry = DATASETS.get(symbol.upper())
    if entry is None:
        raise WorkloadError(
            f"unknown dataset symbol {symbol!r}; known: {sorted(DATASETS)}"
        )
    return entry.published


def load_dataset(symbol: str, **kwargs) -> Workload:
    """Instantiate the stand-in workload for ``symbol``.

    Keyword arguments are forwarded to the generator (e.g. ``num_messages``,
    ``seed``; ``exponent``/``num_keys`` for ZF).

    Examples
    --------
    >>> workload = load_dataset("ZF", exponent=1.2, num_keys=1000, num_messages=10)
    >>> workload.symbol
    'ZF'
    """
    entry = DATASETS.get(symbol.upper())
    if entry is None:
        raise WorkloadError(
            f"unknown dataset symbol {symbol!r}; known: {sorted(DATASETS)}"
        )
    return entry.factory(**kwargs)


def table1_rows(measured: bool = False, **kwargs) -> list[dict[str, object]]:
    """Rows of Table I.

    With ``measured=False`` (default) the published statistics are returned.
    With ``measured=True`` the synthetic stand-ins are generated (at their
    default scale unless overridden via ``kwargs``) and measured exactly;
    note this consumes the full streams.
    """
    rows: list[dict[str, object]] = []
    for symbol, entry in DATASETS.items():
        if measured:
            if symbol == "ZF":
                workload = entry.factory(
                    exponent=kwargs.get("exponent", 2.0),
                    num_keys=kwargs.get("num_keys", 10_000),
                    num_messages=kwargs.get("num_messages", 100_000),
                )
            else:
                workload = entry.factory()
            rows.append(workload.measured_stats().as_row())
        else:
            rows.append(entry.published.as_row())
    return rows
