"""Replay a stream from a plain text file (one key per line).

Users who have access to the original traces (the Wikipedia page-view log is
public; the Twitter samples are not) can feed them to the simulators through
this loader.  Lines are streamed, so arbitrarily large files work in constant
memory.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Iterator

from repro.exceptions import WorkloadError
from repro.types import DatasetStats, Key
from repro.workloads.base import Workload


class FileWorkload(Workload):
    """Keys read line-by-line from a text file.

    Parameters
    ----------
    path:
        Path of the file; every non-empty line is one message key.
    name:
        Human-readable dataset name (defaults to the file name).
    symbol:
        Table I-style symbol (defaults to "FILE").
    key_column:
        When lines are delimited records, the 0-based column holding the key.
        ``None`` (default) uses the whole stripped line.
    delimiter:
        Column separator used when ``key_column`` is given (default: any
        whitespace).
    limit:
        Optional cap on the number of messages read.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        name: str | None = None,
        symbol: str = "FILE",
        key_column: int | None = None,
        delimiter: str | None = None,
        limit: int | None = None,
    ) -> None:
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            raise WorkloadError(f"workload file not found: {self._path}")
        if limit is not None and limit < 0:
            raise WorkloadError(f"limit must be >= 0, got {limit}")
        self._name = name or os.path.basename(self._path)
        self.symbol = symbol
        self._key_column = key_column
        self._delimiter = delimiter
        self._limit = limit
        self._cached_stats: DatasetStats | None = None

    @property
    def path(self) -> str:
        return self._path

    def keys(self) -> Iterator[Key]:
        produced = 0
        with open(self._path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                if self._limit is not None and produced >= self._limit:
                    return
                stripped = line.strip()
                if not stripped:
                    continue
                if self._key_column is None:
                    key = stripped
                else:
                    fields = stripped.split(self._delimiter)
                    if self._key_column >= len(fields):
                        raise WorkloadError(
                            f"line {produced + 1} of {self._path} has no column "
                            f"{self._key_column}: {stripped!r}"
                        )
                    key = fields[self._key_column]
                produced += 1
                yield key

    def iter_batches_columnar(self, batch_size=8192, dictionary=None):
        """Columnar replay.

        File key spaces are unbounded, so callers replaying huge traces may
        pass a bounded :class:`~repro.workloads.columnar.KeyDictionary`
        (``max_keys=...``) to cap the forward map; the stream itself is
        unaffected (evicted keys simply re-intern under fresh ids).
        """
        from repro.workloads.columnar import iter_batches_columnar

        return iter_batches_columnar(self.keys(), batch_size, dictionary)

    def stats(self) -> DatasetStats:
        """Exact statistics; computed once by scanning the file, then cached."""
        if self._cached_stats is None:
            counts: Counter[Key] = Counter()
            total = 0
            for key in self.keys():
                counts[key] += 1
                total += 1
            p1 = counts.most_common(1)[0][1] / total if total else 0.0
            self._cached_stats = DatasetStats(
                name=self._name,
                symbol=self.symbol,
                messages=total,
                keys=len(counts),
                p1=p1,
                description=f"Stream replayed from {self._path}",
            )
        return self._cached_stats
