"""Concept-drift machinery: Zipf streams whose head changes over time.

The Cashtag dataset (CT) of the paper is characterised by strong concept
drift: which ticker symbols are hot changes from hour to hour, which is what
stresses the heavy-hitter tracking of D-Choices / W-Choices (Figure 12,
bottom row).

:class:`DriftingZipfWorkload` reproduces that behaviour synthetically: the
stream is divided into epochs; within an epoch keys follow a Zipf
distribution, but the *mapping from rank to key identity* is re-drawn at
every epoch boundary, so yesterday's hottest key may be cold today.  A
``drift_fraction`` below 1.0 rotates only part of the mapping, modelling
milder drift (the WP and TW traces drift slowly).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analysis.zipf import ZipfDistribution
from repro.exceptions import WorkloadError
from repro.types import DatasetStats, Key
from repro.workloads.base import Workload, derive_seed

_CHUNK = 200_000


class DriftingZipfWorkload(Workload):
    """Zipf keys with an epoch-wise re-shuffled rank-to-key mapping.

    Parameters
    ----------
    exponent:
        Zipf exponent within each epoch.
    num_keys:
        Key-space size.
    num_messages:
        Total stream length.
    num_epochs:
        Number of epochs (e.g. simulated hours).  Must divide the stream
        reasonably; the last epoch absorbs any remainder.
    drift_fraction:
        Fraction of the rank-to-key mapping re-drawn at each epoch boundary.
        1.0 re-shuffles everything (strong drift, CT-like); 0.0 disables
        drift entirely (the stream degenerates to a plain Zipf workload).
    seed:
        RNG seed (int or string, normalised through
        :func:`~repro.workloads.base.derive_seed`; ints pass through
        unchanged).
    """

    symbol = "ZF-DRIFT"

    def __init__(
        self,
        exponent: float,
        num_keys: int,
        num_messages: int,
        num_epochs: int = 24,
        drift_fraction: float = 1.0,
        seed: int | str = 0,
    ) -> None:
        if num_messages < 0:
            raise WorkloadError(f"num_messages must be >= 0, got {num_messages}")
        if num_epochs < 1:
            raise WorkloadError(f"num_epochs must be >= 1, got {num_epochs}")
        if not 0.0 <= drift_fraction <= 1.0:
            raise WorkloadError(
                f"drift_fraction must be in [0, 1], got {drift_fraction}"
            )
        self._distribution = ZipfDistribution(exponent, num_keys)
        self._num_messages = num_messages
        self._num_epochs = num_epochs
        self._drift_fraction = drift_fraction
        self._seed = derive_seed(seed)

    @property
    def distribution(self) -> ZipfDistribution:
        return self._distribution

    @property
    def num_epochs(self) -> int:
        return self._num_epochs

    @property
    def num_messages(self) -> int:
        return self._num_messages

    @property
    def drift_fraction(self) -> float:
        return self._drift_fraction

    def _epoch_lengths(self) -> list[int]:
        base = self._num_messages // self._num_epochs
        lengths = [base] * self._num_epochs
        lengths[-1] += self._num_messages - base * self._num_epochs
        return lengths

    def _draw_spans(self) -> Iterator[np.ndarray]:
        """Yield the stream as mapped key arrays, one per RNG draw.

        Single source of truth for the RNG consumption order (rotate the
        mapping at each epoch boundary, then draw ``_CHUNK``-sized rank
        chunks): :meth:`keys`, :meth:`iter_batches` and
        :meth:`iter_batches_columnar` all consume these spans, so the three
        representations carry the same stream for any chunking.
        """
        rng = np.random.default_rng(self._seed)
        num_keys = self._distribution.num_keys
        probabilities = self._distribution.probabilities
        support = np.arange(num_keys)
        # rank -> key identity mapping, re-shuffled (partially) per epoch
        mapping = np.arange(1, num_keys + 1)
        for epoch, length in enumerate(self._epoch_lengths()):
            if epoch > 0 and self._drift_fraction > 0.0:
                mapping = self._rotate_mapping(mapping, rng)
            remaining = length
            while remaining > 0:
                size = min(_CHUNK, remaining)
                ranks = rng.choice(support, size=size, p=probabilities)
                yield mapping[ranks]
                remaining -= size

    def keys(self) -> Iterator[Key]:
        for span in self._draw_spans():
            yield from span.tolist()

    def iter_batches(self, batch_size: int = 8192) -> Iterator[list[Key]]:
        for span in self._draw_spans():
            values = span.tolist()
            for start in range(0, len(values), batch_size):
                yield values[start : start + batch_size]

    def iter_batches_columnar(self, batch_size=8192, dictionary=None):
        """Native columnar stream; ids are issued per draw span, so the id
        numbering is independent of ``batch_size``."""
        from repro.workloads.columnar import ColumnarBatch, KeyDictionary

        dictionary = dictionary if dictionary is not None else KeyDictionary()
        index = 0
        for span in self._draw_spans():
            ids = dictionary.intern_int_array(span)
            for start in range(0, span.size, batch_size):
                yield ColumnarBatch(
                    ids[start : start + batch_size], dictionary, index + start
                )
            index += span.size

    def _rotate_mapping(
        self, mapping: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Re-draw ``drift_fraction`` of the rank-to-key assignments."""
        num_keys = mapping.size
        num_drift = int(round(self._drift_fraction * num_keys))
        if num_drift < 2:
            return mapping
        new_mapping = mapping.copy()
        positions = rng.choice(num_keys, size=num_drift, replace=False)
        shuffled = positions.copy()
        rng.shuffle(shuffled)
        new_mapping[positions] = mapping[shuffled]
        return new_mapping

    def epoch_of_message(self, index: int) -> int:
        """The epoch the ``index``-th message belongs to (for time series)."""
        if not 0 <= index < max(1, self._num_messages):
            raise WorkloadError(
                f"message index {index} outside [0, {self._num_messages})"
            )
        lengths = self._epoch_lengths()
        seen = 0
        for epoch, length in enumerate(lengths):
            seen += length
            if index < seen:
                return epoch
        return self._num_epochs - 1

    def stats(self) -> DatasetStats:
        return DatasetStats(
            name=(
                f"DriftingZipf(z={self._distribution.exponent:g}, "
                f"|K|={self._distribution.num_keys}, epochs={self._num_epochs})"
            ),
            symbol=self.symbol,
            messages=self._num_messages,
            keys=self._distribution.num_keys,
            p1=self._distribution.p1,
            description=(
                "Zipf stream whose rank-to-key mapping is re-shuffled every "
                "epoch, modelling concept drift."
            ),
        )
