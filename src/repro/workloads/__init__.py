"""Workload (dataset) generators and loaders.

The paper evaluates on three real traces (Wikipedia page visits, Twitter
words, Twitter cashtags) and on synthetic Zipf streams (Table I).  The raw
traces are not redistributable, so this subpackage provides:

* :class:`~repro.workloads.zipf_stream.ZipfWorkload` — the ZF datasets;
* :mod:`~repro.workloads.synthetic` — Wikipedia-like, Twitter-like and
  Cashtag-like generators that match the published summary statistics
  (number of keys, p1, drift behaviour) at a laptop-friendly scale;
* :class:`~repro.workloads.drift.DriftingZipfWorkload` — the concept-drift
  machinery behind the Cashtag-like workload;
* :class:`~repro.workloads.file_stream.FileWorkload` — replay a stream from
  a text file (one key per line), for users who do have the original traces;
* :mod:`~repro.workloads.catalog` — the Table I registry mapping dataset
  symbols (WP, TW, CT, ZF) to generators and their statistics;
* :mod:`~repro.workloads.columnar` — :class:`KeyDictionary` /
  :class:`ColumnarBatch`, the interned-id stream representation behind
  ``iter_batches_columnar`` (see ``docs/columnar.md``).
"""

from repro.workloads.base import Workload, derive_seed, materialize
from repro.workloads.catalog import DATASETS, dataset_stats, load_dataset
from repro.workloads.columnar import (
    ColumnarBatch,
    KeyDictionary,
    iter_batches_columnar,
)
from repro.workloads.drift import DriftingZipfWorkload
from repro.workloads.file_stream import FileWorkload
from repro.workloads.synthetic import (
    CashtagLikeWorkload,
    TwitterLikeWorkload,
    WikipediaLikeWorkload,
)
from repro.workloads.zipf_stream import ZipfWorkload

__all__ = [
    "DATASETS",
    "CashtagLikeWorkload",
    "ColumnarBatch",
    "DriftingZipfWorkload",
    "FileWorkload",
    "KeyDictionary",
    "TwitterLikeWorkload",
    "WikipediaLikeWorkload",
    "Workload",
    "ZipfWorkload",
    "dataset_stats",
    "derive_seed",
    "iter_batches_columnar",
    "load_dataset",
    "materialize",
]
