"""Synthetic Zipf workloads (the ZF datasets of Table I).

Keys are integers ``1 .. |K|`` drawn i.i.d. from a finite Zipf distribution
with exponent ``z``.  The paper sweeps ``z`` in {0.1, ..., 2.0}, ``|K|`` in
{10^4, 10^5, 10^6} and uses ``m = 10^7`` messages for the simulations and
``m = 2 * 10^6`` for the cluster runs.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analysis.zipf import ZipfDistribution
from repro.exceptions import WorkloadError
from repro.types import DatasetStats, Key
from repro.workloads.base import Workload, derive_seed

#: Generating huge streams in one numpy call would hold the whole array in
#: memory; draw in chunks instead.
_CHUNK = 200_000


class ZipfWorkload(Workload):
    """I.i.d. Zipf-distributed keys.

    Parameters
    ----------
    exponent:
        Skew ``z``.
    num_keys:
        Key-space size ``|K|``.
    num_messages:
        Stream length ``m``.
    seed:
        RNG seed; the stream is fully reproducible for a given seed.
        Strings are accepted and normalised through
        :func:`~repro.workloads.base.derive_seed` (ints pass through
        unchanged, so explicit integer seeds keep their streams).

    Examples
    --------
    >>> workload = ZipfWorkload(exponent=1.0, num_keys=100, num_messages=10, seed=0)
    >>> len(list(workload.keys()))
    10
    """

    symbol = "ZF"

    def __init__(
        self,
        exponent: float,
        num_keys: int,
        num_messages: int,
        seed: int | str = 0,
    ) -> None:
        if num_messages < 0:
            raise WorkloadError(f"num_messages must be >= 0, got {num_messages}")
        self._distribution = ZipfDistribution(exponent, num_keys)
        self._num_messages = num_messages
        self._seed = derive_seed(seed)

    @property
    def distribution(self) -> ZipfDistribution:
        """The exact key distribution the stream is drawn from."""
        return self._distribution

    @property
    def exponent(self) -> float:
        return self._distribution.exponent

    @property
    def num_keys(self) -> int:
        return self._distribution.num_keys

    @property
    def num_messages(self) -> int:
        return self._num_messages

    @property
    def seed(self) -> int:
        return self._seed

    def keys(self) -> Iterator[Key]:
        for batch in self.iter_batches(_CHUNK):
            yield from batch

    def iter_batches(self, batch_size: int = 8192) -> Iterator[list[Key]]:
        """Chunked stream: numpy draws converted to Python ints in bulk.

        Same draws in the same order as :meth:`keys` for any ``batch_size``
        (the RNG consumption is fixed at ``_CHUNK``-sized draws); ``tolist``
        replaces the per-key ``int(rank)`` conversions.
        """
        rng = np.random.default_rng(self._seed)
        remaining = self._num_messages
        probabilities = self._distribution.probabilities
        support = np.arange(1, self._distribution.num_keys + 1)
        while remaining > 0:
            size = min(_CHUNK, remaining)
            ranks = rng.choice(support, size=size, p=probabilities).tolist()
            for start in range(0, size, batch_size):
                yield ranks[start : start + batch_size]
            remaining -= size

    def iter_batches_columnar(self, batch_size=8192, dictionary=None):
        """Native columnar stream: draw chunks are interned as int arrays.

        Same draws and id numbering for any ``batch_size`` (interning
        happens per ``_CHUNK``-sized draw, before slicing).
        """
        from repro.workloads.columnar import ColumnarBatch, KeyDictionary

        dictionary = dictionary if dictionary is not None else KeyDictionary()
        rng = np.random.default_rng(self._seed)
        remaining = self._num_messages
        probabilities = self._distribution.probabilities
        support = np.arange(1, self._distribution.num_keys + 1)
        index = 0
        while remaining > 0:
            size = min(_CHUNK, remaining)
            ranks = rng.choice(support, size=size, p=probabilities)
            ids = dictionary.intern_int_array(ranks)
            for start in range(0, size, batch_size):
                yield ColumnarBatch(
                    ids[start : start + batch_size], dictionary, index + start
                )
            index += size
            remaining -= size

    def stats(self) -> DatasetStats:
        return DatasetStats(
            name=f"Zipf(z={self.exponent:g}, |K|={self.num_keys})",
            symbol=self.symbol,
            messages=self._num_messages,
            keys=self.num_keys,
            p1=self._distribution.p1,
            description=(
                "Synthetic i.i.d. Zipf stream; p1 is exact (from the "
                "distribution), the realised value fluctuates with the seed."
            ),
        )
