"""Columnar stream batches: interned key-ids plus payload indices.

The scalar pipeline moves Python objects (strings, ints) from the workload
generator through ``route_batch`` into the operators; every layer re-hashes
or re-interns the same keys.  The columnar pipeline interns each distinct
key exactly **once** at the source into a stream-level :class:`KeyDictionary`
and then moves plain ``int64`` arrays:

* :class:`KeyDictionary` — an append-only bijection ``key <-> id``.  Ids are
  dense (``0, 1, 2, ...`` in first-appearance order), never reused, and the
  64-bit folded form of every key (the input of the SplitMix64 hash family)
  is stored alongside, so downstream hashing can run on contiguous numpy
  arrays without ever touching the original key objects.
* :class:`ColumnarBatch` — one chunk of the stream: an ``int64`` id array,
  the dictionary that decodes it, and the stream offset of its first
  message (the payload index of message ``j`` is ``base_index + j``).

Routing results are byte-identical between the two representations: the
dictionary keeps the *folded key*, not the id, as the hash input, so a
columnar route of ``ids`` equals a scalar route of the decoded keys bit for
bit.  The property tests in ``tests/property/test_columnar_equivalence.py``
pin that contract.

A dictionary may be *bounded* (``max_keys``): the forward ``key -> id`` map
then evicts its oldest entries FIFO-style, like the hash-family caches it
generalises.  Eviction only forgets the forward direction — already-issued
ids stay decodable forever — so a re-appearing key simply gets a fresh id.
Bounded mode trades a little id-table growth for a hard cap on the forward
map, which matters for unbounded key spaces (e.g. file replays).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import WorkloadError
from repro.hashing.hash_family import _key_to_int
from repro.types import Key

#: Issues a process-unique token per dictionary.  Hash families key their
#: per-id candidate tables on this token; ``id(dictionary)`` would be unsafe
#: because CPython reuses addresses of collected objects.
_TOKENS = itertools.count()

_GROW = 1024


class KeyDictionary:
    """Append-only interning dictionary: stable dense ids for stream keys.

    Parameters
    ----------
    max_keys:
        Optional bound on the forward ``key -> id`` map.  ``None`` (default)
        interns without limit; a positive value evicts the oldest forward
        entries FIFO-style once the map is full.  Reverse lookups
        (:meth:`key_of`, :meth:`decode`) are unaffected by eviction.
    """

    __slots__ = ("_forward", "_keys", "_folded", "_size", "_max_keys", "token")

    def __init__(self, max_keys: int | None = None) -> None:
        if max_keys is not None and max_keys < 1:
            raise WorkloadError(f"max_keys must be >= 1 or None, got {max_keys}")
        self._forward: dict[Key, int] = {}
        self._keys = np.empty(_GROW, dtype=object)
        self._folded = np.empty(_GROW, dtype=np.uint64)
        self._size = 0
        self._max_keys = max_keys
        self.token = next(_TOKENS)

    def __len__(self) -> int:
        """Number of ids issued so far (monotone, unaffected by eviction)."""
        return self._size

    @property
    def max_keys(self) -> int | None:
        return self._max_keys

    @property
    def folded(self) -> np.ndarray:
        """``uint64`` view of the folded key per id (hash-family input)."""
        return self._folded[: self._size]

    def _grow(self, needed: int) -> None:
        capacity = self._keys.size
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        keys = np.empty(new_capacity, dtype=object)
        keys[: self._size] = self._keys[: self._size]
        folded = np.empty(new_capacity, dtype=np.uint64)
        folded[: self._size] = self._folded[: self._size]
        self._keys = keys
        self._folded = folded

    def _store(self, key: Key) -> int:
        kid = self._size
        self._grow(kid + 1)
        self._keys[kid] = key
        self._folded[kid] = _key_to_int(key)
        self._size = kid + 1
        forward = self._forward
        forward[key] = kid
        if self._max_keys is not None and len(forward) > self._max_keys:
            del forward[next(iter(forward))]
        return kid

    def intern(self, key: Key) -> int:
        """Return the id of ``key``, issuing a fresh one on first sight."""
        kid = self._forward.get(key)
        if kid is None:
            kid = self._store(key)
        return kid

    def intern_keys(self, keys: Iterable[Key]) -> np.ndarray:
        """Intern a sequence of keys, returning their ids as ``int64``."""
        forward = self._forward
        store = self._store
        out = [
            kid if (kid := forward.get(key)) is not None else store(key)
            for key in keys
        ]
        return np.asarray(out, dtype=np.int64)

    def intern_int_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized interning of an integer key array.

        Only the *distinct* values of the chunk pass through Python; the
        scatter back to per-message ids is pure numpy.  First-appearance
        order within the chunk is preserved (``np.unique`` sorts, so new
        unique values are re-visited in stream order to issue ids), keeping
        id numbering identical to element-wise :meth:`intern`.
        """
        return self.intern_mapped_array(values, None)

    def intern_mapped_array(self, values, key_fn) -> np.ndarray:
        """Intern an integer draw array whose keys are ``key_fn(value)``.

        Generalises :meth:`intern_int_array` for workloads that draw integer
        indices but name their keys (e.g. ``head-0`` / ``key-42``):
        ``key_fn`` maps a drawn value to the key object, and is only called
        for the chunk's *distinct* values.  ``key_fn=None`` means the values
        are the keys (plain integer key spaces).
        """
        values = np.asarray(values)
        uniques, inverse = np.unique(values, return_inverse=True)
        unique_values = uniques.tolist()
        if key_fn is not None:
            unique_keys = [key_fn(value) for value in unique_values]
        else:
            unique_keys = unique_values
        id_map = np.empty(uniques.size, dtype=np.int64)
        forward = self._forward
        known = True
        for position, key in enumerate(unique_keys):
            kid = forward.get(key)
            if kid is None:
                known = False
                break
            id_map[position] = kid
        if not known:
            # At least one new key: replay the chunk in stream order so ids
            # are issued by first appearance, not by sorted value.
            first_positions = np.full(uniques.size, -1, dtype=np.int64)
            order = np.arange(values.size - 1, -1, -1)
            first_positions[inverse[order]] = order
            store = self._store
            for position in np.argsort(first_positions).tolist():
                key = unique_keys[position]
                kid = forward.get(key)
                if kid is None:
                    kid = store(key)
                id_map[position] = kid
        return id_map[inverse].astype(np.int64, copy=False)

    def lookup(self, key: Key) -> int | None:
        """The current id of ``key``, or ``None`` if absent / evicted."""
        return self._forward.get(key)

    def key_of(self, kid: int) -> Key:
        """Decode one id back to its key (works even after eviction)."""
        if not 0 <= kid < self._size:
            raise WorkloadError(f"key id {kid} outside [0, {self._size})")
        return self._keys[kid]

    def decode(self, ids: np.ndarray | Sequence[int]) -> list[Key]:
        """Decode an id array back to a key list in one vectorized gather."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self._size):
            raise WorkloadError("id array contains out-of-range ids")
        return self._keys[: self._size][ids].tolist()


class ColumnarBatch:
    """One chunk of a columnar stream.

    ``ids[j]`` is the interned key-id of the chunk's ``j``-th message and
    ``base_index + j`` its payload index (position in the overall stream).
    Batches are cheap views — slicing shares the underlying id array.
    """

    __slots__ = ("ids", "dictionary", "base_index")

    def __init__(
        self,
        ids: np.ndarray,
        dictionary: KeyDictionary,
        base_index: int = 0,
    ) -> None:
        self.ids = np.asarray(ids, dtype=np.int64)
        self.dictionary = dictionary
        self.base_index = base_index

    def __len__(self) -> int:
        return int(self.ids.size)

    def keys(self) -> list[Key]:
        """Decode back to the key list the scalar path would have carried."""
        return self.dictionary.decode(self.ids)

    def indices(self) -> np.ndarray:
        """Payload indices of the batch (``base_index + arange(len)``)."""
        return np.arange(
            self.base_index, self.base_index + self.ids.size, dtype=np.int64
        )

    def slice(self, start: int, stop: int) -> "ColumnarBatch":
        """A zero-copy sub-batch covering messages ``[start, stop)``."""
        return ColumnarBatch(
            self.ids[start:stop], self.dictionary, self.base_index + start
        )

    def strided(self, offset: int, step: int) -> "ColumnarBatch":
        """The sub-stream ``offset, offset+step, ...`` (per-source slicing).

        The result's ``base_index`` is the position of its first message in
        the parent batch's frame.
        """
        return ColumnarBatch(
            self.ids[offset::step], self.dictionary, self.base_index + offset
        )


def iter_batches_columnar(
    source: Iterable[Key],
    batch_size: int = 8192,
    dictionary: KeyDictionary | None = None,
    base_index: int = 0,
) -> Iterator[ColumnarBatch]:
    """Chunk any key iterable into :class:`ColumnarBatch` es.

    Generic fallback used by :meth:`Workload.iter_batches_columnar` when a
    workload has no native columnar generator; interning is element-wise.
    """
    if batch_size < 1:
        raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
    dictionary = dictionary if dictionary is not None else KeyDictionary()
    chunk: list[Key] = []
    index = base_index
    for key in source:
        chunk.append(key)
        if len(chunk) >= batch_size:
            yield ColumnarBatch(dictionary.intern_keys(chunk), dictionary, index)
            index += len(chunk)
            chunk = []
    if chunk:
        yield ColumnarBatch(dictionary.intern_keys(chunk), dictionary, index)
