"""Synthetic stand-ins for the paper's real-world traces.

The original traces (Table I) cannot be redistributed, so each is replaced
by a generator that matches the statistics that matter to load balancing —
the shape of the key-frequency distribution (in particular ``p1``), the
relative key-space size, and the presence or absence of concept drift:

* **WikipediaLikeWorkload (WP)** — page-visit log; published stats: 22 M
  messages, 2.9 M keys, ``p1 = 9.32 %``.  A plain Zipf distribution cannot
  simultaneously give a large key space and such a dominant hottest key, so
  the generator mixes a handful of "celebrity pages" (geometrically decaying
  frequencies, the hottest at 9.3 %) with a Zipf(1.05) body — the classic
  shape of web-access logs.
* **TwitterLikeWorkload (TW)** — words of tweets; 1.2 G messages, 31 M keys,
  ``p1 = 2.67 %``.  Natural-language word frequencies are well modelled by a
  Zipf law with exponent close to 1; we add explicit stop-word-like hot keys
  to pin ``p1`` at the published value.
* **CashtagLikeWorkload (CT)** — 690 k messages over only 2.9 k keys,
  ``p1 = 3.29 %``, with strong concept drift; generated as a drifting Zipf
  stream over a small key space.

Scales default to laptop-friendly values but the published sizes can be
requested explicitly (``full_scale=True``) — everything is streamed, so
memory stays flat.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import WorkloadError
from repro.types import DatasetStats, Key
from repro.workloads.base import Workload, derive_seed
from repro.workloads.drift import DriftingZipfWorkload

_CHUNK = 200_000


class _HeadBodyWorkload(Workload):
    """A stream mixing explicit head frequencies with a Zipf body.

    ``head_fractions`` gives the relative frequency of each hot key
    (``head-0`` is the hottest); the remaining probability mass is spread
    over ``num_body_keys`` keys following a Zipf law with ``body_exponent``.
    The body keys take the Zipf weights of ranks ``|head|+1, |head|+2, ...``
    — i.e. the body *continues* the curve below the head instead of starting
    a fresh one — so the hottest body key stays well below the designated
    head and the published ``p1`` is preserved for any reasonable body size.
    This construction lets us pin ``p1`` exactly while keeping a realistic
    long tail.
    """

    def __init__(
        self,
        name: str,
        symbol: str,
        head_fractions: tuple[float, ...],
        num_body_keys: int,
        body_exponent: float,
        num_messages: int,
        seed: int | str = 0,
        description: str = "",
    ) -> None:
        if num_messages < 0:
            raise WorkloadError(f"num_messages must be >= 0, got {num_messages}")
        if num_body_keys < 1:
            raise WorkloadError(f"num_body_keys must be >= 1, got {num_body_keys}")
        head_mass = float(sum(head_fractions))
        if not 0.0 <= head_mass < 1.0:
            raise WorkloadError(
                f"head fractions must sum to a value in [0, 1), got {head_mass}"
            )
        if any(fraction <= 0.0 for fraction in head_fractions):
            raise WorkloadError("head fractions must all be positive")
        self._name = name
        self.symbol = symbol
        self._head_fractions = tuple(head_fractions)
        self._num_body_keys = num_body_keys
        self._body_exponent = body_exponent
        self._num_messages = num_messages
        self._seed = derive_seed(seed)
        self._description = description

        # Body weights continue the Zipf curve at the ranks below the head.
        head_size = len(head_fractions)
        body_ranks = np.arange(head_size + 1, head_size + num_body_keys + 1, dtype=np.float64)
        body_weights = body_ranks ** (-body_exponent)
        body_mass = 1.0 - head_mass
        body_probabilities = body_weights / body_weights.sum() * body_mass
        self._probabilities = np.concatenate(
            [np.asarray(head_fractions), body_probabilities]
        )
        # Guard against drift in floating point normalisation.
        self._probabilities = self._probabilities / self._probabilities.sum()

    @property
    def num_messages(self) -> int:
        return self._num_messages

    @property
    def num_keys(self) -> int:
        return len(self._head_fractions) + self._num_body_keys

    @property
    def probabilities(self) -> np.ndarray:
        """Exact per-key probabilities (head keys first, then the Zipf body)."""
        return self._probabilities

    def _key_name(self, index: int) -> str:
        if index < len(self._head_fractions):
            return f"head-{index}"
        return f"key-{index - len(self._head_fractions)}"

    def keys(self) -> Iterator[Key]:
        rng = np.random.default_rng(self._seed)
        support = np.arange(self._probabilities.size)
        remaining = self._num_messages
        while remaining > 0:
            size = min(_CHUNK, remaining)
            draws = rng.choice(support, size=size, p=self._probabilities)
            for index in draws:
                yield self._key_name(int(index))
            remaining -= size

    def iter_batches_columnar(self, batch_size=8192, dictionary=None):
        """Native columnar stream: only each chunk's *distinct* draw values
        go through :meth:`_key_name`; the per-message scatter is numpy."""
        from repro.workloads.columnar import ColumnarBatch, KeyDictionary

        dictionary = dictionary if dictionary is not None else KeyDictionary()
        rng = np.random.default_rng(self._seed)
        support = np.arange(self._probabilities.size)
        remaining = self._num_messages
        index = 0
        while remaining > 0:
            size = min(_CHUNK, remaining)
            draws = rng.choice(support, size=size, p=self._probabilities)
            ids = dictionary.intern_mapped_array(draws, self._key_name)
            for start in range(0, size, batch_size):
                yield ColumnarBatch(
                    ids[start : start + batch_size], dictionary, index + start
                )
            index += size
            remaining -= size

    def stats(self) -> DatasetStats:
        return DatasetStats(
            name=self._name,
            symbol=self.symbol,
            messages=self._num_messages,
            keys=self.num_keys,
            p1=float(self._probabilities.max()),
            description=self._description,
        )


class WikipediaLikeWorkload(_HeadBodyWorkload):
    """Synthetic stand-in for the WP trace (p1 ≈ 9.3 %).

    Default scale: 2 * 10^6 messages over ~10^5 keys (the published trace has
    22 M messages over 2.9 M keys; the imbalance metric is normalised so the
    scale-down preserves the comparison shape).
    """

    #: Relative frequencies of the few extremely hot pages (front page,
    #: current-events page, ...), decaying geometrically from the published
    #: p1 of 9.32 %.
    _HEAD = (0.0932, 0.031, 0.016, 0.009, 0.005)

    def __init__(
        self,
        num_messages: int = 2_000_000,
        num_body_keys: int = 100_000,
        seed: int | str = 0,
        full_scale: bool = False,
    ) -> None:
        if full_scale:
            num_messages = 22_000_000
            num_body_keys = 2_900_000
        super().__init__(
            name="Wikipedia-like",
            symbol="WP",
            head_fractions=self._HEAD,
            num_body_keys=num_body_keys,
            body_exponent=1.05,
            num_messages=num_messages,
            seed=seed,
            description=(
                "Synthetic page-visit log matching the published p1 of the "
                "WP trace (9.32%) with a Zipf(1.05) body."
            ),
        )


class TwitterLikeWorkload(_HeadBodyWorkload):
    """Synthetic stand-in for the TW trace (words of tweets, p1 ≈ 2.7 %).

    Default scale: 2 * 10^6 messages over ~2 * 10^5 keys (published: 1.2 G
    messages over 31 M keys).
    """

    #: Stop-word-like hot keys, hottest at the published p1 of 2.67 %.
    _HEAD = (0.0267, 0.021, 0.017, 0.013, 0.011, 0.009, 0.007, 0.006)

    def __init__(
        self,
        num_messages: int = 2_000_000,
        num_body_keys: int = 200_000,
        seed: int | str = 0,
        full_scale: bool = False,
    ) -> None:
        if full_scale:
            num_messages = 1_200_000_000
            num_body_keys = 31_000_000
        super().__init__(
            name="Twitter-like",
            symbol="TW",
            head_fractions=self._HEAD,
            num_body_keys=num_body_keys,
            body_exponent=1.0,
            num_messages=num_messages,
            seed=seed,
            description=(
                "Synthetic word stream matching the published p1 of the TW "
                "trace (2.67%) with a Zipf(1.0) body."
            ),
        )


class CashtagLikeWorkload(Workload):
    """Synthetic stand-in for the CT trace (cashtags, strong concept drift).

    The published trace has 690 k messages over 2.9 k keys with p1 = 3.29 %,
    and the paper highlights its drastic distribution changes over time.
    We reproduce it as a drifting Zipf stream over the same (small) key space
    with hourly epochs and full head rotation.
    """

    symbol = "CT"

    def __init__(
        self,
        num_messages: int = 690_000,
        num_keys: int = 2_900,
        num_hours: int = 80,
        exponent: float = 0.8,
        seed: int | str = 0,
    ) -> None:
        self._inner = DriftingZipfWorkload(
            exponent=exponent,
            num_keys=num_keys,
            num_messages=num_messages,
            num_epochs=num_hours,
            drift_fraction=1.0,
            seed=seed,
        )

    @property
    def num_messages(self) -> int:
        return self._inner.num_messages

    @property
    def num_epochs(self) -> int:
        return self._inner.num_epochs

    def epoch_of_message(self, index: int) -> int:
        return self._inner.epoch_of_message(index)

    def keys(self) -> Iterator[Key]:
        return self._inner.keys()

    def iter_batches(self, batch_size: int = 8192):
        return self._inner.iter_batches(batch_size)

    def iter_batches_columnar(self, batch_size=8192, dictionary=None):
        return self._inner.iter_batches_columnar(batch_size, dictionary)

    def stats(self) -> DatasetStats:
        inner = self._inner.stats()
        return DatasetStats(
            name="Cashtag-like",
            symbol=self.symbol,
            messages=inner.messages,
            keys=inner.keys,
            p1=inner.p1,
            description=(
                "Synthetic cashtag stream: small key space, moderate skew, "
                "strong hourly concept drift (the head rotates every epoch)."
            ),
        )
