"""Head of the key distribution: ``H = {k : p_k >= theta}``.

These helpers answer the questions behind Figure 3 of the paper (how many
keys end up in the head for a given threshold and skew) and provide the
utility used by the experiments to compute exact heads from either an
analytical distribution or a measured frequency vector.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.bounds import theta_range
from repro.analysis.zipf import ZipfDistribution
from repro.exceptions import AnalysisError
from repro.types import Key


def select_threshold(num_workers: int, fraction_of_default: float = 1.0) -> float:
    """The paper's default threshold ``1/(5n)``, optionally scaled.

    ``fraction_of_default`` lets experiments sweep thresholds relative to the
    default (e.g. Figure 7 sweeps ``2/n, 1/n, 1/(2n), 1/(4n), 1/(8n)``,
    expressed here as multiples of ``1/(5n)``).
    """
    if fraction_of_default <= 0.0:
        raise AnalysisError(
            f"fraction_of_default must be positive, got {fraction_of_default}"
        )
    return theta_range(num_workers).default * fraction_of_default


def head_cardinality(distribution: ZipfDistribution, theta: float) -> int:
    """Number of keys whose probability is at least ``theta`` (Figure 3)."""
    if theta <= 0.0:
        raise AnalysisError(f"theta must be positive, got {theta}")
    return distribution.keys_above(theta)


def head_mass(distribution: ZipfDistribution, theta: float) -> float:
    """Total probability carried by the head."""
    return distribution.prefix_mass(head_cardinality(distribution, theta))


def head_keys(
    frequencies: Mapping[Key, int] | Sequence[int],
    theta: float,
    total: int | None = None,
) -> list[Key]:
    """Keys whose measured relative frequency is at least ``theta``.

    Accepts either a mapping ``key -> count`` (returns the qualifying keys)
    or a plain sequence of counts (returns the qualifying indices).
    """
    if theta <= 0.0:
        raise AnalysisError(f"theta must be positive, got {theta}")
    if isinstance(frequencies, Mapping):
        counts = frequencies
    else:
        counts = {index: count for index, count in enumerate(frequencies)}
    if total is None:
        total = sum(counts.values())
    if total <= 0:
        return []
    cutoff = theta * total
    selected = [key for key, count in counts.items() if count >= cutoff]
    selected.sort(key=lambda key: counts[key], reverse=True)
    return selected


def head_probabilities(
    distribution: ZipfDistribution, theta: float
) -> np.ndarray:
    """Probability vector of the head keys, ordered by rank."""
    cardinality = head_cardinality(distribution, theta)
    return distribution.probabilities[:cardinality].copy()


def uniform_head_upper_bound(num_workers: int, theta: float | None = None) -> int:
    """Worst-case head size for any distribution at threshold ``theta``.

    At most ``1/theta`` keys can each have probability >= theta; with the
    default ``theta = 1/(5n)`` this is ``5n`` keys, the figure quoted in
    Section III-A.
    """
    if theta is None:
        theta = theta_range(num_workers).default
    if theta <= 0.0:
        raise AnalysisError(f"theta must be positive, got {theta}")
    return int(np.floor(1.0 / theta))
