"""Finite-support Zipf distributions.

The paper's synthetic workloads (ZF in Table I) draw keys from a Zipf
distribution with exponent ``z`` in {0.1, ..., 2.0} over ``|K|`` unique keys:
``p_k \\propto k^{-z}``.  This module provides the exact probability vector
and the derived quantities the analysis needs (head mass, p1, rank queries)
without requiring scipy.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


class ZipfDistribution:
    """Exact finite Zipf distribution ``p_k = k^{-z} / H_{|K|,z}``.

    Parameters
    ----------
    exponent:
        Skew parameter ``z``; 0 gives the uniform distribution.
    num_keys:
        Support size ``|K|``.

    Examples
    --------
    >>> dist = ZipfDistribution(exponent=2.0, num_keys=1000)
    >>> 0.55 < dist.p1 < 0.65     # most frequent key carries ~60% of the mass
    True
    >>> abs(sum(dist.probabilities) - 1.0) < 1e-9
    True
    """

    def __init__(self, exponent: float, num_keys: int) -> None:
        if exponent < 0.0:
            raise ConfigurationError(f"exponent must be >= 0, got {exponent}")
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        self._exponent = float(exponent)
        self._num_keys = int(num_keys)
        ranks = np.arange(1, self._num_keys + 1, dtype=np.float64)
        weights = ranks ** (-self._exponent)
        self._probabilities = weights / weights.sum()
        self._cumulative = np.cumsum(self._probabilities)

    @property
    def exponent(self) -> float:
        return self._exponent

    @property
    def num_keys(self) -> int:
        return self._num_keys

    @property
    def probabilities(self) -> np.ndarray:
        """Probability vector indexed by rank - 1 (rank 1 is the hottest key)."""
        return self._probabilities

    @property
    def p1(self) -> float:
        """Probability of the most frequent key."""
        return float(self._probabilities[0])

    def probability(self, rank: int) -> float:
        """Probability of the key with the given 1-based rank."""
        if not 1 <= rank <= self._num_keys:
            raise ConfigurationError(
                f"rank {rank} outside [1, {self._num_keys}]"
            )
        return float(self._probabilities[rank - 1])

    def prefix_mass(self, length: int) -> float:
        """Total probability of the ``length`` most frequent keys."""
        if length <= 0:
            return 0.0
        length = min(length, self._num_keys)
        return float(self._cumulative[length - 1])

    def tail_mass(self, head_length: int) -> float:
        """Total probability of every key of rank > ``head_length``."""
        return 1.0 - self.prefix_mass(head_length)

    def keys_above(self, threshold: float) -> int:
        """Number of keys with probability >= ``threshold``.

        Because probabilities are non-increasing in rank, this is the length
        of the maximal prefix above the threshold — exactly the cardinality
        of the head ``H`` for a given ``theta``.
        """
        if threshold <= 0.0:
            return self._num_keys
        # probabilities are sorted descending; find the last index >= threshold
        above = np.searchsorted(-self._probabilities, -threshold, side="right")
        return int(above)

    def expected_counts(self, num_messages: int) -> np.ndarray:
        """Expected absolute count per rank for a stream of ``num_messages``."""
        if num_messages < 0:
            raise ConfigurationError(
                f"num_messages must be >= 0, got {num_messages}"
            )
        return self._probabilities * num_messages

    def sample_ranks(self, num_messages: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_messages`` key ranks (1-based) i.i.d. from the distribution."""
        if num_messages < 0:
            raise ConfigurationError(
                f"num_messages must be >= 0, got {num_messages}"
            )
        return rng.choice(
            np.arange(1, self._num_keys + 1), size=num_messages, p=self._probabilities
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfDistribution(exponent={self._exponent}, num_keys={self._num_keys})"


@lru_cache(maxsize=256)
def zipf_probabilities(exponent: float, num_keys: int) -> tuple[float, ...]:
    """Cached probability vector; convenient for repeated analytical sweeps."""
    return tuple(ZipfDistribution(exponent, num_keys).probabilities.tolist())


def empirical_probabilities(counts: Sequence[int]) -> np.ndarray:
    """Normalise raw key counts into a descending probability vector.

    Used to feed measured workloads (e.g. the synthetic Wikipedia-like trace)
    into the analytical routines that expect a distribution.
    """
    array = np.asarray(sorted(counts, reverse=True), dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("counts must not be empty")
    if np.any(array < 0):
        raise ConfigurationError("counts must be non-negative")
    total = array.sum()
    if total == 0:
        raise ConfigurationError("counts must not all be zero")
    return array / total
