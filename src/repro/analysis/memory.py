"""Memory-overhead models from Section IV-B (Figures 5 and 6).

With unitary per-key state, the worker-side memory of each scheme is:

* PKG — every key is split over at most two workers, but a key that occurs
  fewer than twice cannot occupy two workers:
  ``mem_PKG = sum_k min(f_k, 2)`` (``f_k`` = absolute count of key k);
* Shuffle grouping — a key may reach every worker:
  ``mem_SG = sum_k min(f_k, n)``;
* D-Choices — head keys occupy at most ``d`` workers, tail keys at most two:
  ``mem_DC = sum_{k in H} min(f_k, d) + sum_{k not in H} min(f_k, 2)``;
* W-Choices / Round-Robin — head keys occupy up to ``n`` workers:
  ``mem_WC = sum_{k in H} min(f_k, n) + sum_{k not in H} min(f_k, 2)``.

The figures in the paper plot D-C and W-C memory *relative* to PKG
(Figure 5) and to SG (Figure 6): ``100 * (mem_X - mem_ref) / mem_ref``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.choices import ChoicesSolution, find_optimal_choices
from repro.analysis.head import head_cardinality
from repro.analysis.zipf import ZipfDistribution
from repro.exceptions import AnalysisError


def _as_counts(counts: Sequence[float]) -> np.ndarray:
    array = np.asarray(counts, dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("counts must not be empty")
    if np.any(array < 0):
        raise AnalysisError("counts must be non-negative")
    return array


def memory_pkg(counts: Sequence[float]) -> float:
    """``sum_k min(f_k, 2)``."""
    return float(np.minimum(_as_counts(counts), 2.0).sum())


def memory_shuffle(counts: Sequence[float], num_workers: int) -> float:
    """``sum_k min(f_k, n)``."""
    if num_workers < 1:
        raise AnalysisError(f"num_workers must be >= 1, got {num_workers}")
    return float(np.minimum(_as_counts(counts), float(num_workers)).sum())


def memory_dchoices(
    counts: Sequence[float],
    head_size: int,
    num_choices: int,
) -> float:
    """``sum_{head} min(f_k, d) + sum_{tail} min(f_k, 2)``.

    ``counts`` must be sorted in non-increasing order so the first
    ``head_size`` entries are the head.
    """
    array = _as_counts(counts)
    if head_size < 0 or head_size > array.size:
        raise AnalysisError(
            f"head_size {head_size} outside [0, {array.size}]"
        )
    if num_choices < 2:
        raise AnalysisError(f"num_choices must be >= 2, got {num_choices}")
    head = array[:head_size]
    tail = array[head_size:]
    return float(
        np.minimum(head, float(num_choices)).sum() + np.minimum(tail, 2.0).sum()
    )


def memory_wchoices(counts: Sequence[float], head_size: int, num_workers: int) -> float:
    """``sum_{head} min(f_k, n) + sum_{tail} min(f_k, 2)``."""
    return memory_dchoices(counts, head_size, max(2, num_workers))


def relative_overhead(memory: float, reference: float) -> float:
    """Percentage overhead of ``memory`` with respect to ``reference``."""
    if reference <= 0.0:
        raise AnalysisError(f"reference memory must be positive, got {reference}")
    return 100.0 * (memory - reference) / reference


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """All memory figures for one (distribution, n, theta, epsilon) setting."""

    num_workers: int
    theta: float
    epsilon: float
    head_size: int
    num_choices: int
    switched_to_wchoices: bool
    pkg: float
    shuffle: float
    dchoices: float
    wchoices: float

    @property
    def dchoices_vs_pkg(self) -> float:
        """D-Choices overhead relative to PKG, in percent (Figure 5)."""
        return relative_overhead(self.dchoices, self.pkg)

    @property
    def wchoices_vs_pkg(self) -> float:
        """W-Choices overhead relative to PKG, in percent (Figure 5)."""
        return relative_overhead(self.wchoices, self.pkg)

    @property
    def dchoices_vs_shuffle(self) -> float:
        """D-Choices overhead relative to SG, in percent (Figure 6)."""
        return relative_overhead(self.dchoices, self.shuffle)

    @property
    def wchoices_vs_shuffle(self) -> float:
        """W-Choices overhead relative to SG, in percent (Figure 6)."""
        return relative_overhead(self.wchoices, self.shuffle)


def memory_model_for_zipf(
    exponent: float,
    num_keys: int,
    num_messages: int,
    num_workers: int,
    theta: float | None = None,
    epsilon: float = 1e-4,
) -> MemoryModel:
    """Build the full memory model for a Zipf workload (Figures 5 and 6).

    ``theta`` defaults to the paper's ``1/(5n)``.
    """
    from repro.analysis.bounds import theta_range  # local import avoids a cycle

    if num_messages < 1:
        raise AnalysisError(f"num_messages must be >= 1, got {num_messages}")
    if theta is None:
        theta = theta_range(num_workers).default
    distribution = ZipfDistribution(exponent, num_keys)
    counts = distribution.expected_counts(num_messages)
    head_size = head_cardinality(distribution, theta)
    head = distribution.probabilities[:head_size]
    tail_mass = distribution.tail_mass(head_size)
    solution: ChoicesSolution = find_optimal_choices(
        head, tail_mass, num_workers, epsilon
    )
    return MemoryModel(
        num_workers=num_workers,
        theta=theta,
        epsilon=epsilon,
        head_size=head_size,
        num_choices=solution.num_choices,
        switched_to_wchoices=solution.use_w_choices,
        pkg=memory_pkg(counts),
        shuffle=memory_shuffle(counts, num_workers),
        dchoices=memory_dchoices(counts, head_size, max(2, solution.num_choices)),
        wchoices=memory_wchoices(counts, head_size, num_workers),
    )
