"""Choosing ``d`` for D-Choices (Proposition 4.1 and FINDOPTIMALCHOICES).

The optimisation problem of Section IV-A is::

    minimize   d * |H|
    subject to E[I(m)] <= epsilon

Proposition 4.1 turns the constraint into a family of *necessary* conditions,
one per prefix of the head of length ``h``::

    sum_{i<=h} p_i
      + (b_h/n)^d * sum_{h<i<=|H|} p_i
      + (b_h/n)^2 * sum_{i>|H|} p_i
      <= b_h * (1/n + epsilon)            for all k_h in H,

    where b_h = n - n*((n-1)/n)^(h*d)     (Appendix A).

``find_optimal_choices`` starts from the trivial lower bound
``d = ceil(p1 * n)`` (the hottest key needs at least ``p1*n`` workers) and
increases ``d`` until every prefix constraint is satisfied.  If no ``d < n``
works, the caller should switch to W-Choices; we signal that by returning
``d = n`` with ``use_w_choices=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import AnalysisError

#: Default imbalance tolerance used throughout the paper's evaluation.
DEFAULT_EPSILON = 1e-4


def expected_worker_set_size(num_workers: int, num_choices: int, prefix_length: int = 1) -> float:
    """Expected number of distinct workers hit by ``prefix_length * num_choices`` throws.

    This is ``b_h = n - n*((n-1)/n)^(h*d)`` from Appendix A: placing ``h*d``
    items uniformly at random (with replacement) into ``n`` slots leaves
    ``n*((n-1)/n)^(h*d)`` slots empty in expectation.
    """
    if num_workers < 1:
        raise AnalysisError(f"num_workers must be >= 1, got {num_workers}")
    if num_choices < 0:
        raise AnalysisError(f"num_choices must be >= 0, got {num_choices}")
    if prefix_length < 0:
        raise AnalysisError(f"prefix_length must be >= 0, got {prefix_length}")
    n = float(num_workers)
    throws = prefix_length * num_choices
    return n - n * ((n - 1.0) / n) ** throws


def prefix_constraint_satisfied(
    head: Sequence[float],
    tail_mass: float,
    num_workers: int,
    num_choices: int,
    prefix_length: int,
    epsilon: float = DEFAULT_EPSILON,
) -> bool:
    """Check the Proposition 4.1 constraint for one prefix of the head.

    Parameters
    ----------
    head:
        Probabilities ``p_1 >= p_2 >= ... >= p_|H|`` of the head keys.
    tail_mass:
        ``sum_{i > |H|} p_i`` — the probability mass of the tail.
    num_workers:
        Deployment size ``n``.
    num_choices:
        Candidate value of ``d`` for head keys.
    prefix_length:
        The prefix length ``h`` (1-based, ``1 <= h <= |H|``).
    epsilon:
        Imbalance tolerance.
    """
    if not 1 <= prefix_length <= len(head):
        raise AnalysisError(
            f"prefix_length {prefix_length} outside [1, {len(head)}]"
        )
    n = float(num_workers)
    b_h = expected_worker_set_size(num_workers, num_choices, prefix_length)
    prefix_mass = float(sum(head[:prefix_length]))
    rest_of_head = float(sum(head[prefix_length:]))
    ratio = b_h / n
    lhs = (
        prefix_mass
        + (ratio ** num_choices) * rest_of_head
        + (ratio ** 2) * tail_mass
    )
    rhs = b_h * (1.0 / n + epsilon)
    return lhs <= rhs


def all_constraints_satisfied(
    head: Sequence[float],
    tail_mass: float,
    num_workers: int,
    num_choices: int,
    epsilon: float = DEFAULT_EPSILON,
) -> bool:
    """Check every prefix constraint ``h = 1 .. |H|``."""
    return all(
        prefix_constraint_satisfied(
            head, tail_mass, num_workers, num_choices, prefix_length, epsilon
        )
        for prefix_length in range(1, len(head) + 1)
    )


@dataclass(frozen=True, slots=True)
class ChoicesSolution:
    """Result of the FINDOPTIMALCHOICES computation.

    Attributes
    ----------
    num_choices:
        The selected ``d``.  Equal to ``num_workers`` when the solver decided
        that D-Choices degenerates into W-Choices.
    use_w_choices:
        True when no ``d < n`` satisfied the constraints, i.e. the system
        should switch to W-Choices for the head.
    head_cardinality:
        ``|H|`` used for the computation.
    cost:
        The objective value ``d * |H|`` (replication/aggregation overhead).
    """

    num_choices: int
    use_w_choices: bool
    head_cardinality: int

    @property
    def cost(self) -> int:
        return self.num_choices * self.head_cardinality


def lower_bound_choices(p1: float, num_workers: int) -> int:
    """The simple lower bound ``d >= p1 * n`` (the hottest key alone).

    The load of the hottest key must fit in its ``d`` workers:
    ``p1 <= d/n`` hence ``d >= p1 * n``.  Always at least 2 because the tail
    already uses two choices and the head must not use fewer.
    """
    if not 0.0 <= p1 <= 1.0:
        raise AnalysisError(f"p1 must be in [0, 1], got {p1}")
    if num_workers < 1:
        raise AnalysisError(f"num_workers must be >= 1, got {num_workers}")
    return max(2, int(math.ceil(p1 * num_workers)))


def find_optimal_choices(
    head: Sequence[float],
    tail_mass: float,
    num_workers: int,
    epsilon: float = DEFAULT_EPSILON,
) -> ChoicesSolution:
    """Compute the smallest ``d`` satisfying the Proposition 4.1 constraints.

    Parameters
    ----------
    head:
        Estimated probabilities of the head keys, sorted descending.  May be
        empty, in which case two choices suffice (``d = 2``).
    tail_mass:
        Probability mass of all non-head keys.
    num_workers:
        Deployment size ``n``.
    epsilon:
        Imbalance tolerance (paper default ``1e-4``).

    Returns
    -------
    ChoicesSolution
        ``num_choices`` is the minimal feasible ``d`` found by scanning
        upward from the lower bound, or ``n`` with ``use_w_choices=True``
        when no ``d < n`` is feasible.
    """
    if num_workers < 1:
        raise AnalysisError(f"num_workers must be >= 1, got {num_workers}")
    if epsilon < 0.0:
        raise AnalysisError(f"epsilon must be >= 0, got {epsilon}")
    if tail_mass < 0.0 or tail_mass > 1.0 + 1e-9:
        raise AnalysisError(f"tail_mass must be in [0, 1], got {tail_mass}")
    head = list(head)
    if any(p < 0.0 for p in head):
        raise AnalysisError("head probabilities must be non-negative")
    if head and any(
        head[i] < head[i + 1] - 1e-12 for i in range(len(head) - 1)
    ):
        head = sorted(head, reverse=True)

    if not head:
        return ChoicesSolution(num_choices=2, use_w_choices=False, head_cardinality=0)

    start = lower_bound_choices(head[0], num_workers)
    for candidate in range(start, num_workers):
        if all_constraints_satisfied(head, tail_mass, num_workers, candidate, epsilon):
            return ChoicesSolution(
                num_choices=candidate,
                use_w_choices=False,
                head_cardinality=len(head),
            )
    return ChoicesSolution(
        num_choices=num_workers,
        use_w_choices=True,
        head_cardinality=len(head),
    )


def minimal_feasible_choices_empirical(
    imbalance_by_d: Sequence[tuple[int, float]],
    target_imbalance: float,
) -> int | None:
    """Smallest ``d`` whose measured imbalance is within ``target_imbalance``.

    Used by the Figure 9 experiment: the empirical optimum is the smallest
    ``d`` for which running Greedy-d on the head matches the imbalance of
    W-Choices.  ``imbalance_by_d`` holds ``(d, measured imbalance)`` pairs.
    Returns ``None`` when no candidate meets the target.
    """
    feasible = [d for d, imbalance in imbalance_by_d if imbalance <= target_imbalance]
    return min(feasible) if feasible else None
