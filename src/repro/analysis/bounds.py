"""PKG imbalance bounds and the head-threshold range they induce.

Section III-A of the paper derives the range of useful thresholds from the
original PKG analysis (Nasir et al., ICDE 2015):

* if ``p1 > 2/n`` the expected imbalance is lower-bounded by
  ``(p1/2 - 1/n) * m`` — it grows linearly with the stream length, i.e. PKG
  breaks down; hence every key above ``2/n`` must be in the head
  (``theta <= 2/n``);
* if ``p1 <= 1/(5n)`` PKG's imbalance is bounded with probability at least
  ``1 - 1/n``; keys below that frequency never need special treatment
  (``theta >= 1/(5n)``).

The default threshold used throughout the evaluation is the conservative end
of the range, ``theta = 1/(5n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AnalysisError


@dataclass(frozen=True, slots=True)
class ThetaRange:
    """Admissible range of head thresholds for a deployment of ``n`` workers."""

    lower: float
    upper: float
    default: float

    def clamp(self, theta: float) -> float:
        """Clamp an arbitrary threshold into the admissible range."""
        return min(max(theta, self.lower), self.upper)

    def __contains__(self, theta: object) -> bool:
        if not isinstance(theta, (int, float)):
            return False
        return self.lower <= float(theta) <= self.upper


def theta_range(num_workers: int) -> ThetaRange:
    """The threshold range ``[1/(5n), 2/n]`` with the paper's default ``1/(5n)``."""
    if num_workers < 1:
        raise AnalysisError(f"num_workers must be >= 1, got {num_workers}")
    lower = 1.0 / (5.0 * num_workers)
    upper = 2.0 / num_workers
    return ThetaRange(lower=lower, upper=upper, default=lower)


def pkg_safe_threshold(num_workers: int) -> float:
    """Frequency below which PKG alone balances the key (``1/(5n)``)."""
    return theta_range(num_workers).lower


def pkg_breaks_down(p1: float, num_workers: int) -> bool:
    """True when the hottest key exceeds the capacity of two workers (``p1 > 2/n``)."""
    if not 0.0 <= p1 <= 1.0:
        raise AnalysisError(f"p1 must be in [0, 1], got {p1}")
    if num_workers < 1:
        raise AnalysisError(f"num_workers must be >= 1, got {num_workers}")
    return p1 > 2.0 / num_workers


def pkg_imbalance_lower_bound(p1: float, num_workers: int, num_messages: int) -> float:
    """Lower bound on PKG's expected *absolute* imbalance when ``p1 > 2/n``.

    The paper states that for ``p1 > 2/n`` the expected imbalance at time
    ``m`` is at least ``(p1/2 - 1/n) * m``.  Returns 0 when PKG does not break
    down, because in that regime the bound does not apply.
    """
    if num_messages < 0:
        raise AnalysisError(f"num_messages must be >= 0, got {num_messages}")
    if not pkg_breaks_down(p1, num_workers):
        return 0.0
    return (p1 / 2.0 - 1.0 / num_workers) * num_messages


def max_workers_for_pkg(p1: float) -> int:
    """Largest deployment for which PKG can still absorb the hottest key.

    Inverts ``p1 <= 2/n``: PKG needs ``n <= 2/p1``.  For a Zipf(2.0) stream
    (``p1`` close to 0.6) this gives 3 workers, matching the observation in
    the paper's introduction.
    """
    if not 0.0 < p1 <= 1.0:
        raise AnalysisError(f"p1 must be in (0, 1], got {p1}")
    return max(1, int(2.0 / p1))
