"""Analytical machinery from Section IV of the paper.

* :mod:`repro.analysis.zipf` — finite-support Zipf distributions (the ZF
  workloads) and helpers to reason about their head/tail mass.
* :mod:`repro.analysis.head` — the head threshold ``theta`` and the head set
  ``H = {k : p_k >= theta}`` (Section III-A, Figure 3).
* :mod:`repro.analysis.choices` — the expected worker-set size ``b_h``
  (Appendix A), the prefix constraints of Proposition 4.1 and the
  ``find_optimal_choices`` solver used by D-Choices (Figure 4, Figure 9).
* :mod:`repro.analysis.memory` — memory-overhead models for PKG, SG,
  D-Choices and W-Choices (Section IV-B, Figures 5 and 6).
* :mod:`repro.analysis.bounds` — the PKG imbalance bounds that motivate the
  threshold range ``1/(5n) <= theta <= 2/n``.
"""

from repro.analysis.bounds import (
    pkg_breaks_down,
    pkg_imbalance_lower_bound,
    pkg_safe_threshold,
    theta_range,
)
from repro.analysis.choices import (
    ChoicesSolution,
    expected_worker_set_size,
    find_optimal_choices,
    prefix_constraint_satisfied,
)
from repro.analysis.head import head_cardinality, head_keys, head_mass, select_threshold
from repro.analysis.memory import (
    MemoryModel,
    memory_dchoices,
    memory_pkg,
    memory_shuffle,
    memory_wchoices,
    relative_overhead,
)
from repro.analysis.queueing import (
    ClusterModel,
    bottleneck_queue_latency_ms,
    max_load_share,
    sustainable_throughput,
)
from repro.analysis.zipf import ZipfDistribution

__all__ = [
    "ChoicesSolution",
    "ClusterModel",
    "MemoryModel",
    "ZipfDistribution",
    "bottleneck_queue_latency_ms",
    "max_load_share",
    "sustainable_throughput",
    "expected_worker_set_size",
    "find_optimal_choices",
    "head_cardinality",
    "head_keys",
    "head_mass",
    "memory_dchoices",
    "memory_pkg",
    "memory_shuffle",
    "memory_wchoices",
    "pkg_breaks_down",
    "pkg_imbalance_lower_bound",
    "pkg_safe_threshold",
    "prefix_constraint_satisfied",
    "relative_overhead",
    "select_threshold",
    "theta_range",
]
