"""Back-of-the-envelope queueing model linking imbalance to cluster metrics.

The paper's Q4 experiments show that load imbalance translates into lower
throughput and higher latency because the most loaded worker becomes a
bottleneck.  This module captures that mechanism analytically for the
deterministic-service cluster of :mod:`repro.cluster`:

* a worker that receives a fraction ``phi`` of an input rate ``lambda`` is
  stable only while ``phi * lambda < mu`` (``mu`` = 1/service time);
* therefore the sustainable throughput of the whole cluster is
  ``min(lambda, mu / phi_max)`` where ``phi_max`` is the share of the most
  loaded worker — which is exactly ``1/n + I(m)`` by the definition of the
  imbalance metric;
* once a worker saturates, its queue grows until the senders' in-flight
  windows are exhausted, so the waiting time approaches
  ``(total credit routed to that worker) * service_time``.

These formulas are used by tests to cross-check the discrete-event simulator
and are handy for quick what-if questions ("how much throughput do I lose at
imbalance 0.1 on 80 workers?") without running it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AnalysisError


@dataclass(frozen=True, slots=True)
class ClusterModel:
    """Static description of a cluster for the analytical model."""

    num_workers: int
    service_time_ms: float
    #: Aggregate input rate the sources can generate (messages per second).
    offered_load_per_second: float

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise AnalysisError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.service_time_ms <= 0.0:
            raise AnalysisError(
                f"service_time_ms must be positive, got {self.service_time_ms}"
            )
        if self.offered_load_per_second <= 0.0:
            raise AnalysisError(
                "offered_load_per_second must be positive, got "
                f"{self.offered_load_per_second}"
            )

    @property
    def worker_capacity_per_second(self) -> float:
        """Messages per second one worker can process."""
        return 1000.0 / self.service_time_ms

    @property
    def cluster_capacity_per_second(self) -> float:
        """Aggregate capacity with perfectly balanced load."""
        return self.num_workers * self.worker_capacity_per_second


def max_load_share(imbalance: float, num_workers: int) -> float:
    """Share of traffic on the most loaded worker: ``1/n + I(m)``."""
    if num_workers < 1:
        raise AnalysisError(f"num_workers must be >= 1, got {num_workers}")
    if not 0.0 <= imbalance <= 1.0:
        raise AnalysisError(f"imbalance must be in [0, 1], got {imbalance}")
    return min(1.0, 1.0 / num_workers + imbalance)


def sustainable_throughput(model: ClusterModel, imbalance: float) -> float:
    """Maximum input rate the cluster can absorb at the given imbalance.

    The bottleneck worker receives ``phi_max`` of the input, so the cluster
    saturates when ``phi_max * rate`` reaches one worker's capacity; below
    that, the cluster simply forwards the offered load.
    """
    share = max_load_share(imbalance, model.num_workers)
    bottleneck_limit = model.worker_capacity_per_second / share
    return min(model.offered_load_per_second, bottleneck_limit)


def throughput_ratio(model: ClusterModel, imbalance_a: float, imbalance_b: float) -> float:
    """Throughput of scenario A relative to scenario B (e.g. D-C vs. PKG)."""
    throughput_b = sustainable_throughput(model, imbalance_b)
    if throughput_b == 0.0:
        raise AnalysisError("reference scenario has zero throughput")
    return sustainable_throughput(model, imbalance_a) / throughput_b


def bottleneck_queue_latency_ms(
    model: ClusterModel,
    imbalance: float,
    total_in_flight: int,
) -> float:
    """Steady-state latency bound at the bottleneck worker, in milliseconds.

    If the most loaded worker is saturated, the senders keep it supplied with
    work up to their aggregate in-flight window; a message arriving at the
    back of that queue waits for the whole backlog.  If the worker is not
    saturated the latency is just the service time.

    ``total_in_flight`` is the total credit the sources may have outstanding
    (``num_sources * max_pending_per_source`` in the cluster simulator).
    The returned value is an *upper bound* on the average waiting time of a
    long run: at marginal saturation a finite stream ends before the backlog
    fills the whole credit window, so measured latencies sit below it.
    """
    if total_in_flight < 1:
        raise AnalysisError(f"total_in_flight must be >= 1, got {total_in_flight}")
    share = max_load_share(imbalance, model.num_workers)
    arrival_rate = share * model.offered_load_per_second
    if arrival_rate <= model.worker_capacity_per_second:
        return model.service_time_ms
    # Saturated: the backlog converges to (roughly) the share of the global
    # in-flight window that targets this worker.
    backlog = share * total_in_flight
    return max(model.service_time_ms, backlog * model.service_time_ms)


def latency_ratio(
    model: ClusterModel,
    imbalance_a: float,
    imbalance_b: float,
    total_in_flight: int,
) -> float:
    """Bottleneck latency of scenario A relative to scenario B."""
    latency_b = bottleneck_queue_latency_ms(model, imbalance_b, total_in_flight)
    return bottleneck_queue_latency_ms(model, imbalance_a, total_in_flight) / latency_b
