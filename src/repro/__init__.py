"""repro — reproduction of "When Two Choices Are not Enough: Balancing at
Scale in Distributed Stream Processing" (Nasir et al., ICDE 2016).

The package implements the paper's load-balancing algorithms (D-Choices and
W-Choices), every baseline they are compared against (key grouping, shuffle
grouping, Partial Key Grouping, round-robin head placement), the substrates
they rely on (SpaceSaving heavy-hitter sketches, seeded hash families), the
analytical machinery of Section IV (the ``d`` solver and memory models) and
two simulators: a stream-partitioning simulator for the imbalance studies
and a discrete-event cluster simulator for the throughput/latency studies.

Quickstart
----------
>>> from repro import ZipfWorkload, run_simulation
>>> workload = ZipfWorkload(exponent=1.5, num_keys=1000, num_messages=20_000)
>>> result = run_simulation(workload, scheme="D-C", num_workers=20)
>>> result.final_imbalance < 0.05
True
"""

from repro._version import __version__
from repro.analysis import (
    ChoicesSolution,
    ZipfDistribution,
    expected_worker_set_size,
    find_optimal_choices,
    theta_range,
)
from repro.analysis.memory import memory_model_for_zipf
from repro.cluster import ClusterResult, ClusterTopology, run_cluster_experiment
from repro.dataflow import Topology, TopologyResult, run_topology
from repro.elasticity import (
    MigrationReport,
    RescalePlan,
    WorkerFail,
    WorkerJoin,
    WorkerLeave,
)
from repro.exceptions import (
    AnalysisError,
    ClusterRuntimeError,
    ConfigurationError,
    PartitioningError,
    ReproError,
    ScenarioError,
    SimulationError,
    SketchError,
    WorkerCrashError,
    WorkloadError,
)
from repro.execution import ExecutionMode
from repro.operators import (
    AverageAggregator,
    CountAggregator,
    ReconciliationSink,
    SumAggregator,
    TopKAggregator,
    TumblingWindowAssigner,
    WindowedAggregator,
    reconcile,
)
from repro.partitioning import (
    ConsistentGrouping,
    DChoices,
    FixedDHead,
    GreedyD,
    KeyGrouping,
    PartialKeyGrouping,
    Partitioner,
    RoundRobinHead,
    ShuffleGrouping,
    WChoices,
    available_schemes,
    create_partitioner,
)
from repro.simulation import SimulationConfig, SimulationResult, run_simulation, sweep
from repro.sketches import (
    CountMinSketch,
    DistributedHeavyHitters,
    FrequencyEstimator,
    LossyCounting,
    MisraGries,
    SpaceSaving,
)
from repro.types import DatasetStats, LoadSnapshot, Message, RoutingDecision
from repro.scenarios import ScenarioSpec, ScenarioWorkload, build_workload, list_scenarios
from repro.workloads import (
    CashtagLikeWorkload,
    DriftingZipfWorkload,
    FileWorkload,
    TwitterLikeWorkload,
    WikipediaLikeWorkload,
    Workload,
    ZipfWorkload,
    derive_seed,
    load_dataset,
)

__all__ = [
    "__version__",
    # exceptions
    "AnalysisError",
    "ClusterRuntimeError",
    "ConfigurationError",
    "PartitioningError",
    "ReproError",
    "ScenarioError",
    "SimulationError",
    "SketchError",
    "WorkerCrashError",
    "WorkloadError",
    # types
    "DatasetStats",
    "LoadSnapshot",
    "Message",
    "RoutingDecision",
    # sketches
    "CountMinSketch",
    "DistributedHeavyHitters",
    "FrequencyEstimator",
    "LossyCounting",
    "MisraGries",
    "SpaceSaving",
    # operators / dataflow
    "AverageAggregator",
    "CountAggregator",
    "ReconciliationSink",
    "SumAggregator",
    "TopKAggregator",
    "Topology",
    "TopologyResult",
    "TumblingWindowAssigner",
    "WindowedAggregator",
    "reconcile",
    "run_topology",
    # partitioning
    "ConsistentGrouping",
    "DChoices",
    "FixedDHead",
    "GreedyD",
    "KeyGrouping",
    "PartialKeyGrouping",
    "Partitioner",
    "RoundRobinHead",
    "ShuffleGrouping",
    "WChoices",
    "available_schemes",
    "create_partitioner",
    # analysis
    "ChoicesSolution",
    "ZipfDistribution",
    "expected_worker_set_size",
    "find_optimal_choices",
    "memory_model_for_zipf",
    "theta_range",
    # workloads
    "CashtagLikeWorkload",
    "DriftingZipfWorkload",
    "FileWorkload",
    "TwitterLikeWorkload",
    "WikipediaLikeWorkload",
    "Workload",
    "ZipfWorkload",
    "derive_seed",
    "load_dataset",
    # scenarios
    "ScenarioSpec",
    "ScenarioWorkload",
    "build_workload",
    "list_scenarios",
    # elasticity
    "MigrationReport",
    "RescalePlan",
    "WorkerFail",
    "WorkerJoin",
    "WorkerLeave",
    # execution
    "ExecutionMode",
    # simulation
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "sweep",
    # cluster
    "ClusterResult",
    "ClusterTopology",
    "run_cluster_experiment",
    # suite (lazy, see __getattr__)
    "ResultsStore",
    "run_suite",
]

#: Importing the suite pulls in every experiment driver module via the
#: registry; resolve these two names lazily (PEP 562) so plain library use
#: (partitioners, sketches, simulation) does not pay that import cost.
_LAZY_SUITE_EXPORTS = frozenset({"ResultsStore", "run_suite"})


def __getattr__(name: str):
    if name in _LAZY_SUITE_EXPORTS:
        from repro import suite

        return getattr(suite, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
