"""Command-line interface: ``repro-slb``.

Three sub-commands:

* ``list`` — show the available experiments (one per table/figure);
* ``run <experiment-id>`` — run one experiment and print its rows
  (``--scale paper`` uses the paper-scale parameters, default is ``quick``);
* ``simulate`` — run an ad-hoc simulation of one scheme on a Zipf workload
  and print the imbalance (handy for quick what-if questions).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.common import print_result
from repro.experiments.registry import get_experiment, list_experiments, run_experiment
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-slb",
        description=(
            "Reproduction toolkit for 'When Two Choices Are not Enough' "
            "(Nasir et al., ICDE 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig1, fig13, table1")
    run_parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="parameter scale (default: quick)",
    )
    run_parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="also write the rows to PATH (.csv or .json)",
    )

    sim_parser = subparsers.add_parser(
        "simulate", help="ad-hoc simulation of one scheme on a Zipf stream"
    )
    sim_parser.add_argument("--scheme", default="D-C", help="grouping scheme name")
    sim_parser.add_argument("--workers", type=int, default=50)
    sim_parser.add_argument("--sources", type=int, default=5)
    sim_parser.add_argument("--skew", type=float, default=1.5)
    sim_parser.add_argument("--keys", type=int, default=10_000)
    sim_parser.add_argument("--messages", type=int, default=500_000)
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument(
        "--batch-size",
        type=int,
        default=1024,
        help=(
            "messages routed per route_batch call on the fast path; "
            "results are identical for every value, 1 forces scalar "
            "routing (default: 1024)"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-slb`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            entry = get_experiment(experiment_id)
            print(f"{experiment_id:8s}  {entry.title}")
        return 0

    if args.command == "run":
        result = run_experiment(args.experiment, scale=args.scale)
        print_result(result)
        if args.export:
            from repro.reporting.export import write_result

            written = write_result(result, args.export)
            print(f"rows written to {written}")
        return 0

    if args.command == "simulate":
        workload = ZipfWorkload(
            exponent=args.skew,
            num_keys=args.keys,
            num_messages=args.messages,
            seed=args.seed,
        )
        result = run_simulation(
            workload,
            scheme=args.scheme,
            num_workers=args.workers,
            num_sources=args.sources,
            seed=args.seed,
            batch_size=args.batch_size,
        )
        for name, value in result.summary().items():
            print(f"{name}: {value}")
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
