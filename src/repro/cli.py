"""Command-line interface: ``repro-slb``.

Six sub-commands:

* ``list`` — show the available experiments (one per paper figure/table);
* ``run <experiment-id>`` — run one experiment and print its rows
  (``--scale tiny|quick|paper``, default ``quick``; ``--batch-size``
  overrides the batched-execution chunk size where the config has one);
* ``simulate`` — ad-hoc simulation of one grouping scheme on a Zipf
  workload (handy for quick what-if questions); ``--rescale
  "join@5000,leave@12000,fail@15000"`` replays an elastic worker schedule
  mid-stream and reports the migration costs;
* ``scenario`` — inspect and run the scenario catalog: ``scenario list``
  names the cataloged traffic patterns, ``scenario show <name>`` prints
  one spec (pattern, seeds, render, expected bounds), and ``scenario run
  <name>`` simulates it under one scheme and checks the realised metrics
  against the spec's ``expected:`` block (exit 1 on violation);
* ``cluster-run`` — route one Zipf stream through the real multi-process
  cluster runtime (source + N worker processes over shared-memory rings)
  and report aggregate throughput, per-worker counts and imbalance;
  ``--validate`` additionally checks the realised imbalance against the
  simulator's prediction (exit 1 on deviation beyond tolerance);
* ``suite`` — orchestrate the whole reproduction: ``suite run`` executes
  every registered experiment across a process pool with content-addressed
  caching under ``results/``, ``suite report`` summarises the store, and
  ``suite clean`` empties it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.execution import ExecutionMode
from repro.experiments.common import print_result
from repro.experiments.descriptor import SCALES
from repro.experiments.registry import get_experiment, list_experiments
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

#: Help text shared by every ``--mode`` flag.
_MODE_HELP = (
    "execution mode spec: scalar, batched[:N] or columnar[:N] "
    "(e.g. columnar:4096); results are identical for every mode, only "
    "the throughput changes"
)


def _mode_from_args(
    mode: str | None, batch_size: int | None
) -> ExecutionMode | None:
    """Resolve the CLI's ``--mode`` / legacy ``--batch-size`` flags.

    ``--mode`` wins; passing both is ambiguous and rejected (exit 2, like
    any argparse usage error).  Returns ``None`` when neither flag was
    given so callers can keep their own default.
    """
    if mode is not None and batch_size is not None:
        print(
            "error: pass either --mode or --batch-size, not both",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if mode is not None:
        return ExecutionMode.coerce(mode)
    if batch_size is None:
        return None
    if batch_size == 1:
        return ExecutionMode.scalar()
    return ExecutionMode.batched(batch_size)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-slb",
        description=(
            "Reproduction toolkit for 'When Two Choices Are not Enough' "
            "(Nasir et al., ICDE 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list the available experiments (one per paper figure/table)"
    )

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its rows"
    )
    run_parser.add_argument(
        "experiment", help="experiment id, e.g. fig1, fig13, table1 (see `list`)"
    )
    run_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="quick",
        help=(
            "parameter scale: tiny (smoke test, seconds), quick (the "
            "default, laptop-sized) or paper (the paper's exact parameters)"
        ),
    )
    run_parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="also write the rows to PATH (.csv or .json)",
    )
    run_parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "(deprecated alias of --mode) override the routing/dataflow "
            "batch size of the experiment config (when it has one); "
            "results are identical for every value, 1 forces scalar "
            "execution"
        ),
    )
    run_parser.add_argument("--mode", default=None, help=_MODE_HELP)

    sim_parser = subparsers.add_parser(
        "simulate", help="ad-hoc simulation of one scheme on a Zipf stream"
    )
    sim_parser.add_argument(
        "--scheme",
        default="D-C",
        help=(
            "grouping scheme name from the partitioner registry "
            "(KG, SG, PKG, D-C, W-C, RR, GREEDY-D, FIXED-D, CH, AD); "
            "default: D-C"
        ),
    )
    sim_parser.add_argument(
        "--workers", type=int, default=50,
        help="number of downstream workers n (default: 50)",
    )
    sim_parser.add_argument(
        "--sources", type=int, default=5,
        help="number of independent sources s (default: 5, as in the paper)",
    )
    sim_parser.add_argument(
        "--skew", type=float, default=1.5,
        help="Zipf exponent z of the key distribution (default: 1.5)",
    )
    sim_parser.add_argument(
        "--keys", type=int, default=10_000,
        help="key-space size |K| of the Zipf stream (default: 10000)",
    )
    sim_parser.add_argument(
        "--messages", type=int, default=500_000,
        help="stream length m in messages (default: 500000)",
    )
    sim_parser.add_argument(
        "--seed", type=int, default=0,
        help="base RNG seed for the workload and the schemes (default: 0)",
    )
    sim_parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "(deprecated alias of --mode) messages routed per route_batch "
            "call on the fast path; results are identical for every "
            "value, 1 forces scalar routing (default: 1024)"
        ),
    )
    sim_parser.add_argument("--mode", default=None, help=_MODE_HELP)
    sim_parser.add_argument(
        "--adaptive-policy",
        metavar="SPEC",
        default=None,
        help=(
            "switch-policy knobs for the adaptive scheme (--scheme AD), "
            "e.g. 'ladder=PKG>D-C>W-C,enter_skew=1.5,dwell=8000'; "
            "rejected for static schemes"
        ),
    )
    sim_parser.add_argument(
        "--rescale",
        metavar="SPEC",
        default=None,
        help=(
            "elastic rescale schedule, e.g. "
            "'join@5000,leave@12000,fail@15000' (offsets in messages); "
            "workers join at the next free id, leave/fail retire the "
            "highest id (default: no rescaling)"
        ),
    )
    sim_parser.add_argument(
        "--rescale-policy",
        choices=("rehash", "migrate", "remap"),
        default="migrate",
        help=(
            "how rescale events are executed: stop-the-world re-hash, "
            "incremental migration or candidate-set remap (default: migrate)"
        ),
    )
    sim_parser.add_argument(
        "--migration-window",
        type=int,
        default=1000,
        metavar="N",
        help=(
            "transition window in tuples during which tuples to moved keys "
            "count as misrouted (migrate policy only; default: 1000)"
        ),
    )

    scenario_parser = subparsers.add_parser(
        "scenario",
        help="inspect and run the scenario catalog (seeded traffic patterns)",
    )
    scenario_commands = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_commands.add_parser(
        "list", help="list the cataloged scenarios with their patterns"
    )
    scenario_show = scenario_commands.add_parser(
        "show", help="print one scenario spec (pattern, seeds, expected bounds)"
    )
    scenario_show.add_argument("name", help="scenario name (see `scenario list`)")
    scenario_run = scenario_commands.add_parser(
        "run",
        help=(
            "simulate one scenario under one scheme and check the result "
            "against the spec's expected bounds (exit 1 on violation)"
        ),
    )
    scenario_run.add_argument("name", help="scenario name (see `scenario list`)")
    scenario_run.add_argument(
        "--scheme",
        default="PKG",
        help="grouping scheme to route the scenario with (default: PKG)",
    )
    scenario_run.add_argument(
        "--workers", type=int, default=16,
        help="number of downstream workers n (default: 16)",
    )
    scenario_run.add_argument(
        "--sources", type=int, default=5,
        help="number of independent sources s (default: 5)",
    )
    scenario_run.add_argument(
        "--messages", type=int, default=100_000,
        help="stream length m in messages (default: 100000)",
    )
    scenario_run.add_argument(
        "--keys", type=int, default=5_000,
        help="key-space size |K| of the scenario (default: 5000)",
    )
    scenario_run.add_argument(
        "--seed", type=int, default=None,
        help=(
            "override the scenario's cataloged base seed for an ad-hoc "
            "rerun; component seeds are re-derived, and the expected "
            "bounds are still checked (they are calibrated to hold "
            "across seeds)"
        ),
    )
    scenario_run.add_argument(
        "--batch-size", type=int, default=None,
        help=(
            "(deprecated alias of --mode) messages routed per route_batch "
            "call (default: 1024)"
        ),
    )
    scenario_run.add_argument("--mode", default=None, help=_MODE_HELP)

    cluster_parser = subparsers.add_parser(
        "cluster-run",
        help=(
            "route one Zipf stream through the real multi-process cluster "
            "runtime (shared-memory rings) and report the throughput"
        ),
    )
    cluster_parser.add_argument(
        "--scheme",
        default="PKG",
        help=(
            "grouping scheme name from the partitioner registry "
            "(KG, PKG, D-C, W-C, RR, ...); default: PKG"
        ),
    )
    cluster_parser.add_argument(
        "--workers", type=int, default=4,
        help="number of worker processes n (default: 4)",
    )
    cluster_parser.add_argument(
        "--messages", type=int, default=50_000,
        help="stream length m in messages (default: 50000)",
    )
    cluster_parser.add_argument(
        "--keys", type=int, default=5_000,
        help="key-space size |K| of the Zipf stream (default: 5000)",
    )
    cluster_parser.add_argument(
        "--skew", type=float, default=1.4,
        help="Zipf exponent z of the key distribution (default: 1.4)",
    )
    cluster_parser.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for the workload and the scheme (default: 0)",
    )
    cluster_parser.add_argument(
        "--service-ns", type=int, default=10_000,
        help=(
            "modeled per-message service time in nanoseconds — each worker "
            "blocks this long per message, standing in for an I/O-bound "
            "operator (default: 10000)"
        ),
    )
    cluster_parser.add_argument(
        "--mode", default="columnar:512",
        help=(
            "execution mode spec; the cluster runtime is columnar-only, so "
            "this selects the frame size, e.g. columnar:4096 "
            "(default: columnar:512)"
        ),
    )
    cluster_parser.add_argument(
        "--validate",
        action="store_true",
        help=(
            "also simulate the identical workload and check the realised "
            "run against the prediction: bit-exact delivery on a clean "
            "run, routing match plus exact-once conservation on a "
            "recovered one (exit 1 on violation)"
        ),
    )
    cluster_parser.add_argument(
        "--inject",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault plan, e.g. 'crash@w2:5000,slow@w0:3x' — "
            "kinds crash/hang/slow/delta_drop, '!' suffix re-arms the "
            "fault in every respawned incarnation (see docs/"
            "fault_tolerance.md)"
        ),
    )
    cluster_parser.add_argument(
        "--max-restarts", type=int, default=1,
        help=(
            "supervised respawns allowed per worker slot before its share "
            "is remapped to the survivors (default: 1)"
        ),
    )
    cluster_parser.add_argument(
        "--ring-words", type=int, default=None, metavar="N",
        help=(
            "per-worker ring capacity in int64 words (default: 16384); "
            "small rings backpressure the source, which keeps injected "
            "faults landing mid-stream instead of after a fully buffered "
            "stream has already been scattered"
        ),
    )
    cluster_parser.add_argument(
        "--no-degrade",
        action="store_true",
        help=(
            "fail the run (exit 1) when a worker exhausts its restart "
            "budget instead of degrading onto the survivors"
        ),
    )

    suite_parser = subparsers.add_parser(
        "suite",
        help="orchestrate the full reproduction with caching under results/",
    )
    suite_commands = suite_parser.add_subparsers(dest="suite_command", required=True)

    suite_run = suite_commands.add_parser(
        "run",
        help=(
            "run every registered experiment (or --experiments subset) in "
            "parallel; cells already in the store are cache hits, so an "
            "interrupted run resumes where it stopped"
        ),
    )
    suite_run.add_argument(
        "--scale",
        choices=SCALES,
        default="quick",
        help="parameter scale of every cell (default: quick)",
    )
    suite_run.add_argument(
        "--experiments",
        nargs="+",
        metavar="ID",
        default=None,
        help="subset of experiment ids to run (default: all registered)",
    )
    suite_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes; 1 runs inline, default picks "
            "min(cells, cpu count)"
        ),
    )
    suite_run.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell even when its record is already stored",
    )
    suite_run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "override the routing batch size of every experiment config "
            "that has one; results are identical for any value, so cached "
            "records stay valid"
        ),
    )
    suite_run.add_argument(
        "--results-dir",
        metavar="PATH",
        default=None,
        help="results store location (default: results/)",
    )
    suite_run.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="also write the run summary rows to PATH (.csv or .json)",
    )

    suite_report = suite_commands.add_parser(
        "report", help="summarise the records in the results store"
    )
    suite_report.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="only report records of this scale (default: all)",
    )
    suite_report.add_argument(
        "--charts",
        action="store_true",
        help="also render each experiment's ASCII figure from its rows",
    )
    suite_report.add_argument(
        "--results-dir",
        metavar="PATH",
        default=None,
        help="results store location (default: results/)",
    )
    suite_report.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="also write the summary rows to PATH (.csv or .json)",
    )

    suite_clean = suite_commands.add_parser(
        "clean", help="delete stored records (all, or --experiments subset)"
    )
    suite_clean.add_argument(
        "--experiments",
        nargs="+",
        metavar="ID",
        default=None,
        help="only delete records of these experiment ids (default: all)",
    )
    suite_clean.add_argument(
        "--results-dir",
        metavar="PATH",
        default=None,
        help="results store location (default: results/)",
    )

    return parser


def _scenario_main(args: argparse.Namespace) -> int:
    from repro.exceptions import ScenarioError
    from repro.scenarios.catalog import build_workload, check_result, get_scenario, list_scenarios

    if args.scenario_command == "list":
        for name in list_scenarios():
            spec = get_scenario(name)
            render = spec.render.style
            print(f"{name:20s}  pattern={spec.pattern:18s}  render={render:14s}  {spec.description}")
        return 0

    if args.scenario_command == "show":
        try:
            spec = get_scenario(args.name)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"name: {spec.name}")
        print(f"pattern: {spec.pattern}")
        print(f"seed: {spec.seed}")
        print(f"  truth seed:  {spec.component_seed('truth')}")
        print(f"  render seed: {spec.component_seed('render')}")
        if spec.truth_options:
            print(f"truth options: {dict(spec.truth_options)}")
        print(f"render: {spec.render.style}"
              + (f" {dict(spec.render.options)}" if spec.render.options else ""))
        assert spec.expected is not None  # catalog entries always carry bounds
        print("expected:")
        for bound in spec.expected._BOUND_NAMES:
            value = getattr(spec.expected, bound)
            if value is not None:
                print(f"  {bound}: {value}")
        for scheme, overrides in spec.expected.per_scheme.items():
            print(f"  per_scheme {scheme}: {dict(overrides)}")
        if spec.description:
            print(f"description: {spec.description}")
        return 0

    if args.scenario_command == "run":
        try:
            spec = get_scenario(args.name)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.seed is not None:
            import dataclasses

            spec = dataclasses.replace(spec, seed=args.seed)
        workload = build_workload(spec, num_messages=args.messages, num_keys=args.keys)
        mode = _mode_from_args(args.mode, args.batch_size)
        result = run_simulation(
            workload,
            scheme=args.scheme,
            num_workers=args.workers,
            num_sources=args.sources,
            mode=mode or ExecutionMode.batched(),
        )
        print(f"scenario: {spec.name} ({spec.pattern}), scheme {args.scheme}, "
              f"{args.workers} workers, {args.messages} messages, "
              f"seed {spec.seed}")
        print(f"imbalance: {result.final_imbalance:.6f}")
        print(f"replication: {result.replication_factor:.4f}")
        print(f"p99_load_factor: {result.p99_load_factor:.4f}")
        violations = check_result(spec, result, scheme=args.scheme)
        if violations:
            for violation in violations:
                print(f"VIOLATED {violation}")
            return 1
        print("within expected bounds")
        return 0

    raise AssertionError(
        f"unknown scenario command {args.scenario_command!r}"
    )  # pragma: no cover


#: ``cluster-run`` exit code for a run that *completed*, but only by
#: degrading a worker slot onto the survivors (restart budget exhausted).
#: Distinct from 0 (clean / fully recovered) and 1 (failed) so chaos
#: drills can assert the degradation path precisely.
EXIT_DEGRADED = 3


def _cluster_main(args: argparse.Namespace) -> int:
    from repro.exceptions import ClusterRuntimeError, ConfigurationError
    from repro.runtime import ClusterConfig, run_cluster, validate_against_simulation

    try:
        config = ClusterConfig(
            scheme=args.scheme,
            num_workers=args.workers,
            num_messages=args.messages,
            num_keys=args.keys,
            skew=args.skew,
            seed=args.seed,
            service_ns=args.service_ns,
            mode=args.mode,
            inject=args.inject,
            max_restarts=args.max_restarts,
            degrade_when_exhausted=not args.no_degrade,
            **(
                {"ring_capacity_words": args.ring_words}
                if args.ring_words is not None
                else {}
            ),
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = run_cluster(config)
    except ClusterRuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name, value in result.summary().items():
        print(f"{name}: {value}")
    for line in result.recovery_log:
        print(f"recovery: {line}")
    exit_code = EXIT_DEGRADED if result.degraded else 0
    if not args.validate:
        return exit_code
    report = validate_against_simulation(config, result)
    print(f"simulated_imbalance: {report['simulated_imbalance']:.6f}")
    print(f"imbalance_rel_diff: {report['relative_difference']:.6f}")
    print(f"routing_match_simulation: {report['routing_match']}")
    print(f"delivery_exact: {report['delivery_exact']}")
    print(f"conservation_ok: {report['conservation_ok']}")
    if not report["ok"]:
        what = (
            "recovered run violates routing/conservation checks"
            if report["recovered"]
            else "realised run deviates from the simulator beyond tolerance"
        )
        print(f"VIOLATED {what}")
        return 1
    print(
        "recovered run conserves the stream exactly"
        if report["recovered"]
        else "within simulator tolerance"
    )
    return exit_code


def _suite_main(args: argparse.Namespace) -> int:
    from repro.suite.orchestrator import run_suite
    from repro.suite.report import export_report, render_report
    from repro.suite.store import open_store

    store = open_store(args.results_dir)

    if args.suite_command == "run":
        failures: list = []

        def progress(outcome, done, total) -> None:
            note = f"{outcome.elapsed_seconds:.2f}s"
            if outcome.status == "failed":
                note = outcome.error_summary or "failed"
                failures.append(outcome)
            print(
                f"[{done:2d}/{total}] {outcome.experiment_id:8s} "
                f"{outcome.status:8s} {note}"
            )

        summary = run_suite(
            experiment_ids=args.experiments,
            scale=args.scale,
            jobs=args.jobs,
            store=store,
            force=args.force,
            batch_size=args.batch_size,
            progress=progress,
        )
        print()
        print_result(summary.as_result())
        for outcome in failures:
            print(f"\nfull traceback of {outcome.experiment_id}:\n{outcome.error}")
        if args.export:
            from repro.reporting.export import write_result

            print(f"summary written to {write_result(summary.as_result(), args.export)}")
        return 0 if summary.ok else 1

    if args.suite_command == "report":
        print(render_report(store, scale=args.scale, charts=args.charts))
        if args.export:
            print(f"summary written to {export_report(store, args.export, scale=args.scale)}")
        return 0

    if args.suite_command == "clean":
        removed = store.clear(args.experiments)
        print(f"removed {removed} record(s) from {store.root}/")
        return 0

    raise AssertionError(f"unknown suite command {args.suite_command!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-slb`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            entry = get_experiment(experiment_id)
            print(f"{experiment_id:8s}  {entry.descriptor.artifact:9s}  {entry.title}")
        return 0

    if args.command == "run":
        entry = get_experiment(args.experiment)
        mode = _mode_from_args(args.mode, args.batch_size)
        result = entry.descriptor.run_at(args.scale, mode=mode)
        print_result(result)
        if args.export:
            from repro.reporting.export import write_result

            written = write_result(result, args.export)
            print(f"rows written to {written}")
        return 0

    if args.command == "simulate":
        workload = ZipfWorkload(
            exponent=args.skew,
            num_keys=args.keys,
            num_messages=args.messages,
            seed=args.seed,
        )
        mode = _mode_from_args(args.mode, args.batch_size)
        scheme_options = {}
        if args.adaptive_policy is not None:
            from repro.partitioning.registry import canonical_name

            if canonical_name(args.scheme) != "AD":
                print(
                    "error: --adaptive-policy only applies to --scheme AD",
                    file=sys.stderr,
                )
                return 2
            scheme_options["policy"] = args.adaptive_policy
        result = run_simulation(
            workload,
            scheme=args.scheme,
            num_workers=args.workers,
            num_sources=args.sources,
            seed=args.seed,
            scheme_options=scheme_options,
            mode=mode or ExecutionMode.batched(),
            rescale_plan=args.rescale,
            rescale_policy=args.rescale_policy,
            migration_window=args.migration_window,
        )
        for name, value in result.summary().items():
            print(f"{name}: {value}")
        for switch in result.switch_log:
            kind = "retune" if switch["from_scheme"] == switch["to_scheme"] else "switch"
            print(
                f"{kind} source {switch['source']}@{switch['position']}: "
                f"{switch['from_scheme']}->{switch['to_scheme']}, "
                f"{switch['keys_moved']} keys moved, "
                f"{switch['entries_migrated']} entries migrated"
            )
        if result.migration is not None:
            for record in result.migration.events:
                print(
                    f"rescale {record.kind}@{record.offset}: "
                    f"{record.old_num_workers}->{record.new_num_workers} workers, "
                    f"{record.keys_moved} keys moved, "
                    f"{record.entries_migrated} entries migrated, "
                    f"{record.entries_lost} entries lost, "
                    f"{record.tuples_misrouted} tuples misrouted"
                )
        return 0

    if args.command == "cluster-run":
        return _cluster_main(args)

    if args.command == "scenario":
        return _scenario_main(args)

    if args.command == "suite":
        return _suite_main(args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
