"""Unified execution-mode API for every stream-execution backend.

The library grew three ways to push a stream through a partitioner — the
scalar per-message loop, the batched ``route_batch`` fast path and the
columnar ``route_batch_columnar`` id-array path — and historically each
entry point (``run_simulation``, ``route_stream``, ``run_topology``)
threaded its own ``batch_size=`` / ``columnar=`` knobs.  With the
multi-process cluster runtime (:mod:`repro.runtime`) as a fourth backend
that ad-hoc plumbing stops scaling, so the choice is now one value:

>>> from repro.execution import ExecutionMode
>>> ExecutionMode.scalar()
ExecutionMode(kind='scalar', batch_size=1)
>>> ExecutionMode.batched(2048)
ExecutionMode(kind='batched', batch_size=2048)
>>> ExecutionMode.parse("columnar:8192")
ExecutionMode(kind='columnar', batch_size=8192)

Every entry point accepts ``mode=`` (an :class:`ExecutionMode` or a spec
string) and the legacy ``batch_size=`` / ``columnar=`` keyword arguments
keep working as deprecated aliases — byte-identical results, plus a
:class:`DeprecationWarning`.  The cluster runtime consumes the same object
for its source feed (it requires a columnar mode, because its shared-memory
rings carry ``int64`` id arrays).

Results are independent of the mode for every backend that shares a
process: scalar, batched and columnar runs of the same seeded stream are
bit-for-bit identical (property-pinned since PR 1/PR 6); the mode only
chooses the speed at which they happen.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Union

from repro.exceptions import ConfigurationError

#: Default chunk length of the batched and columnar paths, shared by every
#: entry point (was duplicated per-module before this API existed).
DEFAULT_BATCH_SIZE = 1024

#: The backends selectable through :class:`ExecutionMode`.
KINDS = ("scalar", "batched", "columnar")

#: Anything the ``mode=`` parameters accept.
ModeLike = Union["ExecutionMode", str]

#: The spec grammar, quoted verbatim by every parse error so a CLI typo
#: shows the user what would have worked.
VALID_SPECS = "scalar | batched[:N] | columnar[:N] (e.g. 'columnar:4096')"


@dataclass(frozen=True, slots=True)
class ExecutionMode:
    """How a stream is pushed through the routing layer.

    Attributes
    ----------
    kind:
        ``"scalar"`` (per-message ``route()`` loop), ``"batched"``
        (``route_batch`` over key lists) or ``"columnar"``
        (``route_batch_columnar`` over interned key-id arrays).
    batch_size:
        Chunk length of the batched/columnar paths.  Always 1 for scalar
        mode (the constructor normalises it).
    """

    kind: str
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"execution mode kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.kind == "scalar" and self.batch_size != 1:
            raise ConfigurationError(
                "scalar mode routes one message at a time; "
                f"batch_size {self.batch_size} is meaningless "
                "(use ExecutionMode.scalar())"
            )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def scalar(cls) -> "ExecutionMode":
        """Per-message routing (``batch_size`` fixed at 1)."""
        return cls("scalar", 1)

    @classmethod
    def batched(cls, batch_size: int = DEFAULT_BATCH_SIZE) -> "ExecutionMode":
        """Chunked ``route_batch`` routing over key lists."""
        return cls("batched", batch_size)

    @classmethod
    def columnar(cls, batch_size: int = DEFAULT_BATCH_SIZE) -> "ExecutionMode":
        """Chunked ``route_batch_columnar`` routing over interned id arrays."""
        return cls("columnar", batch_size)

    @classmethod
    def parse(cls, spec: str) -> "ExecutionMode":
        """Parse a CLI-style spec: ``"scalar"``, ``"batched"``,
        ``"columnar"``, optionally with a chunk length — ``"batched:4096"``.
        """
        if not isinstance(spec, str):
            raise ConfigurationError(
                f"mode spec must be a string, got {type(spec).__name__}; "
                f"valid specs: {VALID_SPECS}"
            )
        kind, _, size = spec.partition(":")
        kind = kind.strip().lower()
        if not kind:
            raise ConfigurationError(
                f"empty execution mode spec {spec!r}; "
                f"valid specs: {VALID_SPECS}"
            )
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown execution mode {kind!r} in spec {spec!r}; "
                f"valid specs: {VALID_SPECS}"
            )
        if not size:
            return cls.scalar() if kind == "scalar" else cls(kind)
        try:
            batch_size = int(size)
        except ValueError:
            raise ConfigurationError(
                f"batch size in mode spec {spec!r} must be an integer, "
                f"got {size!r}; valid specs: {VALID_SPECS}"
            ) from None
        if kind == "scalar":
            raise ConfigurationError(
                f"scalar mode takes no batch size (got {spec!r}); "
                f"valid specs: {VALID_SPECS}"
            )
        return cls(kind, batch_size)

    @classmethod
    def coerce(cls, value: ModeLike) -> "ExecutionMode":
        """Normalise a ``mode=`` argument (instance or spec string)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise ConfigurationError(
            f"mode must be an ExecutionMode or a spec string, "
            f"got {type(value).__name__}"
        )

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def is_scalar(self) -> bool:
        return self.kind == "scalar"

    @property
    def is_columnar(self) -> bool:
        return self.kind == "columnar"

    @property
    def spec(self) -> str:
        """Round-trippable spec string (what :meth:`parse` accepts)."""
        if self.kind == "scalar":
            return "scalar"
        return f"{self.kind}:{self.batch_size}"

    @property
    def legacy_kwargs(self) -> dict[str, object]:
        """The pre-API ``batch_size`` / ``columnar`` equivalent.

        Kept as the bridge into internals (``SimulationConfig`` storage,
        ``TopologyRuntime``) that still carry the two historical fields —
        the public entry points accept only ``mode=`` going forward.
        """
        return {"batch_size": self.batch_size, "columnar": self.is_columnar}


def resolve_mode(
    mode: ModeLike | None,
    batch_size: int | None = None,
    columnar: bool | None = None,
    *,
    default: ExecutionMode | None = None,
    where: str = "this call",
) -> ExecutionMode:
    """Resolve ``mode=`` against the deprecated ``batch_size=``/``columnar=``.

    The single deprecation funnel used by ``run_simulation``,
    ``route_stream`` and ``run_topology``:

    * ``mode`` given, legacy kwargs absent — coerce and return it;
    * legacy kwargs given, ``mode`` absent — warn once per call site with a
      :class:`DeprecationWarning` and build the equivalent mode (the results
      are byte-identical, pinned by tests);
    * both given — :class:`ConfigurationError` (ambiguous);
    * neither — ``default`` (the entry point's historical default,
      ``batched(1024)``).
    """
    legacy = batch_size is not None or columnar is not None
    if mode is not None:
        if legacy:
            raise ConfigurationError(
                f"{where}: pass either mode= or the legacy batch_size=/"
                "columnar= keywords, not both"
            )
        return ExecutionMode.coerce(mode)
    if not legacy:
        return default if default is not None else ExecutionMode.batched()
    warnings.warn(
        f"{where}: batch_size=/columnar= are deprecated; pass "
        "mode=ExecutionMode.batched(n) / .columnar(n) / .scalar() instead "
        "(results are byte-identical)",
        DeprecationWarning,
        stacklevel=3,
    )
    size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
    if columnar:
        return ExecutionMode.columnar(size)
    if size == 1:
        return ExecutionMode.scalar()
    return ExecutionMode.batched(size)
