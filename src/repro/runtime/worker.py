"""The worker process: pop frames, decode ids, apply service time.

A worker owns the consumer side of one :class:`~repro.runtime.ring.SpscRing`
and a *replica* of the source's :class:`~repro.workloads.columnar.
KeyDictionary`, kept in sync by deltas the source sends over a per-worker
pipe **before** any frame that needs them.  The hot path never unpickles:
frames are raw ``int64`` arrays, and a frame's ``dict_high_water`` header
states how many dictionary entries the worker must have replicated before
decoding — the worker drains its delta pipe until it catches up (the pipe
is also drained opportunistically while idle, so a source blocked on a full
delta pipe cannot deadlock against a worker blocked on an empty ring).

Per-message *service time* models the downstream operator's real work
(state-store writes, network calls): the worker sleeps
``service_ns * len(frame)`` per frame.  Sleeping blocks the worker, not the
CPU — which is exactly what makes multi-worker scaling observable on the
single-core containers this runtime is benchmarked on (see
``docs/runtime.md``).

Fault injection rides in as a :class:`~repro.runtime.faults.WorkerFaults`
programme (parsed from a :class:`~repro.runtime.faults.FaultPlan` spec in
the coordinator): deterministic crash/hang trigger points in processed
messages, a service-time multiplier, and a dictionary-delta drop count that
provokes the replica's gap detector — the supervised-recovery test matrix.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.faults import CRASH_EXIT_CODE, WorkerFaults
from repro.runtime.ring import SpscRing
from repro.runtime.state import SharedClusterState

#: How many of a worker's hottest keys are reported back (decoded through
#: the dictionary replica — the e2e proof that delta sync works).
TOP_KEYS = 5

#: The source sends a frame's dictionary delta strictly *before* the frame
#: itself, over an ordered pipe — so a worker that popped a frame and still
#: cannot cover its high water after this long has lost a delta, not met a
#: slow source.  Raising turns a silent starvation deadlock (the worker
#: heartbeats while waiting, so no detector fires) into a protocol error
#: the supervisor answers with a respawn and a full dictionary replay.
DELTA_STARVATION_TIMEOUT_S = 2.0


@dataclass(slots=True)
class WorkerResult:
    """What one worker reports after draining its ring.

    ``salvaged`` marks a result the *supervisor* synthesized from the
    shared processed ledger because the worker slot could not report for
    itself (crash after the stream closed, or a slot degraded to the
    survivors after its restart budget ran out); ``frames``/``dict_entries``
    /``top_keys`` are unknown for such slots and left at their zero values.
    """

    worker_id: int
    processed: int
    frames: int
    dict_entries: int
    top_keys: list = field(default_factory=list)
    salvaged: bool = False


class DictionaryReplica:
    """The worker-side ``id -> key`` mapping, grown by source deltas."""

    __slots__ = ("_keys",)

    def __init__(self) -> None:
        self._keys: list = []

    def __len__(self) -> int:
        return len(self._keys)

    def key_of(self, kid: int):
        return self._keys[kid]

    def apply(self, start_id: int, keys: list) -> None:
        """Apply one delta (idempotent for overlapping resends)."""
        have = len(self._keys)
        if start_id > have:
            from repro.exceptions import ClusterRuntimeError

            raise ClusterRuntimeError(
                f"dictionary delta gap: replica has {have} entries, "
                f"delta starts at {start_id}"
            )
        self._keys.extend(keys[have - start_id :])


def _drain_deltas(
    conn, replica: DictionaryReplica, faults: WorkerFaults | None = None
) -> None:
    """Apply every delta currently buffered in the pipe (non-blocking)."""
    while conn.poll(0):
        kind, start_id, keys = conn.recv()
        if kind != "delta":
            continue
        if faults is not None and faults.take_delta_drop():
            continue  # injected transport fault: swallow the delta
        replica.apply(start_id, keys)


def _await_dictionary(
    conn,
    replica: DictionaryReplica,
    high_water: int,
    state,
    worker_id: int = 0,
    faults: WorkerFaults | None = None,
) -> None:
    """Block until the replica covers ``high_water`` entries.

    Heartbeats while waiting — a worker stalled on a slow delta pipe is
    healthy, and must not trip the monitor's hang detector.  But the wait
    is bounded: the needed delta was sent before the frame that demands it,
    so a pipe that stays silent past ``DELTA_STARVATION_TIMEOUT_S`` means
    the delta is gone and waiting longer would deadlock the slot.
    """
    last_progress = time.monotonic()
    while len(replica) < high_water:
        if state.aborted():
            from repro.exceptions import ClusterRuntimeError

            raise ClusterRuntimeError("aborted while awaiting dictionary delta")
        state.heartbeat(worker_id)
        if conn.poll(0.05):
            kind, start_id, keys = conn.recv()
            if kind != "delta":
                continue
            if faults is not None and faults.take_delta_drop():
                continue
            replica.apply(start_id, keys)
            last_progress = time.monotonic()
        elif time.monotonic() - last_progress > DELTA_STARVATION_TIMEOUT_S:
            from repro.exceptions import ClusterRuntimeError

            raise ClusterRuntimeError(
                f"dictionary delta gap: replica holds {len(replica)} of "
                f"{high_water} entries and no delta arrived for "
                f"{DELTA_STARVATION_TIMEOUT_S}s (delta lost in transport?)"
            )


def worker_main(
    worker_id: int,
    ring: SpscRing,
    state: SharedClusterState,
    delta_conn,
    result_conn,
    service_ns: int = 0,
    faults: WorkerFaults | None = None,
) -> None:
    """Entry point of one worker process (run under the fork context).

    ``faults`` is this incarnation's injected fault programme (``None`` in
    production): ``crash_after`` hard-exits the process once that many
    messages are processed, ``hang_after`` stops heartbeating and
    frame-popping forever, ``service_factor`` multiplies the modelled
    service time, and ``drop_deltas`` swallows dictionary deltas to provoke
    the replica's gap detector.
    """
    replica = DictionaryReplica()
    counts = np.zeros(1024, dtype=np.int64)
    processed = 0
    frames = 0
    # Messages popped off the ring but not yet counted as delivered: a pop
    # advances the consumer cursor immediately, so a frame in hand when the
    # worker dies is invisible to the supervisor's ring drain.  It rides
    # along on the error report so the loss ledger stays exact.
    inflight_msgs = 0
    if faults is not None and faults.service_factor > 1:
        service_ns = service_ns * faults.service_factor
    crash_after = faults.crash_after if faults is not None else -1
    hang_after = faults.hang_after if faults is not None else -1

    state.mark_ready(worker_id)
    state.heartbeat(worker_id)
    while not state.started():
        if state.aborted():
            return
        time.sleep(0.0005)

    def idle() -> None:
        state.heartbeat(worker_id)
        _drain_deltas(delta_conn, replica, faults)

    try:
        while True:
            frame = ring.pop(should_abort=state.aborted, idle=idle)
            if frame.is_eof:
                break
            inflight_msgs = int(frame.ids.size)
            if frame.dict_high_water > len(replica):
                _drain_deltas(delta_conn, replica, faults)
                _await_dictionary(
                    delta_conn, replica, frame.dict_high_water, state,
                    worker_id, faults,
                )
            ids = frame.ids
            high = int(ids.max()) + 1 if ids.size else 0
            if high > counts.size:
                counts = np.concatenate(
                    [counts, np.zeros(max(high, 2 * counts.size) - counts.size, dtype=np.int64)]
                )
            np.add.at(counts, ids, 1)
            processed += int(ids.size)
            frames += 1
            if service_ns:
                time.sleep(service_ns * ids.size / 1e9)
            state.add_processed(worker_id, int(ids.size))
            inflight_msgs = 0
            state.heartbeat(worker_id)
            if crash_after >= 0 and processed >= crash_after:
                os._exit(CRASH_EXIT_CODE)
            if hang_after >= 0 and processed >= hang_after:
                # Wedge without dying: no heartbeats, no pops.  A supervisor
                # terminates the process; an unsupervised run aborts.
                while not state.aborted():
                    time.sleep(0.01)
                return
        top_ids = np.argsort(counts)[::-1][:TOP_KEYS]
        top_keys = [
            (replica.key_of(int(kid)), int(counts[kid]))
            for kid in top_ids
            if counts[kid] > 0 and int(kid) < len(replica)
        ]
        result_conn.send(
            (
                "result",
                WorkerResult(
                    worker_id=worker_id,
                    processed=processed,
                    frames=frames,
                    dict_entries=len(replica),
                    top_keys=top_keys,
                ),
            )
        )
    except Exception as error:  # surfaced by the coordinator, not lost
        try:
            result_conn.send(
                (
                    "error",
                    worker_id,
                    repr(error),
                    inflight_msgs,
                    1 if inflight_msgs else 0,
                )
            )
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            result_conn.close()
        except OSError:
            pass
