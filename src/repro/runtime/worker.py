"""The worker process: pop frames, decode ids, apply service time.

A worker owns the consumer side of one :class:`~repro.runtime.ring.SpscRing`
and a *replica* of the source's :class:`~repro.workloads.columnar.
KeyDictionary`, kept in sync by deltas the source sends over a per-worker
pipe **before** any frame that needs them.  The hot path never unpickles:
frames are raw ``int64`` arrays, and a frame's ``dict_high_water`` header
states how many dictionary entries the worker must have replicated before
decoding — the worker drains its delta pipe until it catches up (the pipe
is also drained opportunistically while idle, so a source blocked on a full
delta pipe cannot deadlock against a worker blocked on an empty ring).

Per-message *service time* models the downstream operator's real work
(state-store writes, network calls): the worker sleeps
``service_ns * len(frame)`` per frame.  Sleeping blocks the worker, not the
CPU — which is exactly what makes multi-worker scaling observable on the
single-core containers this runtime is benchmarked on (see
``docs/runtime.md``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.ring import SpscRing
from repro.runtime.state import SharedClusterState

#: How many of a worker's hottest keys are reported back (decoded through
#: the dictionary replica — the e2e proof that delta sync works).
TOP_KEYS = 5


@dataclass(slots=True)
class WorkerResult:
    """What one worker reports after draining its ring."""

    worker_id: int
    processed: int
    frames: int
    dict_entries: int
    top_keys: list = field(default_factory=list)


class DictionaryReplica:
    """The worker-side ``id -> key`` mapping, grown by source deltas."""

    __slots__ = ("_keys",)

    def __init__(self) -> None:
        self._keys: list = []

    def __len__(self) -> int:
        return len(self._keys)

    def key_of(self, kid: int):
        return self._keys[kid]

    def apply(self, start_id: int, keys: list) -> None:
        """Apply one delta (idempotent for overlapping resends)."""
        have = len(self._keys)
        if start_id > have:
            from repro.exceptions import ClusterRuntimeError

            raise ClusterRuntimeError(
                f"dictionary delta gap: replica has {have} entries, "
                f"delta starts at {start_id}"
            )
        self._keys.extend(keys[have - start_id :])


def _drain_deltas(conn, replica: DictionaryReplica) -> None:
    """Apply every delta currently buffered in the pipe (non-blocking)."""
    while conn.poll(0):
        kind, start_id, keys = conn.recv()
        if kind == "delta":
            replica.apply(start_id, keys)


def _await_dictionary(conn, replica: DictionaryReplica, high_water: int, state) -> None:
    """Block until the replica covers ``high_water`` entries."""
    while len(replica) < high_water:
        if state.aborted():
            from repro.exceptions import ClusterRuntimeError

            raise ClusterRuntimeError("aborted while awaiting dictionary delta")
        if conn.poll(0.05):
            kind, start_id, keys = conn.recv()
            if kind == "delta":
                replica.apply(start_id, keys)


def worker_main(
    worker_id: int,
    ring: SpscRing,
    state: SharedClusterState,
    delta_conn,
    result_conn,
    service_ns: int = 0,
    fault=None,
) -> None:
    """Entry point of one worker process (run under the fork context).

    ``fault`` injects failures for the crash-detection tests:
    ``("crash", after_messages)`` hard-exits the process,
    ``("hang", after_messages)`` stops heartbeating and frame-popping
    forever.  ``None`` in production.
    """
    replica = DictionaryReplica()
    counts = np.zeros(1024, dtype=np.int64)
    processed = 0
    frames = 0
    fault_kind, fault_after = fault if fault is not None else (None, -1)

    state.mark_ready(worker_id)
    state.heartbeat(worker_id)
    while not state.started():
        if state.aborted():
            return
        time.sleep(0.0005)

    def idle() -> None:
        state.heartbeat(worker_id)
        _drain_deltas(delta_conn, replica)

    try:
        while True:
            frame = ring.pop(should_abort=state.aborted, idle=idle)
            if frame.is_eof:
                break
            if frame.dict_high_water > len(replica):
                _drain_deltas(delta_conn, replica)
                _await_dictionary(delta_conn, replica, frame.dict_high_water, state)
            ids = frame.ids
            high = int(ids.max()) + 1 if ids.size else 0
            if high > counts.size:
                counts = np.concatenate(
                    [counts, np.zeros(max(high, 2 * counts.size) - counts.size, dtype=np.int64)]
                )
            np.add.at(counts, ids, 1)
            processed += int(ids.size)
            frames += 1
            if service_ns:
                time.sleep(service_ns * ids.size / 1e9)
            state.add_processed(worker_id, int(ids.size))
            state.heartbeat(worker_id)
            if fault_kind is not None and processed >= fault_after:
                if fault_kind == "crash":
                    os._exit(17)
                if fault_kind == "hang":
                    while not state.aborted():
                        time.sleep(0.01)
                    return
        top_ids = np.argsort(counts)[::-1][:TOP_KEYS]
        top_keys = [
            (replica.key_of(int(kid)), int(counts[kid]))
            for kid in top_ids
            if counts[kid] > 0 and int(kid) < len(replica)
        ]
        result_conn.send(
            (
                "result",
                WorkerResult(
                    worker_id=worker_id,
                    processed=processed,
                    frames=frames,
                    dict_entries=len(replica),
                    top_keys=top_keys,
                ),
            )
        )
    except Exception as error:  # surfaced by the coordinator, not lost
        try:
            result_conn.send(("error", worker_id, repr(error)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            result_conn.close()
        except OSError:
            pass
