"""The source process: intern, route, scatter into the per-worker rings.

The source is the only router in the cluster — the same single-sender
setting as ``run_simulation(num_sources=1)``, which is what makes the
real-vs-simulated validation exact: both route the identical columnar
stream through the identical partitioner seed, so the per-worker message
counts must agree bit for bit.  Faults never touch routing: the partitioner
always routes over the full worker set, and recovery acts *after* routing,
at the scatter step — which is what keeps the source's load vector
bit-identical to the simulator even through crashes.

Hot path per batch:

1. pull one :class:`~repro.workloads.columnar.ColumnarBatch` from the
   workload's native columnar iterator (interning happens here, once per
   distinct key);
2. ``route_batch_columnar`` — the partitioner's vectorised fast path, byte
   identical to scalar routing;
3. scatter the id array by destination worker (one boolean mask per
   worker) and push each sub-array as one ring frame — no pickling;
4. when the dictionary grew, send the new ``(id, key)`` entries down each
   worker's delta pipe *before* the frame that needs them;
5. every ``publish_every`` batches, publish the load vector and the
   SpaceSaving head summary into the shared state block for the monitor.

Recovery protocol (supervisor -> source, one control pipe):

* A failed worker is *fenced* in shared state the moment the supervisor
  detects it — a push blocked on its ring unwinds instead of waiting out
  the timeout, and the source adds the slot to its ``down`` set.
* While a slot is down, its share is **redirected to the survivors** with
  the candidate-set-remap rule (``key_id mod survivor_count``, the same
  instant hash-derived remap the elasticity ``remap`` policy models): the
  stream keeps flowing instead of stalling on a dead ring.
* ``("recover", w, incarnation)`` — the supervisor respawned the worker
  over a re-initialised ring.  The source rebinds its producer view,
  resets the slot's delta cursor so the **whole dictionary replays** to
  the fresh replica before its first frame, and re-adopts its routing
  state through the partitioner's ``export_state``/``adopt_state``
  contract — the same hot-handoff that powers adaptive scheme switching,
  property-pinned byte-identical, so recovery cannot perturb routing.
* ``("degrade", w)`` — the restart budget is exhausted; the redirect
  becomes permanent and the slot's replica is priced as lost state.
* ``("salvaged", w)`` — the worker died after the stream closed; the
  supervisor salvaged the ring itself and no handoff is needed.

Every recovery action is priced through the elasticity
:class:`~repro.elasticity.accountant.MigrationCostAccountant` in the same
keys-moved / entries-migrated / entries-lost currency as rescale events.
"""

from __future__ import annotations

import time

import numpy as np

from repro.elasticity.accountant import MigrationCostAccountant
from repro.elasticity.policies import CANDIDATE_SET_REMAP
from repro.exceptions import ClusterRuntimeError
from repro.partitioning.registry import create_partitioner
from repro.runtime.state import SharedClusterState


def _head_ids(partitioner) -> dict[int, int] | None:
    """The sketch's current head as ``{key id: estimated count}``.

    Only head/tail schemes carry a sketch; in columnar mode it tracks key
    ids natively, which is exactly the namespace the shared summary stores.
    """
    sketch = getattr(partitioner, "sketch", None)
    theta = getattr(partitioner, "theta", None)
    if sketch is None or theta is None:
        return None
    return {int(kid): int(count) for kid, count in sketch.heavy_hitters(theta).items()}


def source_main(
    config,
    rings,
    state: SharedClusterState,
    delta_conn_pools,
    result_conn,
    control_conn=None,
) -> None:
    """Entry point of the source process (run under the fork context).

    ``delta_conn_pools[w]`` is the list of delta-pipe send ends for worker
    ``w``, one per incarnation (index 0 is the original worker, index k the
    k-th respawn); ``control_conn`` is the receive end of the supervisor's
    recovery channel (``None`` runs unsupervised, as the unit tests do).
    """
    n = config.num_workers
    worker_range = range(n)
    try:
        partitioner = create_partitioner(
            config.scheme,
            num_workers=n,
            seed=config.seed,
            **dict(config.scheme_options),
        )
        workload = config.build_workload()
        batches = workload.iter_batches_columnar(config.mode.batch_size)

        result_conn.send(("ready",))
        while not state.started():
            if state.aborted():
                return
            time.sleep(0.0005)

        dictionary = None
        sent_entries = [0] * n
        delta_incarnation = [0] * n
        batch_count = 0

        # Recovery bookkeeping: which slots are out of service, how much of
        # whose share went where, and what each recovery cost.
        down: set[int] = set()
        degraded: set[int] = set()
        salvaged: set[int] = set()
        closed: set[int] = set()
        redirected_out = [0] * n  # messages *intended* for w, sent elsewhere
        redirected_in = [0] * n  # messages w absorbed for a down peer
        redirected_keys: list[set[int]] = [set() for _ in worker_range]
        accountant = MigrationCostAccountant(CANDIDATE_SET_REMAP)

        def send_delta_if_needed(worker_id: int, high_water: int) -> None:
            if sent_entries[worker_id] < high_water:
                start = sent_entries[worker_id]
                keys = [dictionary.key_of(kid) for kid in range(start, high_water)]
                delta_conn_pools[worker_id][delta_incarnation[worker_id]].send(
                    ("delta", start, keys)
                )
                sent_entries[worker_id] = high_water

        def fence_aware(worker_id: int):
            return lambda: state.aborted() or state.worker_fenced(worker_id)

        def guarded_push(worker_id: int, ids, base_index: int) -> bool:
            """Push one frame; ``False`` when the worker was fenced away.

            Acknowledging the fence promises the supervisor the source will
            not touch this ring again until the fence clears — only then is
            the supervisor free to drain and re-initialise it.
            """
            try:
                rings[worker_id].push(
                    ids,
                    base_index=base_index,
                    dict_high_water=sent_entries[worker_id],
                    should_abort=fence_aware(worker_id),
                    timeout=config.push_timeout_s,
                )
                return True
            except ClusterRuntimeError:
                if state.aborted() or not state.worker_fenced(worker_id):
                    raise
                state.acknowledge_fence(worker_id)
                return False

        def redirect(intended: int, ids, base_index: int) -> None:
            """Deliver a down slot's share to the survivors (key-mod remap)."""
            redirected_keys[intended].update(int(kid) for kid in np.unique(ids))
            remaining = ids
            while True:
                survivors = [w for w in worker_range if w not in down]
                if not survivors:
                    raise ClusterRuntimeError(
                        f"no surviving workers to absorb worker {intended}'s "
                        "share: every worker is out of service"
                    )
                assignment = remaining % len(survivors)
                failed_parts = []
                for index, survivor in enumerate(survivors):
                    part = remaining[assignment == index]
                    if not part.size:
                        continue
                    send_delta_if_needed(survivor, len(dictionary))
                    if guarded_push(survivor, part, base_index):
                        redirected_out[intended] += int(part.size)
                        redirected_in[survivor] += int(part.size)
                    else:
                        down.add(survivor)
                        failed_parts.append(part)
                if not failed_parts:
                    return
                remaining = np.concatenate(failed_parts)

        def poll_control(block_s: float = 0.0) -> None:
            nonlocal partitioner
            if control_conn is None:
                return
            while control_conn.poll(block_s):
                block_s = 0.0
                message = control_conn.recv()
                op, worker_id = message[0], message[1]
                if op == "recover":
                    incarnation = message[2]
                    rings[worker_id].rebind()
                    closed.discard(worker_id)
                    delta_incarnation[worker_id] = incarnation
                    # Replay the whole dictionary to the fresh replica: the
                    # delta cursor rewinds to zero, so the next frame (or
                    # the EOF close) is preceded by entries [0, high water).
                    sent_entries[worker_id] = 0
                    replay_entries = len(dictionary) if dictionary is not None else 0
                    head = _head_ids(partitioner) or {}
                    # Re-adopt routing state across the fault epoch through
                    # the hot-handoff contract: byte-identical to an
                    # uninterrupted run (tests/property/test_state_roundtrip).
                    snapshot = partitioner.export_state()
                    fresh = create_partitioner(
                        config.scheme,
                        num_workers=n,
                        seed=config.seed,
                        **dict(config.scheme_options),
                    )
                    fresh.adopt_state(snapshot)
                    partitioner = fresh
                    accountant.record_recovery(
                        offset=partitioner.messages_routed,
                        description=f"recover:w{worker_id}",
                        num_workers=n,
                        keys_moved=len(redirected_keys[worker_id]),
                        entries_migrated=replay_entries,
                        entries_lost=0,
                        head_keys_preserved=len(head),
                    )
                    redirected_keys[worker_id].clear()
                    down.discard(worker_id)
                elif op == "degrade":
                    down.add(worker_id)
                    degraded.add(worker_id)
                    accountant.record_recovery(
                        offset=partitioner.messages_routed,
                        description=f"degrade:w{worker_id}",
                        num_workers=n,
                        keys_moved=len(redirected_keys[worker_id]),
                        entries_migrated=0,
                        entries_lost=sent_entries[worker_id],
                        head_keys_preserved=0,
                    )
                elif op == "salvaged":
                    down.add(worker_id)
                    salvaged.add(worker_id)

        def observe_fences() -> None:
            # Pushes into a dead worker's not-yet-full ring succeed, so the
            # fence must be polled proactively: the moment it is up, the
            # slot leaves service and the supervisor may drain its ring
            # knowing the drained count is final.
            for worker_id in worker_range:
                if worker_id not in down and state.worker_fenced(worker_id):
                    state.acknowledge_fence(worker_id)
                    down.add(worker_id)

        for batch in batches:
            poll_control()
            observe_fences()
            dictionary = batch.dictionary
            workers = np.asarray(
                partitioner.route_batch_columnar(batch), dtype=np.int64
            )
            high_water = len(dictionary)
            for worker_id in worker_range:
                ids = batch.ids[workers == worker_id]
                if not ids.size:
                    continue
                if worker_id in down:
                    redirect(worker_id, ids, batch.base_index)
                    continue
                send_delta_if_needed(worker_id, high_water)
                if not guarded_push(worker_id, ids, batch.base_index):
                    down.add(worker_id)
                    redirect(worker_id, ids, batch.base_index)
            batch_count += 1
            if batch_count % config.publish_every == 0:
                state.publish_routing(
                    partitioner.local_loads,
                    partitioner.messages_routed,
                    high_water,
                    head=_head_ids(partitioner),
                )

        state.mark_source_done()
        # Close the live rings; then linger briefly for any recovery still
        # in flight — a replacement spawned moments before EOF must get its
        # ring closed (and its dictionary replayed) or it would wait
        # forever.  The supervisor answers every open failure with exactly
        # one of recover/degrade/salvaged, so the linger exits promptly;
        # the deadline is a backstop against a dead supervisor.
        high_water = len(dictionary) if dictionary is not None else 0
        deadline = time.monotonic() + config.recovery_linger_s
        while True:
            for worker_id in worker_range:
                if worker_id in down or worker_id in closed:
                    continue
                send_delta_if_needed(worker_id, high_water)
                try:
                    rings[worker_id].close(
                        should_abort=fence_aware(worker_id),
                        timeout=config.push_timeout_s,
                    )
                    closed.add(worker_id)
                except ClusterRuntimeError:
                    if state.aborted() or not state.worker_fenced(worker_id):
                        raise
                    state.acknowledge_fence(worker_id)
                    down.add(worker_id)
            if not (down - degraded - salvaged):
                break
            if time.monotonic() > deadline:
                break
            poll_control(0.05)

        head = _head_ids(partitioner)
        state.publish_routing(
            partitioner.local_loads,
            partitioner.messages_routed,
            high_water,
            head=head,
        )
        decoded_head = (
            {dictionary.key_of(kid): count for kid, count in head.items()}
            if head and dictionary is not None
            else {}
        )
        result_conn.send(
            (
                "result",
                {
                    "loads": partitioner.local_loads,
                    "messages_routed": partitioner.messages_routed,
                    "head": decoded_head,
                    "dict_entries": high_water,
                    "redirected_out": redirected_out,
                    "redirected_in": redirected_in,
                    "migration": accountant.report(),
                },
            )
        )
    except Exception as error:
        try:
            result_conn.send(("error", -1, repr(error)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            result_conn.close()
        except OSError:
            pass
