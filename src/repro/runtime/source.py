"""The source process: intern, route, scatter into the per-worker rings.

The source is the only router in the cluster — the same single-sender
setting as ``run_simulation(num_sources=1)``, which is what makes the
real-vs-simulated validation exact: both route the identical columnar
stream through the identical partitioner seed, so the per-worker message
counts must agree bit for bit (``validate_against_simulation`` asserts a
tolerance anyway, for the day the runtime grows multiple sources).

Hot path per batch:

1. pull one :class:`~repro.workloads.columnar.ColumnarBatch` from the
   workload's native columnar iterator (interning happens here, once per
   distinct key);
2. ``route_batch_columnar`` — the partitioner's vectorised fast path, byte
   identical to scalar routing;
3. scatter the id array by destination worker (one boolean mask per
   worker) and push each sub-array as one ring frame — no pickling;
4. when the dictionary grew, send the new ``(id, key)`` entries down each
   worker's delta pipe *before* the frame that needs them;
5. every ``publish_every`` batches, publish the load vector and the
   SpaceSaving head summary into the shared state block for the monitor.
"""

from __future__ import annotations

import time

import numpy as np

from repro.partitioning.registry import create_partitioner
from repro.runtime.state import SharedClusterState


def _head_ids(partitioner) -> dict[int, int] | None:
    """The sketch's current head as ``{key id: estimated count}``.

    Only head/tail schemes carry a sketch; in columnar mode it tracks key
    ids natively, which is exactly the namespace the shared summary stores.
    """
    sketch = getattr(partitioner, "sketch", None)
    theta = getattr(partitioner, "theta", None)
    if sketch is None or theta is None:
        return None
    return {int(kid): int(count) for kid, count in sketch.heavy_hitters(theta).items()}


def source_main(
    config,
    rings,
    state: SharedClusterState,
    delta_conns,
    result_conn,
) -> None:
    """Entry point of the source process (run under the fork context)."""
    try:
        partitioner = create_partitioner(
            config.scheme,
            num_workers=config.num_workers,
            seed=config.seed,
            **dict(config.scheme_options),
        )
        workload = config.build_workload()
        batches = workload.iter_batches_columnar(config.mode.batch_size)

        result_conn.send(("ready",))
        while not state.started():
            if state.aborted():
                return
            time.sleep(0.0005)

        dictionary = None
        sent_entries = [0] * config.num_workers
        batch_count = 0
        worker_range = range(config.num_workers)
        for batch in batches:
            dictionary = batch.dictionary
            workers = np.asarray(
                partitioner.route_batch_columnar(batch), dtype=np.int64
            )
            high_water = len(dictionary)
            for worker_id in worker_range:
                ids = batch.ids[workers == worker_id]
                if not ids.size:
                    continue
                if sent_entries[worker_id] < high_water:
                    start = sent_entries[worker_id]
                    keys = [dictionary.key_of(kid) for kid in range(start, high_water)]
                    delta_conns[worker_id].send(("delta", start, keys))
                    sent_entries[worker_id] = high_water
                rings[worker_id].push(
                    ids,
                    base_index=batch.base_index,
                    dict_high_water=sent_entries[worker_id],
                    should_abort=state.aborted,
                    timeout=config.push_timeout_s,
                )
            batch_count += 1
            if batch_count % config.publish_every == 0:
                state.publish_routing(
                    partitioner.local_loads,
                    partitioner.messages_routed,
                    high_water,
                    head=_head_ids(partitioner),
                )
        for ring in rings:
            ring.close(should_abort=state.aborted, timeout=config.push_timeout_s)
        head = _head_ids(partitioner)
        state.publish_routing(
            partitioner.local_loads,
            partitioner.messages_routed,
            len(dictionary) if dictionary is not None else 0,
            head=head,
        )
        state.mark_source_done()
        decoded_head = (
            {dictionary.key_of(kid): count for kid, count in head.items()}
            if head and dictionary is not None
            else {}
        )
        result_conn.send(
            (
                "result",
                {
                    "loads": partitioner.local_loads,
                    "messages_routed": partitioner.messages_routed,
                    "head": decoded_head,
                    "dict_entries": len(dictionary) if dictionary is not None else 0,
                },
            )
        )
    except Exception as error:
        try:
            result_conn.send(("error", -1, repr(error)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            result_conn.close()
        except OSError:
            pass
