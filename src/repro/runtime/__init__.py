"""Multi-process cluster runtime over shared-memory ring buffers.

The simulators measure *where* messages go; this package actually moves
them.  One source process interns the workload into columnar key-id
batches, routes them with the exact same :class:`~repro.partitioning.base.
Partitioner` fast path the simulator uses, and pushes per-worker id arrays
into fixed-size single-producer/single-consumer ring buffers backed by
``multiprocessing.shared_memory`` — no pickling on the hot path.  N worker
processes pop frames, decode ids through a delta-synced
:class:`~repro.workloads.columnar.KeyDictionary` replica and apply a
configurable per-message service time.  A monitor thread in the
coordinating process snapshots the shared load vector / SpaceSaving head
summary and watches heartbeats for crash and hang detection.

See ``docs/runtime.md`` for the architecture and the shared-memory layout.
"""

from repro.runtime.faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    WorkerFaults,
)
from repro.runtime.ring import (
    EOF,
    FRAME_HEADER_WORDS,
    Frame,
    InflightDrain,
    RingClosed,
    SpscRing,
)
from repro.runtime.runtime import (
    ClusterConfig,
    ClusterResult,
    WorkerResult,
    run_cluster,
    validate_against_simulation,
)
from repro.runtime.state import ClusterSnapshot, SharedClusterState

__all__ = [
    "CRASH_EXIT_CODE",
    "EOF",
    "FAULT_KINDS",
    "FRAME_HEADER_WORDS",
    "FaultPlan",
    "FaultSpec",
    "Frame",
    "InflightDrain",
    "RingClosed",
    "SpscRing",
    "ClusterConfig",
    "ClusterResult",
    "ClusterSnapshot",
    "SharedClusterState",
    "WorkerFaults",
    "WorkerResult",
    "run_cluster",
    "validate_against_simulation",
]
