"""Deterministic fault injection for the cluster runtime.

Chaos testing is only useful when the chaos is reproducible: a fault plan
is a declarative spec string, parsed once in the coordinator and threaded
into the worker processes at fork time, so the same plan against the same
seeded workload produces the same failure at the same message offset on
every run.  This module replaces the ad-hoc ``worker_fault`` tuple (and its
``os._exit``/``"hang"`` string hooks) that PR 8 grew for its two failure
tests.

Grammar (comma-separated entries)::

    plan       := entry ("," entry)*
    entry      := kind "@" "w" WORKER ":" arg ["!"]
    kind       := "crash" | "hang" | "slow" | "delta_drop"
    arg        := INT          crash/hang: trigger after INT processed
                               messages; delta_drop: drop the first INT
                               dictionary deltas
                | INT "x"      slow: multiply the worker's service time

A trailing ``!`` makes the fault *persistent* — it re-arms in every
respawned incarnation of the worker (the way to exhaust a supervisor's
restart budget).  Without it a fault fires in the worker's first
incarnation only, so a supervised respawn genuinely recovers.

Examples::

    "crash@w2:5000"                 worker 2 hard-exits after 5000 messages
    "hang@w1:12000"                 worker 1 wedges (no heartbeats, no pops)
    "slow@w0:3x"                    worker 0 services every message 3x slower
    "delta_drop@w3:1"               worker 3 drops its first dictionary
                                    delta -> gap-detected protocol error
    "crash@w1:500!"                 worker 1 crashes in *every* incarnation

The fault *kinds* cover the failure modes the supervisor distinguishes:

``crash``
    the process dies (``os._exit``) — detected by liveness;
``hang``
    the process wedges without dying — detected by heartbeat age;
``slow``
    degraded but healthy — must *not* trip any detector;
``delta_drop``
    a transport-protocol fault: the worker misses dictionary deltas, the
    replica's gap check fires and the worker reports an error — detected
    through the error pipe, recovered exactly like a crash.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Recognised fault kinds, in documentation order.
FAULT_KINDS = ("crash", "hang", "slow", "delta_drop")

#: Process exit code of an injected crash (distinguishable from a real 1).
CRASH_EXIT_CODE = 17

_ENTRY = re.compile(
    r"^(?P<kind>[a-z_]+)@w(?P<worker>\d+):(?P<arg>\d+)(?P<slow_x>x?)"
    r"(?P<persistent>!?)$"
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One parsed fault: what happens, to which worker, and when."""

    kind: str
    worker_id: int
    #: Trigger point in processed messages (crash/hang), service-time
    #: multiplier (slow) or number of deltas to drop (delta_drop).
    arg: int
    #: Re-arm in every respawned incarnation (``!`` suffix).
    persistent: bool = False

    @property
    def spec(self) -> str:
        suffix = "x" if self.kind == "slow" else ""
        bang = "!" if self.persistent else ""
        return f"{self.kind}@w{self.worker_id}:{self.arg}{suffix}{bang}"


@dataclass(slots=True)
class WorkerFaults:
    """The merged fault programme one worker incarnation runs under.

    Built by :meth:`FaultPlan.for_worker` and passed into ``worker_main``
    at fork time; ``None`` stands for a fault-free worker, so the hot loop
    pays nothing when no plan is active.
    """

    crash_after: int = -1  # processed-message threshold, -1 = never
    hang_after: int = -1
    service_factor: int = 1
    drop_deltas: int = 0  # deltas still to swallow (decremented live)

    def take_delta_drop(self) -> bool:
        """Consume one delta-drop token (True = swallow this delta)."""
        if self.drop_deltas > 0:
            self.drop_deltas -= 1
            return True
        return False


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A parsed, validated fault-injection plan."""

    faults: tuple[FaultSpec, ...] = ()

    @property
    def spec(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        return ",".join(fault.spec for fault in self.faults)

    @property
    def max_worker_id(self) -> int:
        """Highest worker id the plan names (-1 for an empty plan)."""
        return max((fault.worker_id for fault in self.faults), default=-1)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a plan spec string (see the module grammar)."""
        faults: list[FaultSpec] = []
        for raw in spec.split(","):
            part = raw.strip()
            if not part:
                continue
            match = _ENTRY.match(part)
            if match is None:
                raise ConfigurationError(
                    f"bad fault entry {part!r}: expected "
                    "kind@wN:ARG[!] with kind in "
                    f"{FAULT_KINDS} (e.g. 'crash@w2:5000,slow@w0:3x')"
                )
            kind = match.group("kind")
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r} in {part!r}; "
                    f"known: {FAULT_KINDS}"
                )
            if bool(match.group("slow_x")) != (kind == "slow"):
                raise ConfigurationError(
                    f"bad fault entry {part!r}: the 'x' multiplier suffix "
                    "belongs to 'slow' faults only (e.g. 'slow@w0:3x')"
                )
            arg = int(match.group("arg"))
            if kind == "slow" and arg < 1:
                raise ConfigurationError(
                    f"slow factor must be >= 1, got {arg} in {part!r}"
                )
            if kind == "delta_drop" and arg < 1:
                raise ConfigurationError(
                    f"delta_drop count must be >= 1, got {arg} in {part!r}"
                )
            faults.append(
                FaultSpec(
                    kind=kind,
                    worker_id=int(match.group("worker")),
                    arg=arg,
                    persistent=bool(match.group("persistent")),
                )
            )
        if not faults:
            raise ConfigurationError(
                f"empty fault plan {spec!r}: expected at least one "
                "kind@wN:ARG entry"
            )
        return cls(faults=tuple(faults))

    @classmethod
    def coerce(cls, value: "FaultPlan | str | None") -> "FaultPlan | None":
        """Accept a plan, a spec string or ``None`` (no injection)."""
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise ConfigurationError(
            f"cannot build a FaultPlan from {type(value).__name__!r}"
        )

    def for_worker(self, worker_id: int, incarnation: int = 0) -> WorkerFaults | None:
        """The merged fault programme of one worker incarnation.

        One-shot faults arm the first incarnation only; persistent faults
        (``!``) arm every incarnation.  Returns ``None`` when nothing is
        armed, which is also the production fast path.
        """
        merged = WorkerFaults()
        armed = False
        for fault in self.faults:
            if fault.worker_id != worker_id:
                continue
            if incarnation > 0 and not fault.persistent:
                continue
            armed = True
            if fault.kind == "crash":
                merged.crash_after = fault.arg
            elif fault.kind == "hang":
                merged.hang_after = fault.arg
            elif fault.kind == "slow":
                merged.service_factor = fault.arg
            elif fault.kind == "delta_drop":
                merged.drop_deltas = fault.arg
        return merged if armed else None
