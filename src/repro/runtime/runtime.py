"""Coordinator of the multi-process cluster runtime.

``run_cluster`` owns every resource of one run: the shared state block, one
ring buffer per worker, the delta/result pipes, the source and worker
processes (all spawned under the ``fork`` start method so shared-memory
views and pipe ends are inherited, never pickled) and a monitor thread that
snapshots the shared state and watches liveness.

Failure handling is first-class: a worker that dies is detected by process
liveness, a worker that wedges by heartbeat age; either aborts the run,
salvages the results that healthy workers already reported and raises
:class:`~repro.exceptions.WorkerCrashError` naming the dead worker.
Graceful shutdown rides the same abort flag — every blocking ring
operation polls it.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable

from repro.exceptions import (
    ClusterRuntimeError,
    ConfigurationError,
    WorkerCrashError,
)
from repro.execution import ExecutionMode, ModeLike
from repro.runtime.ring import SpscRing, ring_words
from repro.runtime.source import source_main
from repro.runtime.state import (
    DEFAULT_HEAD_CAPACITY,
    ClusterSnapshot,
    SharedClusterState,
    loads_imbalance,
    state_words,
)
from repro.runtime.worker import WorkerResult, worker_main

#: Sentinel worker id the monitor uses for the source process.
SOURCE_ID = -1


@dataclass(slots=True)
class ClusterConfig:
    """Parameters of one cluster run.

    The workload defaults to a Zipf stream (``skew``/``num_keys``/
    ``num_messages``); ``workload_factory`` overrides it with any workload
    exposing ``iter_batches_columnar``.  ``mode`` must be columnar — the
    rings carry interned ``int64`` id arrays, scalar objects never cross a
    process boundary.

    ``service_ns`` is the modelled per-message service time of a worker
    (I/O-bound operator work; the worker *blocks*, it does not burn CPU).
    ``worker_fault`` injects failures for tests:
    ``(worker_id, "crash"|"hang", after_messages)``.
    """

    scheme: str = "PKG"
    num_workers: int = 4
    num_messages: int = 50_000
    num_keys: int = 5_000
    skew: float = 1.4
    seed: int = 0
    scheme_options: dict[str, Any] = field(default_factory=dict)
    mode: ModeLike = "columnar:512"
    workload_factory: Callable[[], Any] | None = None
    service_ns: int = 10_000
    ring_capacity_words: int = 1 << 14
    head_capacity: int = DEFAULT_HEAD_CAPACITY
    publish_every: int = 8
    snapshot_interval_s: float = 0.02
    heartbeat_timeout_s: float = 10.0
    push_timeout_s: float = 60.0
    startup_timeout_s: float = 30.0
    worker_fault: tuple[int, str, int] | None = None

    def __post_init__(self) -> None:
        self.mode = ExecutionMode.coerce(self.mode)
        if not self.mode.is_columnar:
            raise ConfigurationError(
                "the cluster runtime is columnar-only: rings carry int64 "
                f"key-id arrays, got mode {self.mode.spec!r}"
            )
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.mode.batch_size * 2 > self.ring_capacity_words:
            raise ConfigurationError(
                f"ring capacity {self.ring_capacity_words} words is too "
                f"small for batch size {self.mode.batch_size}"
            )

    def build_workload(self):
        if self.workload_factory is not None:
            return self.workload_factory()
        from repro.workloads.zipf_stream import ZipfWorkload

        return ZipfWorkload(
            exponent=self.skew,
            num_keys=self.num_keys,
            num_messages=self.num_messages,
            seed=self.seed,
        )


@dataclass(slots=True)
class ClusterResult:
    """The outcome of one cluster run."""

    scheme: str
    num_workers: int
    mode: str
    messages_total: int
    elapsed_s: float
    agg_msgs_per_sec: float
    worker_processed: list[int]
    imbalance: float
    source_loads: list[int]
    head: dict
    dict_entries: int
    service_ns: int
    worker_results: list[WorkerResult]
    snapshots: list[ClusterSnapshot]

    def summary(self) -> dict[str, Any]:
        """Flat dict for tables, benchmarks and the CLI."""
        return {
            "scheme": self.scheme,
            "num_workers": self.num_workers,
            "mode": self.mode,
            "messages": self.messages_total,
            "elapsed_s": round(self.elapsed_s, 4),
            "agg_msgs_per_sec": round(self.agg_msgs_per_sec, 1),
            "imbalance": self.imbalance,
            "min_worker_processed": min(self.worker_processed),
            "max_worker_processed": max(self.worker_processed),
            "dict_entries": self.dict_entries,
        }


class _Monitor(threading.Thread):
    """Snapshots the shared state and watches process liveness."""

    def __init__(self, state, processes, config, started_at) -> None:
        super().__init__(name="cluster-monitor", daemon=True)
        self._state = state
        self._processes = processes  # {worker_id: Process}, SOURCE_ID = source
        self._config = config
        self._started_at = started_at
        self._halt = threading.Event()
        self._dead_since: dict[int, float] = {}
        self.done: set[int] = set()  # ids whose result already arrived
        self.snapshots: list[ClusterSnapshot] = []
        self.failure: tuple[int, str] | None = None

    def stop(self) -> None:
        self._halt.set()

    def _check_liveness(self) -> None:
        state = self._state
        for pid, process in self._processes.items():
            if pid in self.done or self.failure is not None:
                continue
            if not process.is_alive():
                # A worker that finished sends its result, then exits; give
                # the coordinator a moment to drain the pipe before calling
                # a clean exit a crash.
                first_seen = self._dead_since.setdefault(pid, time.monotonic())
                if time.monotonic() - first_seen < 1.0:
                    continue
                who = "source" if pid == SOURCE_ID else f"worker {pid}"
                self.failure = (
                    pid,
                    f"{who} died (exit code {process.exitcode}) before "
                    f"finishing its stream",
                )
                return
            if pid == SOURCE_ID or not state.started():
                continue
            age = state.heartbeat_age_s(pid)
            if age > self._config.heartbeat_timeout_s:
                self.failure = (
                    pid,
                    f"worker {pid} stopped heartbeating "
                    f"({age:.1f}s > {self._config.heartbeat_timeout_s}s timeout)",
                )
                return

    def run(self) -> None:
        interval = self._config.snapshot_interval_s
        while not self._halt.wait(interval):
            self.snapshots.append(
                self._state.snapshot(time.perf_counter() - self._started_at)
            )
            self._check_liveness()
            if self.failure is not None:
                self._state.abort()
                return


def run_cluster(config: ClusterConfig) -> ClusterResult:
    """Run one columnar stream through a real multi-process cluster.

    Raises :class:`~repro.exceptions.WorkerCrashError` (with the salvaged
    partial results attached) when a worker dies or hangs, and
    :class:`~repro.exceptions.ClusterRuntimeError` on protocol or startup
    failures.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ClusterRuntimeError(
            "the cluster runtime requires the 'fork' start method "
            "(POSIX-only): shared-memory views are inherited, not pickled"
        )
    ctx = multiprocessing.get_context("fork")
    n = config.num_workers

    state_shm = shared_memory.SharedMemory(
        create=True, size=state_words(n, config.head_capacity) * 8
    )
    ring_shms = [
        shared_memory.SharedMemory(
            create=True, size=ring_words(config.ring_capacity_words) * 8
        )
        for _ in range(n)
    ]
    state = SharedClusterState(
        state_shm.buf, n, config.head_capacity, create=True
    )
    rings = [
        SpscRing(shm.buf, config.ring_capacity_words, create=True)
        for shm in ring_shms
    ]

    delta_pipes = [ctx.Pipe(duplex=False) for _ in range(n)]
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(n)]
    source_pipe = ctx.Pipe(duplex=False)

    def fault_for(worker_id: int):
        fault = config.worker_fault
        if fault is not None and fault[0] == worker_id:
            return (fault[1], fault[2])
        return None

    workers = [
        ctx.Process(
            target=worker_main,
            name=f"cluster-worker-{worker_id}",
            args=(
                worker_id,
                rings[worker_id],
                state,
                delta_pipes[worker_id][0],
                result_pipes[worker_id][1],
                config.service_ns,
                fault_for(worker_id),
            ),
            daemon=True,
        )
        for worker_id in range(n)
    ]
    source = ctx.Process(
        target=source_main,
        name="cluster-source",
        args=(
            config,
            rings,
            state,
            [send for _, send in delta_pipes],
            source_pipe[1],
        ),
        daemon=True,
    )

    processes = {worker_id: process for worker_id, process in enumerate(workers)}
    processes[SOURCE_ID] = source
    monitor: _Monitor | None = None
    try:
        for process in workers:
            process.start()
        source.start()

        # Startup barrier: every worker flags ready in shared state, the
        # source over its pipe; only then does the clock start — process
        # startup never pollutes the throughput measurement.
        deadline = time.monotonic() + config.startup_timeout_s
        source_ready = False
        while not (state.all_ready() and source_ready):
            if source_pipe[0].poll(0.005):
                message = source_pipe[0].recv()
                if message[0] == "ready":
                    source_ready = True
                elif message[0] == "error":
                    raise ClusterRuntimeError(
                        f"source failed during startup: {message[2]}"
                    )
            if any(not process.is_alive() for process in processes.values()):
                raise ClusterRuntimeError("a process died during startup")
            if time.monotonic() > deadline:
                raise ClusterRuntimeError(
                    f"cluster startup timed out after {config.startup_timeout_s}s"
                )

        started_at = time.perf_counter()
        monitor = _Monitor(state, processes, config, started_at)
        monitor.start()
        state.release_start()

        worker_results: dict[int, WorkerResult] = {}
        source_result: dict[str, Any] | None = None
        elapsed = 0.0
        while len(worker_results) < n or source_result is None:
            if monitor.failure is not None:
                break
            progressed = False
            for worker_id, (recv, _) in enumerate(result_pipes):
                if worker_id in worker_results or not recv.poll(0):
                    continue
                message = recv.recv()
                if message[0] == "error":
                    monitor.failure = (
                        worker_id,
                        f"worker {worker_id} failed: {message[2]}",
                    )
                    break
                worker_results[worker_id] = message[1]
                monitor.done.add(worker_id)
                elapsed = time.perf_counter() - started_at
                progressed = True
            if source_result is None and source_pipe[0].poll(0):
                message = source_pipe[0].recv()
                if message[0] == "error":
                    monitor.failure = (
                        SOURCE_ID,
                        f"source failed: {message[2]}",
                    )
                else:
                    source_result = message[1]
                    monitor.done.add(SOURCE_ID)
                progressed = True
            if not progressed:
                time.sleep(0.002)

        if monitor.failure is not None:
            failed_id, reason = monitor.failure
            state.abort()
            partial = {
                "worker_results": dict(worker_results),
                "worker_processed": state.worker_processed(),
                "messages_routed": state.messages_routed(),
            }
            raise WorkerCrashError(
                failed_id,
                f"cluster run failed: {reason}; salvaged results of "
                f"{sorted(worker_results)} of {n} workers",
                partial=partial,
            )

        monitor.stop()
        monitor.join(timeout=5.0)
        for process in processes.values():
            process.join(timeout=10.0)

        processed = [worker_results[w].processed for w in range(n)]
        total = sum(processed)
        elapsed = max(elapsed, 1e-9)
        return ClusterResult(
            scheme=config.scheme,
            num_workers=n,
            mode=config.mode.spec,
            messages_total=total,
            elapsed_s=elapsed,
            agg_msgs_per_sec=total / elapsed,
            worker_processed=processed,
            imbalance=loads_imbalance(processed),
            source_loads=list(source_result["loads"]),
            head=dict(source_result["head"]),
            dict_entries=int(source_result["dict_entries"]),
            service_ns=config.service_ns,
            worker_results=[worker_results[w] for w in range(n)],
            snapshots=list(monitor.snapshots),
        )
    finally:
        state.abort()  # idempotent; unblocks anything still waiting
        if monitor is not None:
            monitor.stop()
            monitor.join(timeout=5.0)
        for process in processes.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for recv, send in [*delta_pipes, *result_pipes, source_pipe]:
            for end in (recv, send):
                try:
                    end.close()
                except OSError:
                    pass
        # Every numpy view over the shared blocks must die before the
        # mappings can close — including the ones captured inside the
        # Process argument tuples and the monitor thread.
        processes.clear()
        workers.clear()
        source = None
        monitor = None
        del rings
        state = None
        for shm in [state_shm, *ring_shms]:
            try:
                shm.close()
                shm.unlink()
            except (BufferError, FileNotFoundError, OSError):
                pass


def validate_against_simulation(
    config: ClusterConfig,
    result: ClusterResult | None = None,
    tolerance: float = 0.2,
) -> dict[str, Any]:
    """Compare a real run's imbalance against the simulator's prediction.

    The runtime has exactly one router, so a ``num_sources=1`` simulation
    of the same workload, scheme and seed routes the identical stream —
    per-worker counts should match exactly, and the check asserts the
    relative imbalance difference stays within ``tolerance`` (headroom for
    future multi-source runtimes, where the match is statistical).
    """
    from repro.simulation.runner import run_simulation

    if result is None:
        result = run_cluster(config)
    simulated = run_simulation(
        config.build_workload(),
        scheme=config.scheme,
        num_workers=config.num_workers,
        num_sources=1,
        seed=config.seed,
        scheme_options=dict(config.scheme_options),
        mode=config.mode,
    )
    real = result.imbalance
    predicted = simulated.final_imbalance
    scale = max(abs(predicted), 1e-9)
    relative = abs(real - predicted) / scale if predicted else abs(real - predicted)
    return {
        "real_imbalance": real,
        "simulated_imbalance": predicted,
        "relative_difference": relative,
        "within_tolerance": relative <= tolerance,
        "loads_match": result.worker_processed == list(simulated.worker_loads),
        "tolerance": tolerance,
    }
