"""Coordinator of the multi-process cluster runtime.

``run_cluster`` owns every resource of one run: the shared state block, one
ring buffer per worker, the delta/result pipes, the source and worker
processes (all spawned under the ``fork`` start method so shared-memory
views and pipe ends are inherited, never pickled), a monitor thread that
snapshots the shared state and watches liveness, and a *supervisor* that
turns detected failures into recoveries.

Failure handling is supervised, not merely detected.  When a worker dies
(process liveness), wedges (heartbeat age) or reports a protocol error, the
supervisor:

1. **fences** the slot in shared state — the source stops pushing into its
   ring immediately and redirects the slot's share to the survivors;
2. reaps the dead incarnation and **drains the ring's in-flight frames**,
   itemising the exact loss (frames and the messages they carried);
3. **respawns** the worker (up to :attr:`ClusterConfig.max_restarts`) over
   a re-initialised ring, replays the dictionary to the fresh replica and
   tells the source to re-adopt its routing state through the
   partitioner's ``export_state``/``adopt_state`` hot-handoff;
4. past the restart budget it **degrades**: the redirect to the survivors
   becomes permanent and the run completes on the remaining workers
   (``degrade_when_exhausted=False`` restores the strict PR-8 behaviour of
   raising :class:`~repro.exceptions.WorkerCrashError`).

A worker that fails *after* the source finished its stream is salvaged in
place — its delivered-message ledger lives in shared state — rather than
respawned into a stream that has already ended.  Every recovery is priced
through the elasticity migration accountant (see ``runtime/source.py``)
and itemised in the :class:`ClusterResult`.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable

from repro.exceptions import (
    ClusterRuntimeError,
    ConfigurationError,
    WorkerCrashError,
)
from repro.execution import ExecutionMode, ModeLike
from repro.runtime.faults import FaultPlan
from repro.runtime.ring import SpscRing, ring_words
from repro.runtime.source import source_main
from repro.runtime.state import (
    DEFAULT_HEAD_CAPACITY,
    ClusterSnapshot,
    SharedClusterState,
    loads_imbalance,
    state_words,
)
from repro.runtime.worker import WorkerResult, worker_main

#: Sentinel worker id the monitor uses for the source process.
SOURCE_ID = -1

#: Grace (seconds) between a watched process exiting with code 0 and the
#: monitor calling it a failure — a finished worker sends its result and
#: exits, and the coordinator needs a beat to drain the pipe.  A non-zero
#: exit code skips the grace: nothing clean exits that way.
_CLEAN_EXIT_GRACE_S = 1.0


@dataclass(slots=True)
class ClusterConfig:
    """Parameters of one cluster run.

    The workload defaults to a Zipf stream (``skew``/``num_keys``/
    ``num_messages``); ``workload_factory`` overrides it with any workload
    exposing ``iter_batches_columnar``.  ``mode`` must be columnar — the
    rings carry interned ``int64`` id arrays, scalar objects never cross a
    process boundary.

    ``service_ns`` is the modelled per-message service time of a worker
    (I/O-bound operator work; the worker *blocks*, it does not burn CPU).

    Fault tolerance knobs:

    ``inject``
        a :class:`~repro.runtime.faults.FaultPlan` (or its spec string,
        e.g. ``"crash@w2:5000,slow@w0:3x"``) of deterministic faults to
        arm in the workers — see ``runtime/faults.py`` for the grammar.
    ``max_restarts``
        supervised respawns allowed **per worker slot** before the slot is
        given up on.
    ``degrade_when_exhausted``
        with the budget spent, ``True`` remaps the slot's share to the
        survivors and completes the run degraded; ``False`` raises
        :class:`~repro.exceptions.WorkerCrashError` (the strict pre-
        supervision behaviour; so does ``max_restarts=0`` with it).
    ``startup_grace_s``
        how long a freshly forked (or respawned) worker may run without a
        first heartbeat before the monitor declares it hung.  Heartbeat
        *age* only applies after the first beat; a slow-forking worker has
        no beats at all (``heartbeat_age_s == inf``) and is governed by
        this grace instead.
    ``recovery_linger_s``
        how long the source waits at end-of-stream for recoveries still in
        flight (a replacement spawned moments before EOF must still get
        its dictionary replay and its EOF frame).
    """

    scheme: str = "PKG"
    num_workers: int = 4
    num_messages: int = 50_000
    num_keys: int = 5_000
    skew: float = 1.4
    seed: int = 0
    scheme_options: dict[str, Any] = field(default_factory=dict)
    mode: ModeLike = "columnar:512"
    workload_factory: Callable[[], Any] | None = None
    service_ns: int = 10_000
    ring_capacity_words: int = 1 << 14
    head_capacity: int = DEFAULT_HEAD_CAPACITY
    publish_every: int = 8
    snapshot_interval_s: float = 0.02
    heartbeat_timeout_s: float = 10.0
    push_timeout_s: float = 60.0
    startup_timeout_s: float = 30.0
    startup_grace_s: float = 5.0
    recovery_linger_s: float = 30.0
    inject: FaultPlan | str | None = None
    max_restarts: int = 1
    degrade_when_exhausted: bool = True

    def __post_init__(self) -> None:
        self.mode = ExecutionMode.coerce(self.mode)
        if not self.mode.is_columnar:
            raise ConfigurationError(
                "the cluster runtime is columnar-only: rings carry int64 "
                f"key-id arrays, got mode {self.mode.spec!r}"
            )
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.mode.batch_size * 2 > self.ring_capacity_words:
            raise ConfigurationError(
                f"ring capacity {self.ring_capacity_words} words is too "
                f"small for batch size {self.mode.batch_size}"
            )
        self.inject = FaultPlan.coerce(self.inject)
        if self.inject is not None and self.inject.max_worker_id >= self.num_workers:
            raise ConfigurationError(
                f"fault plan {self.inject.spec!r} names worker "
                f"{self.inject.max_worker_id}, but the cluster has workers "
                f"[0, {self.num_workers})"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.startup_grace_s <= 0:
            raise ConfigurationError(
                f"startup_grace_s must be > 0, got {self.startup_grace_s}"
            )

    def build_workload(self):
        if self.workload_factory is not None:
            return self.workload_factory()
        from repro.workloads.zipf_stream import ZipfWorkload

        return ZipfWorkload(
            exponent=self.skew,
            num_keys=self.num_keys,
            num_messages=self.num_messages,
            seed=self.seed,
        )


@dataclass(slots=True)
class ClusterResult:
    """The outcome of one cluster run.

    ``worker_processed`` counts messages each slot *delivered* (processed
    by any incarnation, plus redirected share it absorbed for down peers) —
    sourced from the shared ledger, so it is exact across restarts.  On a
    fault-free run ``messages_total == sum(worker_processed)`` equals the
    routed stream; on a recovered run the difference is itemised:
    ``messages_lost`` in-flight messages died with crashed incarnations,
    ``messages_redirected`` were delivered by survivors instead of the
    slot they were routed to.
    """

    scheme: str
    num_workers: int
    mode: str
    messages_total: int
    elapsed_s: float
    agg_msgs_per_sec: float
    worker_processed: list[int]
    imbalance: float
    source_loads: list[int]
    head: dict
    dict_entries: int
    service_ns: int
    worker_results: list[WorkerResult]
    snapshots: list[ClusterSnapshot]
    restarts: int = 0
    frames_lost: int = 0
    messages_lost: int = 0
    messages_redirected: int = 0
    recovery_seconds: float = 0.0
    lost_per_worker: list[int] = field(default_factory=list)
    redirected_out: list[int] = field(default_factory=list)
    redirected_in: list[int] = field(default_factory=list)
    degraded_workers: list[int] = field(default_factory=list)
    recovery_log: list[str] = field(default_factory=list)
    #: The source's migration report: every recovery priced in the same
    #: keys-moved / entries-migrated currency as elasticity rescales.
    migration: Any = None

    @property
    def recovered(self) -> bool:
        """True when the supervisor intervened at least once."""
        return bool(self.recovery_log)

    @property
    def degraded(self) -> bool:
        """True when at least one slot ran out of restarts and was remapped."""
        return bool(self.degraded_workers)

    def summary(self) -> dict[str, Any]:
        """Flat dict for tables, benchmarks and the CLI."""
        summary = {
            "scheme": self.scheme,
            "num_workers": self.num_workers,
            "mode": self.mode,
            "messages": self.messages_total,
            "elapsed_s": round(self.elapsed_s, 4),
            "agg_msgs_per_sec": round(self.agg_msgs_per_sec, 1),
            "imbalance": self.imbalance,
            "min_worker_processed": min(self.worker_processed),
            "max_worker_processed": max(self.worker_processed),
            "dict_entries": self.dict_entries,
        }
        if self.recovered:
            summary.update(
                {
                    "restarts": self.restarts,
                    "frames_lost": self.frames_lost,
                    "messages_lost": self.messages_lost,
                    "messages_redirected": self.messages_redirected,
                    "recovery_seconds": round(self.recovery_seconds, 4),
                    "degraded_workers": list(self.degraded_workers),
                }
            )
        return summary


class _Monitor(threading.Thread):
    """Snapshots the shared state and watches process liveness.

    Failures are *queued* for the supervisor, not acted on: the monitor
    never aborts the run.  A watched process leaves the watch set the
    moment its failure is queued (or its result arrives), so one failure
    is reported exactly once; the supervisor re-registers the replacement
    incarnation after a respawn.
    """

    def __init__(self, state, config, started_at) -> None:
        super().__init__(name="cluster-monitor", daemon=True)
        self._state = state
        self._config = config
        self._started_at = started_at
        self._halt = threading.Event()
        self._lock = threading.Lock()
        #: pid -> (process, watch_since); pid SOURCE_ID is the source.
        self._watch: dict[int, tuple[Any, float]] = {}
        self._dead_since: dict[int, float] = {}
        self._failures: list[tuple[int, Any, str]] = []
        self.snapshots: list[ClusterSnapshot] = []

    def watch(self, pid: int, process) -> None:
        with self._lock:
            self._watch[pid] = (process, time.monotonic())
            self._dead_since.pop(pid, None)

    def forget(self, pid: int) -> None:
        """Stop watching a process (result arrived, or being recovered)."""
        with self._lock:
            self._watch.pop(pid, None)
            self._dead_since.pop(pid, None)

    def take_failure(self) -> tuple[int, Any, str] | None:
        """Pop the oldest queued failure: ``(pid, process, reason)``."""
        with self._lock:
            if self._failures:
                return self._failures.pop(0)
        return None

    def has_failures(self) -> bool:
        with self._lock:
            return bool(self._failures)

    def stop(self) -> None:
        self._halt.set()

    def _fail(self, pid: int, process, reason: str) -> None:
        self._watch.pop(pid, None)
        self._dead_since.pop(pid, None)
        self._failures.append((pid, process, reason))

    def _check_liveness(self) -> None:
        state = self._state
        now = time.monotonic()
        with self._lock:
            for pid, (process, watch_since) in list(self._watch.items()):
                who = "source" if pid == SOURCE_ID else f"worker {pid}"
                if not process.is_alive():
                    exitcode = process.exitcode
                    if exitcode == 0:
                        # A clean exit usually precedes the coordinator
                        # draining the result pipe by a moment.
                        first_seen = self._dead_since.setdefault(pid, now)
                        if now - first_seen < _CLEAN_EXIT_GRACE_S:
                            continue
                    self._fail(
                        pid,
                        process,
                        f"{who} died (exit code {exitcode}) before "
                        f"finishing its stream",
                    )
                    continue
                if pid == SOURCE_ID or not state.started():
                    continue
                if state.worker_fenced(pid):
                    continue  # mid-recovery; the supervisor owns this slot
                age = state.heartbeat_age_s(pid)
                if age == float("inf"):
                    # No heartbeat yet: a forking/startup phase, governed
                    # by the startup grace, not the heartbeat timeout.
                    if now - watch_since > self._config.startup_grace_s:
                        self._fail(
                            pid,
                            process,
                            f"worker {pid} never heartbeat within the "
                            f"{self._config.startup_grace_s}s startup grace",
                        )
                    continue
                if age > self._config.heartbeat_timeout_s:
                    self._fail(
                        pid,
                        process,
                        f"worker {pid} stopped heartbeating "
                        f"({age:.1f}s > {self._config.heartbeat_timeout_s}s "
                        f"timeout)",
                    )

    def run(self) -> None:
        interval = self._config.snapshot_interval_s
        while not self._halt.wait(interval):
            self.snapshots.append(
                self._state.snapshot(time.perf_counter() - self._started_at)
            )
            self._check_liveness()


class _Supervisor:
    """Turns one detected worker failure into one recovery action.

    Owned and driven by the coordinator's result loop (single-threaded);
    the monitor only queues failures.  Per failure:
    fence -> reap -> drain in-flight -> respawn | degrade | salvage.
    """

    def __init__(
        self,
        config: ClusterConfig,
        ctx,
        state: SharedClusterState,
        rings: list[SpscRing],
        ring_shms,
        delta_pipe_pools,
        result_pipes,
        processes,
        monitor: _Monitor,
        control_send,
    ) -> None:
        self._config = config
        self._ctx = ctx
        self._state = state
        self._rings = rings
        self._ring_shms = ring_shms
        self._delta_pipe_pools = delta_pipe_pools
        self._result_pipes = result_pipes
        self._processes = processes
        self._monitor = monitor
        self._control_send = control_send
        self._incarnation = [0] * config.num_workers
        self.restarts = 0
        self.frames_lost = 0
        self.messages_lost = 0
        self.lost_per_worker = [0] * config.num_workers
        self.recovery_seconds = 0.0
        self.recovery_log: list[str] = []
        self.degraded: set[int] = set()
        #: Results the supervisor synthesized for slots that cannot report
        #: for themselves (degraded, or failed after end-of-stream).
        self.salvaged_results: dict[int, WorkerResult] = {}

    # ------------------------------------------------------------------ #
    def _log(self, message: str) -> None:
        self.recovery_log.append(message)

    def _tell_source(self, message) -> None:
        try:
            self._control_send.send(message)
        except (BrokenPipeError, OSError):
            pass  # source already gone; its own failure is handled separately

    def _reap(self, process) -> None:
        process.join(timeout=0.5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)

    def _await_fence_ack(self, worker_id: int, timeout_s: float = 1.0) -> bool:
        """Wait for the source to promise it is off the fenced ring.

        Draining or re-initialising the ring while the source could still
        be mid-push would corrupt it (and silently lose the late frames
        from the in-flight count).  The source checks fences every batch
        and inside every blocked push, so the ack lands within one batch
        cycle; the timeout only matters when the source itself is dead or
        done — both cases where it no longer touches the ring.
        """
        deadline = time.monotonic() + timeout_s
        while not self._state.fence_acknowledged(worker_id):
            if (
                self._state.source_done()
                or self._state.aborted()
                or time.monotonic() > deadline
            ):
                return False
            time.sleep(0.001)
        return True

    def _drain(self, worker_id: int) -> None:
        drain = self._rings[worker_id].drain_inflight()
        self.frames_lost += drain.frames
        self.messages_lost += drain.messages
        self.lost_per_worker[worker_id] += drain.messages

    def _synthesize_result(self, worker_id: int) -> WorkerResult:
        processed = self._state.worker_processed()[worker_id]
        result = WorkerResult(
            worker_id=worker_id,
            processed=processed,
            frames=0,
            dict_entries=0,
            salvaged=True,
        )
        self.salvaged_results[worker_id] = result
        return result

    def _respawn(self, worker_id: int, incarnation: int) -> bool:
        """Fork and barrier one replacement; True when it came up ready."""
        config = self._config
        ring = SpscRing(
            self._ring_shms[worker_id].buf,
            config.ring_capacity_words,
            create=True,
        )
        self._rings[worker_id] = ring
        self._state.reset_worker(worker_id)
        recv, send = self._ctx.Pipe(duplex=False)
        old_recv, old_send = self._result_pipes[worker_id]
        self._result_pipes[worker_id] = (recv, send)
        for end in (old_recv, old_send):
            try:
                end.close()
            except OSError:
                pass
        faults = (
            config.inject.for_worker(worker_id, incarnation)
            if config.inject is not None
            else None
        )
        process = self._ctx.Process(
            target=worker_main,
            name=f"cluster-worker-{worker_id}.{incarnation}",
            args=(
                worker_id,
                ring,
                self._state,
                self._delta_pipe_pools[worker_id][incarnation][0],
                send,
                config.service_ns,
                faults,
            ),
            daemon=True,
        )
        process.start()
        self._processes[worker_id] = process
        deadline = time.monotonic() + config.startup_timeout_s
        while not self._state.worker_ready(worker_id):
            if not process.is_alive() or time.monotonic() > deadline:
                self._reap(process)
                return False
            time.sleep(0.002)
        return True

    # ------------------------------------------------------------------ #
    def handle(
        self,
        worker_id: int,
        process,
        reason: str,
        unaccounted_messages: int = 0,
        unaccounted_frames: int = 0,
    ) -> None:
        """Recover one failed worker slot (or raise in strict mode)."""
        config = self._config
        state = self._state
        t0 = time.perf_counter()
        # Snapshot the stream phase BEFORE fencing: raising the fence
        # unblocks a source stuck pushing to the dead ring, which can let
        # it redirect the remainder and finish while we are still reaping.
        # The salvage-vs-respawn decision must reflect the phase at
        # detection time, or a mid-stream hang would nondeterministically
        # be treated as an end-of-stream failure.
        source_was_done = state.source_done()
        state.fence_worker(worker_id)
        self._monitor.forget(worker_id)
        self._reap(process)
        if not source_was_done:
            self._await_fence_ack(worker_id)
        self._drain(worker_id)
        self.messages_lost += unaccounted_messages
        self.frames_lost += unaccounted_frames
        self.lost_per_worker[worker_id] += unaccounted_messages

        if source_was_done:
            # The stream already ended: nothing left to deliver to a
            # replacement.  Salvage the slot's ledger in place; the fence
            # stays up so the source's EOF linger skips the dead ring.
            self._synthesize_result(worker_id)
            self._tell_source(("salvaged", worker_id))
            self.recovery_seconds += time.perf_counter() - t0
            self._log(
                f"worker {worker_id}: failed at end-of-stream ({reason}); "
                f"ledger salvaged, no respawn"
            )
            return

        incarnation = self._incarnation[worker_id] + 1
        while incarnation <= config.max_restarts:
            self._incarnation[worker_id] = incarnation
            self.restarts += 1
            if self._respawn(worker_id, incarnation):
                state.clear_fence(worker_id)
                self._tell_source(("recover", worker_id, incarnation))
                self._monitor.watch(worker_id, self._processes[worker_id])
                self.recovery_seconds += time.perf_counter() - t0
                self._log(
                    f"worker {worker_id}: {reason}; respawned as "
                    f"incarnation {incarnation} "
                    f"({self.lost_per_worker[worker_id]} in-flight messages "
                    f"lost)"
                )
                return
            self._log(
                f"worker {worker_id}: replacement incarnation "
                f"{incarnation} failed to start"
            )
            incarnation += 1

        if config.degrade_when_exhausted:
            self.degraded.add(worker_id)
            self._synthesize_result(worker_id)
            self._tell_source(("degrade", worker_id))
            self.recovery_seconds += time.perf_counter() - t0
            self._log(
                f"worker {worker_id}: {reason}; restart budget "
                f"({config.max_restarts}) exhausted, share remapped to "
                f"survivors"
            )
            return

        state.abort()
        raise WorkerCrashError(
            worker_id,
            f"cluster run failed: {reason}; restart budget "
            f"({config.max_restarts}) exhausted and degradation disabled",
            partial={
                "worker_processed": state.worker_processed(),
                "messages_routed": state.messages_routed(),
            },
            restarts=self.restarts,
        )


def run_cluster(config: ClusterConfig) -> ClusterResult:
    """Run one columnar stream through a real multi-process cluster.

    Worker failures are supervised (fence, drain, respawn or degrade — see
    the module docstring); :class:`~repro.exceptions.WorkerCrashError` is
    raised only when recovery is disabled (``max_restarts=0`` with
    ``degrade_when_exhausted=False``), when the *source* fails, or when no
    worker survives.  :class:`~repro.exceptions.ClusterRuntimeError` covers
    protocol and startup failures.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ClusterRuntimeError(
            "the cluster runtime requires the 'fork' start method "
            "(POSIX-only): shared-memory views are inherited, not pickled"
        )
    ctx = multiprocessing.get_context("fork")
    n = config.num_workers

    state_shm = shared_memory.SharedMemory(
        create=True, size=state_words(n, config.head_capacity) * 8
    )
    ring_shms = [
        shared_memory.SharedMemory(
            create=True, size=ring_words(config.ring_capacity_words) * 8
        )
        for _ in range(n)
    ]
    state = SharedClusterState(
        state_shm.buf, n, config.head_capacity, create=True
    )
    rings = [
        SpscRing(shm.buf, config.ring_capacity_words, create=True)
        for shm in ring_shms
    ]

    # One delta pipe per worker *incarnation*, created before any fork: the
    # source cannot receive new pipe ends after it forks, so the pool for
    # every allowed respawn must exist up front (slot k of a pool feeds the
    # k-th incarnation of that worker).
    incarnations = 1 + config.max_restarts
    delta_pipe_pools = [
        [ctx.Pipe(duplex=False) for _ in range(incarnations)] for _ in range(n)
    ]
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(n)]
    source_pipe = ctx.Pipe(duplex=False)
    control_pipe = ctx.Pipe(duplex=False)
    plan = config.inject

    workers = [
        ctx.Process(
            target=worker_main,
            name=f"cluster-worker-{worker_id}",
            args=(
                worker_id,
                rings[worker_id],
                state,
                delta_pipe_pools[worker_id][0][0],
                result_pipes[worker_id][1],
                config.service_ns,
                plan.for_worker(worker_id, 0) if plan is not None else None,
            ),
            daemon=True,
        )
        for worker_id in range(n)
    ]
    source = ctx.Process(
        target=source_main,
        name="cluster-source",
        args=(
            config,
            rings,
            state,
            [[send for _, send in pool] for pool in delta_pipe_pools],
            source_pipe[1],
            control_pipe[0],
        ),
        daemon=True,
    )

    processes = {worker_id: process for worker_id, process in enumerate(workers)}
    processes[SOURCE_ID] = source
    monitor: _Monitor | None = None
    try:
        for process in workers:
            process.start()
        source.start()

        # Startup barrier: every worker flags ready in shared state, the
        # source over its pipe; only then does the clock start — process
        # startup never pollutes the throughput measurement.
        deadline = time.monotonic() + config.startup_timeout_s
        source_ready = False
        while not (state.all_ready() and source_ready):
            if source_pipe[0].poll(0.005):
                message = source_pipe[0].recv()
                if message[0] == "ready":
                    source_ready = True
                elif message[0] == "error":
                    raise ClusterRuntimeError(
                        f"source failed during startup: {message[2]}"
                    )
            if any(not process.is_alive() for process in processes.values()):
                raise ClusterRuntimeError("a process died during startup")
            if time.monotonic() > deadline:
                raise ClusterRuntimeError(
                    f"cluster startup timed out after {config.startup_timeout_s}s"
                )

        started_at = time.perf_counter()
        monitor = _Monitor(state, config, started_at)
        for pid, process in processes.items():
            monitor.watch(pid, process)
        monitor.start()
        supervisor = _Supervisor(
            config,
            ctx,
            state,
            rings,
            ring_shms,
            delta_pipe_pools,
            result_pipes,
            processes,
            monitor,
            control_pipe[1],
        )
        state.release_start()

        def fail_run(failed_id: int, reason: str) -> None:
            state.abort()
            partial = {
                "worker_results": dict(worker_results),
                "worker_processed": state.worker_processed(),
                "messages_routed": state.messages_routed(),
            }
            raise WorkerCrashError(
                failed_id,
                f"cluster run failed: {reason}; salvaged results of "
                f"{sorted(worker_results)} of {n} workers",
                partial=partial,
                restarts=supervisor.restarts,
            )

        worker_results: dict[int, WorkerResult] = {}
        source_result: dict[str, Any] | None = None
        elapsed = 0.0
        while True:
            finished = set(worker_results) | set(supervisor.salvaged_results)
            if len(finished) >= n and source_result is not None:
                break
            progressed = False
            failure = monitor.take_failure()
            if failure is not None:
                pid, process, reason = failure
                if pid == SOURCE_ID:
                    fail_run(SOURCE_ID, reason)
                if processes.get(pid) is process and pid not in finished:
                    # (a stale entry for an already-replaced incarnation,
                    # or a slot that already reported, is ignored)
                    supervisor.handle(pid, process, reason)
                progressed = True
            for worker_id in range(n):
                if worker_id in worker_results or worker_id in supervisor.salvaged_results:
                    continue
                recv = result_pipes[worker_id][0]
                if not recv.poll(0):
                    continue
                try:
                    message = recv.recv()
                except (EOFError, OSError):
                    continue  # the pipe died with its worker; the monitor reports it
                if message[0] == "error":
                    monitor.forget(worker_id)
                    supervisor.handle(
                        worker_id,
                        processes[worker_id],
                        f"worker {worker_id} failed: {message[2]}",
                        # Messages the worker had popped off the ring but
                        # not delivered when it died — invisible to the
                        # ring drain, itemised by the worker itself.
                        unaccounted_messages=(
                            message[3] if len(message) > 3 else 0
                        ),
                        unaccounted_frames=(
                            message[4] if len(message) > 4 else 0
                        ),
                    )
                else:
                    worker_results[worker_id] = message[1]
                    supervisor.salvaged_results.pop(worker_id, None)
                    monitor.forget(worker_id)
                    elapsed = time.perf_counter() - started_at
                progressed = True
            if source_result is None and source_pipe[0].poll(0):
                message = source_pipe[0].recv()
                if message[0] == "error":
                    fail_run(SOURCE_ID, f"source failed: {message[2]}")
                source_result = message[1]
                monitor.forget(SOURCE_ID)
                elapsed = time.perf_counter() - started_at
                progressed = True
            if not progressed:
                time.sleep(0.002)

        monitor.stop()
        monitor.join(timeout=5.0)
        for process in processes.values():
            process.join(timeout=10.0)

        # Delivered counts come from the shared ledger: cumulative across
        # incarnations of a slot, inclusive of redirected share absorbed
        # for down peers — WorkerResult.processed only covers one
        # incarnation's own lifetime.
        processed = state.worker_processed()
        total = sum(processed)
        elapsed = max(elapsed, 1e-9)
        final_results = [
            worker_results.get(w) or supervisor.salvaged_results[w]
            for w in range(n)
        ]
        return ClusterResult(
            scheme=config.scheme,
            num_workers=n,
            mode=config.mode.spec,
            messages_total=total,
            elapsed_s=elapsed,
            agg_msgs_per_sec=total / elapsed,
            worker_processed=processed,
            imbalance=loads_imbalance(processed),
            source_loads=list(source_result["loads"]),
            head=dict(source_result["head"]),
            dict_entries=int(source_result["dict_entries"]),
            service_ns=config.service_ns,
            worker_results=final_results,
            snapshots=list(monitor.snapshots),
            restarts=supervisor.restarts,
            frames_lost=supervisor.frames_lost,
            messages_lost=supervisor.messages_lost,
            messages_redirected=sum(source_result["redirected_out"]),
            recovery_seconds=supervisor.recovery_seconds,
            lost_per_worker=list(supervisor.lost_per_worker),
            redirected_out=list(source_result["redirected_out"]),
            redirected_in=list(source_result["redirected_in"]),
            degraded_workers=sorted(supervisor.degraded),
            recovery_log=list(supervisor.recovery_log),
            migration=source_result["migration"],
        )
    finally:
        state.abort()  # idempotent; unblocks anything still waiting
        if monitor is not None:
            monitor.stop()
            monitor.join(timeout=5.0)
        for process in processes.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        pipe_pairs = [
            *(pair for pool in delta_pipe_pools for pair in pool),
            *result_pipes,
            source_pipe,
            control_pipe,
        ]
        for recv, send in pipe_pairs:
            for end in (recv, send):
                try:
                    end.close()
                except OSError:
                    pass
        # Every numpy view over the shared blocks must die before the
        # mappings can close — including the ones captured inside the
        # Process argument tuples, the supervisor and the monitor thread.
        processes.clear()
        workers.clear()
        source = None
        monitor = None
        supervisor = None
        rings.clear()  # the supervisor shares this list; empty it for both
        del rings
        state = None
        for shm in [state_shm, *ring_shms]:
            # close() can refuse while an in-flight exception's traceback
            # still pins buffer views (strict-mode raise); unlink must run
            # regardless, or the segment outlives the run on /dev/shm.
            try:
                shm.close()
            except (BufferError, OSError):
                pass
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass


def validate_against_simulation(
    config: ClusterConfig,
    result: ClusterResult | None = None,
    tolerance: float = 0.2,
) -> dict[str, Any]:
    """Compare a real run against the simulator's prediction.

    The runtime has exactly one router, so a ``num_sources=1`` simulation
    of the same workload, scheme and seed routes the identical stream.
    What must match depends on whether the run recovered from faults:

    * ``routing_match`` — the source's load vector (messages *routed* to
      each slot) equals the simulation bit for bit.  Faults never touch
      routing (redirection happens after the routing decision, and state
      re-adoption is byte-identical), so this holds for every run.
    * ``delivery_exact`` — the delivered counts equal the simulation too.
      Only a fault-free run can satisfy this; a recovered run loses
      in-flight messages and redirects share to survivors.
    * ``conservation_ok`` — per slot, every routed message is accounted
      for exactly once: delivered there, lost in a drained ring
      (itemised), or delivered by a survivor (redirect ledgers balance).
      This is the recovered-run replacement for exact delivery: no
      message is double-delivered and every loss is named.

    ``ok`` rolls up what the run's kind requires; ``within_tolerance``
    bounds the relative imbalance difference (headroom for future
    multi-source runtimes, where the match is statistical).
    """
    from repro.simulation.runner import run_simulation

    if result is None:
        result = run_cluster(config)
    simulated = run_simulation(
        config.build_workload(),
        scheme=config.scheme,
        num_workers=config.num_workers,
        num_sources=1,
        seed=config.seed,
        scheme_options=dict(config.scheme_options),
        mode=config.mode,
    )
    real = result.imbalance
    predicted = simulated.final_imbalance
    scale = max(abs(predicted), 1e-9)
    relative = abs(real - predicted) / scale if predicted else abs(real - predicted)
    within_tolerance = relative <= tolerance

    sim_loads = list(simulated.worker_loads)
    routing_match = result.source_loads == sim_loads
    delivery_exact = result.worker_processed == sim_loads

    n = result.num_workers
    lost = result.lost_per_worker or [0] * n
    out = result.redirected_out or [0] * n
    into = result.redirected_in or [0] * n
    conservation_ok = all(
        result.source_loads[w]
        == result.worker_processed[w] + lost[w] + out[w] - into[w]
        for w in range(n)
    ) and sum(result.worker_processed) + result.messages_lost == sum(
        result.source_loads
    )

    if result.recovered:
        ok = routing_match and conservation_ok
    else:
        ok = routing_match and delivery_exact and conservation_ok and within_tolerance
    return {
        "real_imbalance": real,
        "simulated_imbalance": predicted,
        "relative_difference": relative,
        "within_tolerance": within_tolerance,
        "loads_match": delivery_exact,
        "routing_match": routing_match,
        "delivery_exact": delivery_exact,
        "conservation_ok": conservation_ok,
        "recovered": result.recovered,
        "restarts": result.restarts,
        "messages_lost": result.messages_lost,
        "ok": ok,
        "tolerance": tolerance,
    }
