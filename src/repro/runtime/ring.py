"""Single-producer / single-consumer ring buffer over shared memory.

One ring connects the source process to one worker process.  The backing
store is any writable buffer of ``int64`` words — a
``multiprocessing.shared_memory.SharedMemory`` block between processes, or
a plain ``numpy`` array in unit tests — so the protocol is testable without
spawning a single process.

Layout (all words are little-endian ``int64``)::

    word 0            producer position  (monotone, in payload words)
    word 1            consumer position  (monotone, in payload words)
    word 2            payload capacity   (in words, fixed at creation)
    words 3..7        reserved
    words 8..8+cap    circular payload region holding frames

A *frame* is a contiguous run of words inside the payload region::

    [seq, kind, length, base_index, dict_high_water, ids[0..length)]

``kind`` is ``DATA`` (an id batch), ``EOF`` (the poison pill ending the
stream) or ``PAD`` (skip to the start of the region; emitted when a frame
would straddle the wrap point so payloads always stay contiguous).  ``seq``
increments by one per DATA/EOF frame; the consumer verifies it and raises
:class:`~repro.exceptions.ClusterRuntimeError` on a gap — a torn or skipped
frame never goes unnoticed.  ``dict_high_water`` tells the consumer how
many dictionary entries it must have replicated before decoding the frame's
ids (see ``runtime/worker.py`` for the delta-sync protocol).

Publication order is the classic SPSC discipline: the producer writes the
frame words first and only then advances word 0; the consumer reads word 0,
consumes up to it and only then advances word 1.  Positions are monotone,
so ``producer - consumer`` is the exact number of unread payload words and
full/empty states never alias.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusterRuntimeError

#: Frame kinds.
DATA = 0
EOF = 1
PAD = 2

#: Words in a frame header: seq, kind, length, base_index, dict_high_water.
FRAME_HEADER_WORDS = 5

#: Control words before the payload region (positions, capacity, reserved).
CONTROL_WORDS = 8

_PRODUCER = 0
_CONSUMER = 1
_CAPACITY = 2

#: Bounded deterministic exponential backoff while a push waits for space
#: or a pop for data: start short (the common case is the peer freeing the
#: ring within microseconds), double per idle poll, cap low enough that a
#: recovering cluster reacts within a few milliseconds.  On the 1-CPU
#: containers this runtime targets, yielding the core to the peer process
#: *is* the fast path; pure spinning would starve it, and a fixed long
#: sleep would add latency exactly when the ring just drained.  No jitter:
#: the wait schedule of a seeded run is reproducible.
_BACKOFF_MIN_S = 0.00005
_BACKOFF_MAX_S = 0.002


class RingClosed(ClusterRuntimeError):
    """The consumer popped past the EOF frame, or pushed after closing."""


@dataclass(slots=True)
class Frame:
    """One popped frame (header fields plus a copied-out id array)."""

    seq: int
    kind: int
    base_index: int
    dict_high_water: int
    ids: np.ndarray

    @property
    def is_eof(self) -> bool:
        return self.kind == EOF


@dataclass(slots=True)
class InflightDrain:
    """What a supervisor salvaged from a dead consumer's ring."""

    frames: int  # DATA frames drained (never popped by the worker)
    messages: int  # ids those frames carried — the exact in-flight loss
    eof_seen: bool  # the producer had already closed the ring


def ring_words(capacity_words: int) -> int:
    """Total ``int64`` words a ring with the given payload capacity needs."""
    return CONTROL_WORDS + capacity_words


class SpscRing:
    """The single-producer/single-consumer ring protocol.

    Parameters
    ----------
    buffer:
        Writable buffer exposing at least ``ring_words(capacity)`` int64
        words (a ``SharedMemory.buf``, a ``numpy`` array, a ``bytearray``).
    capacity_words:
        Payload-region size when *creating* a ring (``create=True``).  Must
        leave room for the largest pushed frame **plus** a PAD header.
    create:
        ``True`` initialises the control words (producer side of a fresh
        block); ``False`` attaches to an already-initialised ring.
    """

    __slots__ = ("_words", "_capacity", "_next_push_seq", "_next_pop_seq", "_closed")

    def __init__(
        self,
        buffer,
        capacity_words: int | None = None,
        *,
        create: bool = False,
    ) -> None:
        if isinstance(buffer, np.ndarray):
            if buffer.dtype != np.int64:
                raise ClusterRuntimeError("ring buffer array must be int64")
            words = buffer
        else:
            words = np.frombuffer(buffer, dtype=np.int64)
        if create:
            if capacity_words is None:
                raise ClusterRuntimeError("creating a ring requires capacity_words")
            min_capacity = 2 * FRAME_HEADER_WORDS + 1
            if capacity_words < min_capacity:
                raise ClusterRuntimeError(
                    f"ring capacity must be >= {min_capacity} words, "
                    f"got {capacity_words}"
                )
            if words.size < ring_words(capacity_words):
                raise ClusterRuntimeError(
                    f"buffer holds {words.size} words, ring needs "
                    f"{ring_words(capacity_words)}"
                )
            words[:CONTROL_WORDS] = 0
            words[_CAPACITY] = capacity_words
        self._words = words
        self._capacity = int(words[_CAPACITY])
        if self._capacity < 1:
            raise ClusterRuntimeError("attaching to an uninitialised ring")
        self._next_push_seq = 0
        self._next_pop_seq = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity_words(self) -> int:
        return self._capacity

    def free_words(self) -> int:
        """Payload words currently free (producer's view)."""
        words = self._words
        return self._capacity - (int(words[_PRODUCER]) - int(words[_CONSUMER]))

    def pending_words(self) -> int:
        """Payload words currently readable (consumer's view)."""
        words = self._words
        return int(words[_PRODUCER]) - int(words[_CONSUMER])

    def max_frame_ids(self) -> int:
        """Largest id-array length a single push can ever carry."""
        # The worst case wraps: a PAD header at the tail plus the frame.
        return self._capacity - 2 * FRAME_HEADER_WORDS

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def try_push(
        self,
        ids,
        base_index: int = 0,
        dict_high_water: int = 0,
        kind: int = DATA,
    ) -> bool:
        """Push one frame if space allows; ``False`` when the ring is full.

        Never blocks — the backpressure loop belongs to the caller (see
        :meth:`push`).  Raises when the frame can *never* fit so a too-small
        ring fails loudly instead of deadlocking.
        """
        if self._closed:
            raise RingClosed("push after EOF")
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        needed = FRAME_HEADER_WORDS + ids.size
        if ids.size > self.max_frame_ids():
            raise ClusterRuntimeError(
                f"frame of {ids.size} ids cannot fit a ring of "
                f"{self._capacity} payload words"
            )
        words = self._words
        capacity = self._capacity
        producer = int(words[_PRODUCER])
        offset = producer % capacity
        tail = capacity - offset
        pad = 0
        if needed > tail:
            pad = tail  # skip the tail; payload stays contiguous
        if self.free_words() < pad + needed:
            return False
        if pad:
            if tail >= FRAME_HEADER_WORDS:
                base = CONTROL_WORDS + offset
                words[base] = self._next_push_seq  # seq slot, ignored for PAD
                words[base + 1] = PAD
                words[base + 2] = tail - FRAME_HEADER_WORDS
                words[base + 3] = 0
                words[base + 4] = 0
            # tail < header: consumer skips the stub implicitly.
            producer += pad
            offset = 0
        base = CONTROL_WORDS + offset
        words[base] = self._next_push_seq
        words[base + 1] = kind
        words[base + 2] = ids.size
        words[base + 3] = base_index
        words[base + 4] = dict_high_water
        if ids.size:
            words[base + FRAME_HEADER_WORDS : base + needed] = ids
        # Publish: the position store is the release barrier (CPython's
        # eval loop never reorders these stores; x86 stores are ordered).
        words[_PRODUCER] = producer + needed
        self._next_push_seq += 1
        if kind == EOF:
            self._closed = True
        return True

    def push(
        self,
        ids,
        base_index: int = 0,
        dict_high_water: int = 0,
        kind: int = DATA,
        timeout: float | None = None,
        should_abort=None,
    ) -> None:
        """Blocking push: poll-sleep until the frame fits (backpressure).

        ``should_abort`` is polled between attempts; returning ``True``
        raises :class:`~repro.exceptions.ClusterRuntimeError` so a stuck
        producer unwinds when the run is cancelled.  ``timeout`` (seconds)
        bounds the wait.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        backoff = _BACKOFF_MIN_S
        while not self.try_push(ids, base_index, dict_high_water, kind):
            if should_abort is not None and should_abort():
                raise ClusterRuntimeError("push aborted")
            if deadline is not None and time.monotonic() > deadline:
                words = self._words
                raise ClusterRuntimeError(
                    f"push timed out after {timeout}s (ring full: consumer "
                    f"stalled? producer={int(words[_PRODUCER])} "
                    f"consumer={int(words[_CONSUMER])} "
                    f"free={self.free_words()}/{self._capacity} words, "
                    f"next push seq {self._next_push_seq})"
                )
            time.sleep(backoff)
            backoff = min(backoff * 2, _BACKOFF_MAX_S)

    def close(self, timeout: float | None = None, should_abort=None) -> None:
        """Push the EOF poison pill (idempotent)."""
        if not self._closed:
            self.push(
                np.empty(0, dtype=np.int64),
                kind=EOF,
                timeout=timeout,
                should_abort=should_abort,
            )

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def try_pop(self) -> Frame | None:
        """Pop the next frame if one is published; ``None`` when empty.

        The returned id array is a copy — the payload region is recycled as
        soon as the consumer position advances.
        """
        words = self._words
        capacity = self._capacity
        while True:
            consumer = int(words[_CONSUMER])
            if int(words[_PRODUCER]) - consumer <= 0:
                return None
            offset = consumer % capacity
            tail = capacity - offset
            if tail < FRAME_HEADER_WORDS:
                words[_CONSUMER] = consumer + tail  # implicit pad stub
                continue
            base = CONTROL_WORDS + offset
            kind = int(words[base + 1])
            if kind == PAD:
                words[_CONSUMER] = consumer + tail
                continue
            seq = int(words[base])
            length = int(words[base + 2])
            if length < 0 or FRAME_HEADER_WORDS + length > tail:
                raise ClusterRuntimeError(
                    f"corrupt frame header at offset {offset}: length={length}"
                )
            if seq != self._next_pop_seq:
                raise ClusterRuntimeError(
                    f"sequence gap: expected frame {self._next_pop_seq}, "
                    f"found {seq}"
                )
            frame = Frame(
                seq=seq,
                kind=kind,
                base_index=int(words[base + 3]),
                dict_high_water=int(words[base + 4]),
                ids=words[
                    base + FRAME_HEADER_WORDS : base + FRAME_HEADER_WORDS + length
                ].copy(),
            )
            words[_CONSUMER] = consumer + FRAME_HEADER_WORDS + length
            self._next_pop_seq += 1
            return frame

    def pop(
        self,
        timeout: float | None = None,
        should_abort=None,
        idle=None,
    ) -> Frame:
        """Blocking pop; polls until a frame is published.

        ``idle`` (when given) is called once per empty poll — workers use it
        to heartbeat and drain dictionary deltas while waiting.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        backoff = _BACKOFF_MIN_S
        while True:
            frame = self.try_pop()
            if frame is not None:
                return frame
            if should_abort is not None and should_abort():
                raise ClusterRuntimeError("pop aborted")
            if deadline is not None and time.monotonic() > deadline:
                words = self._words
                raise ClusterRuntimeError(
                    f"pop timed out after {timeout}s (producer stalled? "
                    f"producer={int(words[_PRODUCER])} "
                    f"consumer={int(words[_CONSUMER])} "
                    f"pending={self.pending_words()} words, "
                    f"awaiting seq {self._next_pop_seq})"
                )
            if idle is not None:
                idle()
            time.sleep(backoff)
            backoff = min(backoff * 2, _BACKOFF_MAX_S)

    # ------------------------------------------------------------------ #
    # supervisor side
    # ------------------------------------------------------------------ #
    def rebind(self) -> None:
        """Reset this view's local cursors after an external re-init.

        The supervisor re-initialises a crashed worker's ring in place
        (fresh control words, positions back to zero); the source calls
        ``rebind()`` on its producer view so its sequence counter and
        closed flag match the reborn ring.  Local state only — the shared
        words are untouched.
        """
        self._next_push_seq = 0
        self._next_pop_seq = 0
        self._closed = False

    def drain_inflight(self) -> InflightDrain:
        """Consume everything published but never popped (crash salvage).

        Called by the supervisor *after* the dead consumer process is
        reaped and *after* the producer is fenced off the ring, so both
        positions are quiescent.  Unlike :meth:`try_pop` this walks from
        wherever the dead consumer left the position and trusts the frame
        sequence numbers it finds (the supervisor's view never popped, so
        its own counter is meaningless); headers are still bounds-checked.
        Returns the exact loss: DATA frames and the messages they carried.
        """
        words = self._words
        capacity = self._capacity
        frames = 0
        messages = 0
        eof_seen = False
        while True:
            consumer = int(words[_CONSUMER])
            if int(words[_PRODUCER]) - consumer <= 0:
                return InflightDrain(frames=frames, messages=messages, eof_seen=eof_seen)
            offset = consumer % capacity
            tail = capacity - offset
            if tail < FRAME_HEADER_WORDS:
                words[_CONSUMER] = consumer + tail
                continue
            base = CONTROL_WORDS + offset
            kind = int(words[base + 1])
            if kind == PAD:
                words[_CONSUMER] = consumer + tail
                continue
            length = int(words[base + 2])
            if length < 0 or FRAME_HEADER_WORDS + length > tail:
                raise ClusterRuntimeError(
                    f"corrupt frame header at offset {offset} while draining "
                    f"in-flight frames: length={length}"
                )
            if kind == DATA:
                frames += 1
                messages += length
            elif kind == EOF:
                eof_seen = True
            words[_CONSUMER] = consumer + FRAME_HEADER_WORDS + length
