"""Shared coordination state of one cluster run.

One ``int64`` shared-memory block, written by the source (routing stats,
head summary), by every worker (processed counts, heartbeats, ready flags)
and by the coordinator (go/abort flags); the monitor thread snapshots it
without locks.  Every field is a single aligned int64 word, so each write
is atomic on the platforms this runtime supports; readers only ever consume
slightly-stale values, never torn ones.

Layout::

    word 0                       abort flag (coordinator -> everyone)
    word 1                       go flag (coordinator releases the start)
    word 2                       source_done flag
    word 3                       messages routed by the source
    word 4                       current head size (entries in the summary)
    word 5                       num_workers n
    word 6                       head summary capacity
    word 7                       dictionary high water (ids interned)
    words [8, 8+n)               source's local load vector
    words [8+n, 8+2n)            per-worker processed counts
    words [8+2n, 8+3n)           per-worker heartbeat (monotonic ns)
    words [8+3n, 8+4n)           per-worker ready flags
    words [8+4n, 8+5n)           per-worker fence flags (supervisor -> source)
    words [8+5n, 8+5n+2*cap)     head summary (key id, estimated count) pairs

A *fenced* worker is one the supervisor has taken out of service (crashed,
hung, or being respawned): the source must stop pushing into its ring —
a blocked push polls the fence and unwinds — and redirect its share to the
survivors until the fence clears.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ClusterRuntimeError

_ABORT = 0
_GO = 1
_SOURCE_DONE = 2
_MESSAGES_ROUTED = 3
_HEAD_SIZE = 4
_NUM_WORKERS = 5
_HEAD_CAPACITY = 6
_DICT_HIGH_WATER = 7
_FIXED_WORDS = 8

#: Default number of (id, count) slots reserved for the head summary.
DEFAULT_HEAD_CAPACITY = 64


#: Per-worker sections of the state block, in layout order.
_SECTION_LOADS = 0
_SECTION_PROCESSED = 1
_SECTION_HEARTBEAT = 2
_SECTION_READY = 3
_SECTION_FENCE = 4
_WORKER_SECTIONS = 5


def state_words(num_workers: int, head_capacity: int = DEFAULT_HEAD_CAPACITY) -> int:
    """Total int64 words the state block needs."""
    return _FIXED_WORDS + _WORKER_SECTIONS * num_workers + 2 * head_capacity


@dataclass(slots=True)
class ClusterSnapshot:
    """One lock-free reading of the shared state (monitor thread output)."""

    elapsed_s: float
    messages_routed: int
    source_loads: list[int] = field(default_factory=list)
    worker_processed: list[int] = field(default_factory=list)
    head: dict[int, int] = field(default_factory=dict)

    @property
    def imbalance(self) -> float:
        """``max_w L_w - avg_w L_w`` over normalised processed counts.

        Same definition as the simulator's
        :meth:`~repro.simulation.metrics.LoadTracker.imbalance`, computed
        over what the workers actually received.
        """
        return loads_imbalance(self.worker_processed)


def loads_imbalance(loads) -> float:
    """The paper's I(t) for an absolute per-worker load vector."""
    total = sum(loads)
    if total == 0 or not len(loads):
        return 0.0
    normalized = [load / total for load in loads]
    return max(0.0, max(normalized) - sum(normalized) / len(normalized))


class SharedClusterState:
    """Typed accessors over the shared state block (see module layout)."""

    __slots__ = ("_words", "_num_workers", "_head_capacity")

    def __init__(
        self,
        buffer,
        num_workers: int | None = None,
        head_capacity: int = DEFAULT_HEAD_CAPACITY,
        *,
        create: bool = False,
    ) -> None:
        if isinstance(buffer, np.ndarray):
            if buffer.dtype != np.int64:
                raise ClusterRuntimeError("state buffer array must be int64")
            words = buffer
        else:
            words = np.frombuffer(buffer, dtype=np.int64)
        if create:
            if num_workers is None:
                raise ClusterRuntimeError("creating state requires num_workers")
            needed = state_words(num_workers, head_capacity)
            if words.size < needed:
                raise ClusterRuntimeError(
                    f"state buffer holds {words.size} words, needs {needed}"
                )
            words[:needed] = 0
            words[_NUM_WORKERS] = num_workers
            words[_HEAD_CAPACITY] = head_capacity
        self._words = words
        self._num_workers = int(words[_NUM_WORKERS])
        self._head_capacity = int(words[_HEAD_CAPACITY])
        if self._num_workers < 1:
            raise ClusterRuntimeError("attaching to an uninitialised state block")

    # ------------------------------------------------------------------ #
    # flags
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        return self._num_workers

    def abort(self) -> None:
        self._words[_ABORT] = 1

    def aborted(self) -> bool:
        return bool(self._words[_ABORT])

    def release_start(self) -> None:
        self._words[_GO] = 1

    def started(self) -> bool:
        return bool(self._words[_GO])

    def mark_source_done(self) -> None:
        self._words[_SOURCE_DONE] = 1

    def source_done(self) -> bool:
        return bool(self._words[_SOURCE_DONE])

    # ------------------------------------------------------------------ #
    # worker slots
    # ------------------------------------------------------------------ #
    def _slot(self, section: int, worker_id: int) -> int:
        if not 0 <= worker_id < self._num_workers:
            raise ClusterRuntimeError(
                f"worker id {worker_id} outside [0, {self._num_workers})"
            )
        return _FIXED_WORDS + section * self._num_workers + worker_id

    def mark_ready(self, worker_id: int) -> None:
        self._words[self._slot(_SECTION_READY, worker_id)] = 1

    def worker_ready(self, worker_id: int) -> bool:
        return bool(self._words[self._slot(_SECTION_READY, worker_id)])

    def all_ready(self) -> bool:
        base = _FIXED_WORDS + _SECTION_READY * self._num_workers
        return bool(self._words[base : base + self._num_workers].all())

    def heartbeat(self, worker_id: int) -> None:
        self._words[self._slot(_SECTION_HEARTBEAT, worker_id)] = time.monotonic_ns()

    def heartbeat_age_s(self, worker_id: int) -> float:
        """Seconds since the worker's last heartbeat (inf before the first)."""
        stamp = int(self._words[self._slot(_SECTION_HEARTBEAT, worker_id)])
        if stamp == 0:
            return float("inf")
        return (time.monotonic_ns() - stamp) / 1e9

    def add_processed(self, worker_id: int, count: int) -> None:
        self._words[self._slot(_SECTION_PROCESSED, worker_id)] += count

    def worker_processed(self) -> list[int]:
        base = _FIXED_WORDS + _SECTION_PROCESSED * self._num_workers
        return [int(v) for v in self._words[base : base + self._num_workers]]

    # ------------------------------------------------------------------ #
    # supervisor fencing (worker recovery)
    # ------------------------------------------------------------------ #
    def fence_worker(self, worker_id: int) -> None:
        """Take a worker out of service: the source must stop pushing to it.

        Set by the supervisor the moment a failure is detected, *before*
        the dead incarnation is reaped — a source blocked pushing into the
        dead ring polls the fence and unwinds instead of waiting out its
        full push timeout.  The fence word is a tiny handshake: ``1`` =
        fenced by the supervisor, ``2`` = the source acknowledged (it will
        not touch the ring again until the fence clears) — only then may
        the supervisor drain and re-initialise the ring without racing a
        straggling push.
        """
        self._words[self._slot(_SECTION_FENCE, worker_id)] = 1

    def acknowledge_fence(self, worker_id: int) -> None:
        """Source side: promise no further ring operations on this slot."""
        self._words[self._slot(_SECTION_FENCE, worker_id)] = 2

    def clear_fence(self, worker_id: int) -> None:
        self._words[self._slot(_SECTION_FENCE, worker_id)] = 0

    def worker_fenced(self, worker_id: int) -> bool:
        return bool(self._words[self._slot(_SECTION_FENCE, worker_id)])

    def fence_acknowledged(self, worker_id: int) -> bool:
        return int(self._words[self._slot(_SECTION_FENCE, worker_id)]) == 2

    def reset_worker(self, worker_id: int) -> None:
        """Prepare a slot for a respawned incarnation.

        Clears the ready flag (the replacement re-raises it as its startup
        barrier) and the heartbeat stamp (so the monitor's startup grace,
        not the stale-age check, governs the replacement's first beats).
        The processed count is deliberately *kept*: it is the cumulative
        delivered-message ledger of the slot across incarnations.
        """
        self._words[self._slot(_SECTION_READY, worker_id)] = 0
        self._words[self._slot(_SECTION_HEARTBEAT, worker_id)] = 0

    # ------------------------------------------------------------------ #
    # source-side publication
    # ------------------------------------------------------------------ #
    def publish_routing(
        self,
        loads,
        messages_routed: int,
        dict_high_water: int,
        head: dict[int, int] | None = None,
    ) -> None:
        """Publish the source's load vector, counters and head summary.

        ``head`` maps key *ids* to estimated counts (the SpaceSaving view in
        columnar mode); at most ``head_capacity`` entries are published,
        largest first.
        """
        words = self._words
        n = self._num_workers
        words[_FIXED_WORDS : _FIXED_WORDS + n] = loads
        words[_MESSAGES_ROUTED] = messages_routed
        words[_DICT_HIGH_WATER] = dict_high_water
        if head is None:
            return
        top = sorted(head.items(), key=lambda item: -item[1])[: self._head_capacity]
        base = _FIXED_WORDS + _WORKER_SECTIONS * n
        for index, (kid, count) in enumerate(top):
            words[base + 2 * index] = kid
            words[base + 2 * index + 1] = count
        # Publish the size last so readers never see half-written pairs
        # counted as valid.
        words[_HEAD_SIZE] = len(top)

    def source_loads(self) -> list[int]:
        return [
            int(v)
            for v in self._words[_FIXED_WORDS : _FIXED_WORDS + self._num_workers]
        ]

    def messages_routed(self) -> int:
        return int(self._words[_MESSAGES_ROUTED])

    def dict_high_water(self) -> int:
        return int(self._words[_DICT_HIGH_WATER])

    def head_summary(self) -> dict[int, int]:
        """The published head (key id -> estimated count), largest first."""
        size = int(self._words[_HEAD_SIZE])
        base = _FIXED_WORDS + _WORKER_SECTIONS * self._num_workers
        pairs = self._words[base : base + 2 * size]
        return {
            int(pairs[2 * index]): int(pairs[2 * index + 1])
            for index in range(size)
        }

    def snapshot(self, elapsed_s: float) -> ClusterSnapshot:
        """One monitor reading of the whole block (lock-free)."""
        return ClusterSnapshot(
            elapsed_s=elapsed_s,
            messages_routed=self.messages_routed(),
            source_loads=self.source_loads(),
            worker_processed=self.worker_processed(),
            head=self.head_summary(),
        )
