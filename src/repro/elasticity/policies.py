"""Rescale policies: how a running system executes a topology change.

Three strategies from the elasticity literature, expressed over this
library's sender-local partitioners:

``rehash`` — stop-the-world re-hash
    The stream pauses, every routing structure is rebuilt from scratch for
    the new worker count and the senders' local state (load vectors, head
    sketches) is reset, exactly as if the job had been redeployed.  Nothing
    misroutes because nothing flows during the transition; the cost is the
    near-total key remap of modulo hashing and the loss of the senders'
    learned head tables (heavy hitters must be re-detected after the
    warmup).

``migrate`` — consistent-grouping-style incremental migration
    Partitioners rescale *in place* (the consistent-hash ring only reassigns
    the arcs of the changed worker; head-tail schemes keep their sketches
    and load vectors).  The state of moved keys migrates in the background
    while the stream keeps flowing: for the next ``migration_window`` tuples
    a tuple addressed to a moved key counts as *misrouted* — it reaches a
    worker that does not hold the key's state yet.

``remap`` — PKG candidate-set remap
    Like ``migrate``, partitioners rescale in place, but the system
    exploits that candidate sets are hash-derived and routing-table-free:
    every sender recomputes the new candidates instantly and the state of
    each moved key is handed to its new candidates *before* its next tuple
    is processed.  No tuples misroute; the entire cost appears as migrated
    state entries.

Policies mutate partitioners only through the public
:meth:`~repro.partitioning.base.Partitioner.rescale` /
:meth:`~repro.partitioning.base.Partitioner.reset` contract, so every
registered scheme works with every policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.partitioning.base import Partitioner


@dataclass(frozen=True, slots=True)
class RescalePolicy:
    """One strategy for applying a rescale event to the running senders.

    Attributes
    ----------
    name:
        Registry name ("rehash", "migrate", "remap").
    preserves_sender_state:
        Whether the senders' local load vectors and head sketches survive
        the event (False only for the stop-the-world rebuild).
    has_misroute_window:
        Whether tuples to moved keys misroute during the transition (only
        the incremental migration policy).
    """

    name: str
    preserves_sender_state: bool
    has_misroute_window: bool

    def apply(self, partitioner: Partitioner, new_num_workers: int) -> None:
        """Rescale one sender's partitioner according to this policy."""
        partitioner.rescale(new_num_workers)
        if not self.preserves_sender_state:
            # Stop-the-world rebuild: the redeployed senders start with
            # empty load vectors and empty sketches, as a fresh job would.
            partitioner.reset()

    def misroute_window(self, migration_window: int) -> int:
        """Transition-window length in tuples (0 = no misrouting)."""
        return migration_window if self.has_misroute_window else 0


STOP_THE_WORLD_REHASH = RescalePolicy(
    name="rehash", preserves_sender_state=False, has_misroute_window=False
)
INCREMENTAL_MIGRATION = RescalePolicy(
    name="migrate", preserves_sender_state=True, has_misroute_window=True
)
CANDIDATE_SET_REMAP = RescalePolicy(
    name="remap", preserves_sender_state=True, has_misroute_window=False
)

_POLICIES: dict[str, RescalePolicy] = {
    policy.name: policy
    for policy in (
        STOP_THE_WORLD_REHASH,
        INCREMENTAL_MIGRATION,
        CANDIDATE_SET_REMAP,
    )
}

#: Canonical policy names, in documentation order.
POLICY_NAMES = tuple(_POLICIES)


def get_policy(name: str) -> RescalePolicy:
    """Look up a policy by name (case-insensitive)."""
    policy = _POLICIES.get(name.strip().lower())
    if policy is None:
        raise ConfigurationError(
            f"unknown rescale policy {name!r}; known: {POLICY_NAMES}"
        )
    return policy
