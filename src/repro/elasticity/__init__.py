"""Elastic rescaling: worker join/leave/fail mid-stream.

The package adds the elasticity axis the paper's fixed-worker evaluation
leaves open:

* :mod:`repro.elasticity.events` — :class:`WorkerJoin` /
  :class:`WorkerLeave` / :class:`WorkerFail` events at stream offsets, and
  :class:`RescalePlan` schedules parsed from specs like
  ``"join@5000,leave@12000,fail@15000"``;
* :mod:`repro.elasticity.policies` — how a running system executes an
  event: stop-the-world re-hash, consistent-grouping-style incremental
  migration, or PKG candidate-set remap;
* :mod:`repro.elasticity.accountant` — what the rescale costs: keys moved,
  state entries/bytes migrated or lost, tuples misrouted during the
  transition window.

Plans thread through :class:`~repro.simulation.config.SimulationConfig`
(``rescale_plan=``) and :class:`~repro.cluster.topology.ClusterTopology`;
every partitioner implements the
:meth:`~repro.partitioning.base.Partitioner.rescale` contract the policies
drive.
"""

from repro.elasticity.accountant import (
    DEFAULT_STATE_BYTES_PER_ENTRY,
    MigrationCostAccountant,
    MigrationReport,
    RescaleEventRecord,
)
from repro.elasticity.events import (
    EVENT_KINDS,
    RescaleEvent,
    RescalePlan,
    WorkerFail,
    WorkerJoin,
    WorkerLeave,
    as_plan,
    parse_event,
)
from repro.elasticity.policies import (
    POLICY_NAMES,
    RescalePolicy,
    get_policy,
)

__all__ = [
    "DEFAULT_STATE_BYTES_PER_ENTRY",
    "EVENT_KINDS",
    "MigrationCostAccountant",
    "MigrationReport",
    "POLICY_NAMES",
    "RescaleEvent",
    "RescaleEventRecord",
    "RescalePlan",
    "RescalePolicy",
    "WorkerFail",
    "WorkerJoin",
    "WorkerLeave",
    "as_plan",
    "get_policy",
    "parse_event",
]
