"""Migration-cost accounting for rescale events.

Load balance is only half of the elasticity story; the other half is what a
rescale *costs*.  The accountant measures, per event and in total:

* **keys moved** — observed keys whose candidate worker set changed across
  the event (for single-owner schemes: whose owner changed).  This is the
  quantity consistent hashing minimises and modulo re-hashing maximises.
* **state entries migrated / lost** — per-worker operator state entries
  (key, worker) that must be handed to another worker (join, leave) or that
  vanish with a failed worker.  Scaled by ``state_bytes_per_entry`` into a
  byte estimate of the migration traffic.
* **tuples misrouted** — tuples routed to a moved key during the policy's
  transition window, i.e. tuples that arrive at a worker which does not
  hold the key's state yet (only the incremental-migration policy has a
  non-zero window).

The simulation engine drives the accountant: it snapshots candidate sets
around each event, reports the per-worker key placement, and ticks the
misroute window once per routed tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.elasticity.events import RescaleEvent
from repro.elasticity.policies import RescalePolicy
from repro.exceptions import SimulationError

#: Default size estimate of one per-key operator state entry, in bytes.
#: Matches a small aggregation state (a counter plus key interning overhead);
#: experiments that model heavier operators override it.
DEFAULT_STATE_BYTES_PER_ENTRY = 64


@dataclass(slots=True)
class RescaleEventRecord:
    """Everything measured about one applied rescale event."""

    offset: int
    kind: str
    old_num_workers: int
    new_num_workers: int
    keys_moved: int = 0
    entries_migrated: int = 0
    entries_lost: int = 0
    tuples_misrouted: int = 0
    misroute_window: int = 0
    #: Sketch head-table entries carried across the event (0 when the
    #: policy rebuilds the senders from scratch).
    head_keys_preserved: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "offset": self.offset,
            "kind": self.kind,
            "old_num_workers": self.old_num_workers,
            "new_num_workers": self.new_num_workers,
            "keys_moved": self.keys_moved,
            "entries_migrated": self.entries_migrated,
            "entries_lost": self.entries_lost,
            "tuples_misrouted": self.tuples_misrouted,
            "misroute_window": self.misroute_window,
            "head_keys_preserved": self.head_keys_preserved,
        }


@dataclass(slots=True)
class MigrationReport:
    """Aggregated migration costs of one simulation run."""

    policy: str
    state_bytes_per_entry: int = DEFAULT_STATE_BYTES_PER_ENTRY
    events: list[RescaleEventRecord] = field(default_factory=list)

    @property
    def events_applied(self) -> int:
        return len(self.events)

    @property
    def keys_moved(self) -> int:
        return sum(record.keys_moved for record in self.events)

    @property
    def entries_migrated(self) -> int:
        return sum(record.entries_migrated for record in self.events)

    @property
    def entries_lost(self) -> int:
        return sum(record.entries_lost for record in self.events)

    @property
    def tuples_misrouted(self) -> int:
        return sum(record.tuples_misrouted for record in self.events)

    @property
    def bytes_migrated(self) -> int:
        return self.entries_migrated * self.state_bytes_per_entry

    @property
    def bytes_lost(self) -> int:
        return self.entries_lost * self.state_bytes_per_entry

    def summary(self) -> dict[str, Any]:
        """Flat totals, convenient for result rows and CLI printing."""
        return {
            "rescale_policy": self.policy,
            "rescale_events": self.events_applied,
            "keys_moved": self.keys_moved,
            "entries_migrated": self.entries_migrated,
            "entries_lost": self.entries_lost,
            "bytes_migrated": self.bytes_migrated,
            "bytes_lost": self.bytes_lost,
            "tuples_misrouted": self.tuples_misrouted,
        }

    def to_dict(self) -> dict[str, Any]:
        payload = self.summary()
        payload["state_bytes_per_entry"] = self.state_bytes_per_entry
        payload["events"] = [record.to_dict() for record in self.events]
        return payload


class MigrationCostAccountant:
    """Collects migration costs while the simulation engine replays a plan.

    Usage protocol (driven by the engine)::

        record = accountant.begin_event(event, old_n, new_n)
        ... engine applies the policy, adjusts state, computes moved keys ...
        accountant.finish_event(record, moved_keys=..., ...)
        ... per routed tuple: accountant.tick(key) ...
    """

    def __init__(
        self,
        policy: RescalePolicy,
        migration_window: int = 0,
        state_bytes_per_entry: int = DEFAULT_STATE_BYTES_PER_ENTRY,
    ) -> None:
        if state_bytes_per_entry < 1:
            raise SimulationError(
                f"state_bytes_per_entry must be >= 1, got {state_bytes_per_entry}"
            )
        self._policy = policy
        self._migration_window = migration_window
        self._report = MigrationReport(
            policy=policy.name, state_bytes_per_entry=state_bytes_per_entry
        )
        # Transition-window state: tuples remaining and the moved-key set
        # whose tuples count as misrouted.  A newer event supersedes any
        # still-open window (its moved keys are the ones in flux now).
        self._window_remaining = 0
        self._window_keys: frozenset[Any] = frozenset()
        self._window_record: RescaleEventRecord | None = None

    @property
    def policy(self) -> RescalePolicy:
        return self._policy

    @property
    def window_open(self) -> bool:
        return self._window_remaining > 0

    def begin_event(
        self, event: RescaleEvent, old_num_workers: int, new_num_workers: int
    ) -> RescaleEventRecord:
        """Open the record of one event (costs are filled in afterwards)."""
        record = RescaleEventRecord(
            offset=event.offset,
            kind=event.kind,
            old_num_workers=old_num_workers,
            new_num_workers=new_num_workers,
        )
        self._report.events.append(record)
        return record

    def finish_event(
        self,
        record: RescaleEventRecord,
        moved_keys: frozenset[Any],
        entries_migrated: int,
        entries_lost: int,
        head_keys_preserved: int,
    ) -> None:
        """Fill in the measured costs and open the misroute window (if any)."""
        record.keys_moved = len(moved_keys)
        record.entries_migrated = entries_migrated
        record.entries_lost = entries_lost
        record.head_keys_preserved = head_keys_preserved
        window = self._policy.misroute_window(self._migration_window)
        record.misroute_window = window
        if window > 0 and moved_keys:
            self._window_remaining = window
            self._window_keys = moved_keys
            self._window_record = record
        else:
            self._window_remaining = 0
            self._window_keys = frozenset()
            self._window_record = None

    def tick(self, key: Any) -> None:
        """Account one routed tuple while a transition window is open.

        Call only while :attr:`window_open` is true (the engine guards the
        call so the per-tuple cost is a single integer check when no window
        is open).
        """
        self._window_remaining -= 1
        if key in self._window_keys:
            assert self._window_record is not None
            self._window_record.tuples_misrouted += 1
        if self._window_remaining <= 0:
            self._window_keys = frozenset()
            self._window_record = None

    def record_switch(
        self,
        offset: int,
        description: str,
        num_workers: int,
        keys_moved: int,
        entries_migrated: int,
        head_keys_preserved: int,
    ) -> RescaleEventRecord:
        """Append the record of one adaptive scheme switch (or retune).

        A switch moves no workers — old and new counts are equal — but it
        does move head keys between candidate sets, which is the same
        migration currency a rescale event is measured in; recording both in
        one report keeps the cost of adaptivity visible next to the cost of
        elasticity.  ``description`` becomes the record's ``kind`` (e.g.
        ``"switch:PKG->D-C"``).
        """
        record = RescaleEventRecord(
            offset=offset,
            kind=description,
            old_num_workers=num_workers,
            new_num_workers=num_workers,
            keys_moved=keys_moved,
            entries_migrated=entries_migrated,
            head_keys_preserved=head_keys_preserved,
        )
        self._report.events.append(record)
        return record

    def record_recovery(
        self,
        offset: int,
        description: str,
        num_workers: int,
        keys_moved: int,
        entries_migrated: int,
        entries_lost: int = 0,
        head_keys_preserved: int = 0,
    ) -> RescaleEventRecord:
        """Append the record of one cluster-runtime recovery action.

        A supervised worker recovery moves no workers — the slot survives —
        but it *is* a migration event in the same currency as a rescale:
        keys redirected to survivors while the slot was down are moved
        keys, the dictionary entries replayed into the replacement's
        replica are migrated state entries, and a degraded slot's replica
        is lost state.  Recording recoveries in the same report keeps the
        price of fault tolerance visible next to the price of elasticity
        and adaptivity.  ``description`` becomes the record's ``kind``
        (e.g. ``"recover:w2"``, ``"degrade:w1"``).
        """
        record = RescaleEventRecord(
            offset=offset,
            kind=description,
            old_num_workers=num_workers,
            new_num_workers=num_workers,
            keys_moved=keys_moved,
            entries_migrated=entries_migrated,
            entries_lost=entries_lost,
            head_keys_preserved=head_keys_preserved,
        )
        self._report.events.append(record)
        return record

    def report(self) -> MigrationReport:
        return self._report
