"""Rescale events and schedules ("rescale plans").

The paper evaluates every grouping scheme on a *fixed* worker set; this
module is the vocabulary for breaking that assumption.  A
:class:`RescaleEvent` changes the downstream worker set at a given stream
offset (a 0-based global message index); a :class:`RescalePlan` is an
ordered schedule of such events plus the policy used to execute them.

Worker identity model
---------------------
Workers are always the contiguous ids ``0 .. n-1`` — the invariant every
hash family, load vector and tracker in this library is built on.  A
:class:`WorkerJoin` therefore adds the worker with id ``n`` (the next free
id); :class:`WorkerLeave` and :class:`WorkerFail` remove the worker with the
*highest* id.  This "scale at the tail" model matches how elastic stream
systems with contiguous task ids (Storm rebalance, Heron container scaling)
grow and shrink, keeps the hashing substrate well-defined, and preserves the
minimal-movement property of the consistent-hash ring (only the arcs of the
departing worker change owners).

The difference between *leave* and *fail* is what happens to state:

* ``leave`` — graceful: the departing worker drains its queue and its
  operator state is handed off (counted as migrated by the accountant);
* ``fail`` — abrupt: queued tuples and operator state on the worker are
  lost (counted as lost).

Events are parsed from compact specs like ``"join@5000,leave@12000"`` — the
format the CLI's ``simulate --rescale`` flag accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError

#: Event kinds in spec order of severity: add capacity, drain it, lose it.
EVENT_KINDS = ("join", "leave", "fail")


@dataclass(frozen=True, slots=True)
class RescaleEvent:
    """Base class: one change of the worker set at stream offset ``offset``.

    The event fires *before* the message with global index ``offset`` is
    routed: that message and every later one see the new topology.
    """

    offset: int

    #: "join", "leave" or "fail"; fixed per subclass.
    kind: str = ""

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ConfigurationError(
                f"rescale offset must be >= 0, got {self.offset}"
            )
        if self.kind not in EVENT_KINDS:
            # Catches direct instantiation of the base class (kind "") and
            # typo'd kinds; the engines dispatch on this string.
            raise ConfigurationError(
                f"rescale event kind must be one of {EVENT_KINDS}, got "
                f"{self.kind!r}; use WorkerJoin/WorkerLeave/WorkerFail"
            )

    def new_num_workers(self, current: int) -> int:
        """Worker count after this event, given ``current`` workers."""
        if self.kind == "join":
            return current + 1
        return current - 1

    @property
    def loses_state(self) -> bool:
        """Whether the departing worker's state is lost (fail) or handed off."""
        return self.kind == "fail"

    @property
    def spec(self) -> str:
        """The compact ``kind@offset`` form this event parses from."""
        return f"{self.kind}@{self.offset}"


@dataclass(frozen=True, slots=True)
class WorkerJoin(RescaleEvent):
    """A new worker (id = current ``n``) joins the downstream operator."""

    kind: str = "join"


@dataclass(frozen=True, slots=True)
class WorkerLeave(RescaleEvent):
    """The highest-id worker leaves gracefully: drain, then hand off state."""

    kind: str = "leave"


@dataclass(frozen=True, slots=True)
class WorkerFail(RescaleEvent):
    """The highest-id worker fails abruptly: queued tuples and state are lost."""

    kind: str = "fail"


_EVENT_CLASSES = {
    "join": WorkerJoin,
    "leave": WorkerLeave,
    "fail": WorkerFail,
}


def parse_event(spec: str) -> RescaleEvent:
    """Parse one ``kind@offset`` token (e.g. ``"join@5000"``)."""
    token = spec.strip().lower()
    kind, separator, offset_text = token.partition("@")
    if not separator or kind not in _EVENT_CLASSES:
        raise ConfigurationError(
            f"invalid rescale event {spec!r}; expected kind@offset with kind "
            f"in {EVENT_KINDS}"
        )
    try:
        offset = int(offset_text)
    except ValueError:
        raise ConfigurationError(
            f"invalid rescale offset in {spec!r}: {offset_text!r} is not an "
            f"integer"
        ) from None
    return _EVENT_CLASSES[kind](offset=offset)


@dataclass(frozen=True, slots=True)
class RescalePlan:
    """An ordered schedule of rescale events plus the execution policy.

    Attributes
    ----------
    events:
        The schedule, sorted by offset (ties keep their given order).
    policy:
        Name of the rescale policy executing each event ("rehash",
        "migrate" or "remap" — see :mod:`repro.elasticity.policies`).
    migration_window:
        Length, in routed tuples, of the transition window after an event
        during which tuples addressed to moved keys count as misrouted
        (only the "migrate" policy has a non-zero window).
    """

    events: tuple[RescaleEvent, ...]
    policy: str = "rehash"
    migration_window: int = 1000

    def __post_init__(self) -> None:
        # Imported here to avoid a module cycle (policies document the plan).
        from repro.elasticity.policies import POLICY_NAMES

        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown rescale policy {self.policy!r}; known: {POLICY_NAMES}"
            )
        if self.migration_window < 0:
            raise ConfigurationError(
                f"migration_window must be >= 0, got {self.migration_window}"
            )
        ordered = tuple(sorted(self.events, key=lambda event: event.offset))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def parse(
        cls,
        spec: str | Iterable[str],
        policy: str = "rehash",
        migration_window: int = 1000,
    ) -> "RescalePlan":
        """Build a plan from ``"join@5000,leave@12000,fail@15000"``.

        ``spec`` may also be an iterable of single-event tokens.  An empty
        spec yields an empty plan (valid, but a no-op).
        """
        if isinstance(spec, str):
            tokens = [token for token in spec.split(",") if token.strip()]
        else:
            tokens = [token for token in spec if str(token).strip()]
        events = tuple(parse_event(str(token)) for token in tokens)
        return cls(
            events=events, policy=policy, migration_window=migration_window
        )

    @property
    def spec(self) -> str:
        """Canonical comma-separated form (round-trips through :meth:`parse`)."""
        return ",".join(event.spec for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def workers_at(self, offset: int, initial_workers: int) -> int:
        """Active worker count when the message at ``offset`` is routed.

        Counts every event with ``event.offset <= offset`` as applied (an
        event fires before its offset's message).
        """
        workers = initial_workers
        for event in self.events:
            if event.offset > offset:
                break
            workers = event.new_num_workers(workers)
        return workers

    def validate_for(self, initial_workers: int) -> None:
        """Reject schedules that would shrink the cluster below one worker."""
        workers = initial_workers
        for event in self.events:
            workers = event.new_num_workers(workers)
            if workers < 1:
                raise ConfigurationError(
                    f"rescale plan {self.spec!r} drops below 1 worker at "
                    f"offset {event.offset} (started from {initial_workers})"
                )

    def trajectory(self, initial_workers: int) -> list[tuple[int, int]]:
        """``(offset, workers_after_event)`` for every event, in order."""
        workers = initial_workers
        points: list[tuple[int, int]] = []
        for event in self.events:
            workers = event.new_num_workers(workers)
            points.append((event.offset, workers))
        return points


def as_plan(
    value: "RescalePlan | str | Sequence[str] | None",
    policy: str = "rehash",
    migration_window: int = 1000,
) -> RescalePlan | None:
    """Normalise config input into a plan (``None`` and ``""`` mean no plan)."""
    if value is None:
        return None
    if isinstance(value, RescalePlan):
        return value
    plan = RescalePlan.parse(
        value, policy=policy, migration_window=migration_window
    )
    return plan if plan else None
