"""Figure 12 — load imbalance over time on the real-world workloads.

The same schemes as Figure 11, but instead of the final imbalance the
experiment records ``I(t)`` at regular intervals ("hours" of the stream) so
the effect of concept drift — most visible on the Cashtag-like workload —
can be observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.experiments.fig11_real_imbalance import Fig11Config
from repro.simulation.runner import run_simulation

EXPERIMENT_ID = "fig12"
TITLE = "Imbalance over time on WP/TW/CT-like workloads"

SCHEMES = ("PKG", "D-C", "W-C")


@dataclass(slots=True)
class Fig12Config:
    """Parameters of the Figure 12 reproduction."""

    worker_counts: Sequence[int] = (5, 10, 20, 50, 100)
    num_messages: int = 1_000_000
    num_sources: int = 5
    seed: int = 0
    datasets: Sequence[str] = ("TW", "WP", "CT")
    #: Number of snapshots ("hours") taken along the stream.
    num_snapshots: int = 40
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig12Config":
        return cls(num_messages=2_000_000, num_snapshots=80)

    @classmethod
    def quick(cls) -> "Fig12Config":
        return cls(
            worker_counts=(10, 100),
            num_messages=100_000,
            datasets=("CT",),
            num_snapshots=10,
        )

    @classmethod
    def tiny(cls) -> "Fig12Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            worker_counts=(10,),
            num_messages=20_000,
            datasets=("CT",),
            num_snapshots=5,
        )


def run(config: Fig12Config | None = None) -> ExperimentResult:
    config = config or Fig12Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_messages": config.num_messages,
            "workers": tuple(config.worker_counts),
            "datasets": tuple(config.datasets),
            "snapshots": config.num_snapshots,
        },
    )
    interval = max(1, config.num_messages // config.num_snapshots)
    # Reuse the Figure 11 workload factories so both figures see the same data.
    factories = Fig11Config(
        num_messages=config.num_messages, seed=config.seed
    )
    for symbol in config.datasets:
        factory = factories.workload_factory(symbol)
        for scheme in SCHEMES:
            for num_workers in config.worker_counts:
                simulation = run_simulation(
                    factory(),
                    scheme=scheme,
                    num_workers=num_workers,
                    num_sources=config.num_sources,
                    seed=config.seed,
                    track_interval=interval,
                    mode=execution_mode_of(config),
                )
                series = simulation.time_series
                if series is None:
                    continue
                for snapshot, (messages, imbalance) in enumerate(series.as_rows()):
                    result.rows.append(
                        {
                            "dataset": symbol,
                            "scheme": scheme,
                            "workers": num_workers,
                            "snapshot": snapshot,
                            "messages": messages,
                            "imbalance": imbalance,
                        }
                    )
    result.notes.append(
        "Paper observation: imbalance stays roughly stable over time; the "
        "drifting CT workload is noisier but the relative ordering of the "
        "schemes is unchanged."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 12",
    claim=(
        "Imbalance stays roughly stable over time; the drifting CT workload "
        "is noisier but the relative ordering of the schemes is unchanged."
    ),
    run=run,
    config_class=Fig12Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="series",
        x="messages",
        y="imbalance",
        series_by=("dataset", "scheme", "workers"),
        log_y=True,
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
