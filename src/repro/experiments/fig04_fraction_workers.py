"""Figure 4 — fraction of workers (d/n) used by D-Choices for the head.

For Zipf workloads with ``|K| = 10^4`` and ``epsilon = 10^-4`` the figure
plots the ratio ``d/n`` chosen by the constraint solver as a function of the
skew, for deployments of 5, 10, 50 and 100 workers.  The point of the figure
is that at larger scales D-Choices needs only a fraction of the workers for
the head (unlike W-Choices which always uses all of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.bounds import theta_range
from repro.analysis.choices import find_optimal_choices
from repro.analysis.head import head_cardinality
from repro.analysis.zipf import ZipfDistribution
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec

EXPERIMENT_ID = "fig4"
TITLE = "Fraction of workers (d/n) used by D-Choices for the head vs. skew"


@dataclass(slots=True)
class Fig04Config:
    """Parameters of the Figure 4 reproduction (purely analytical)."""

    skews: Sequence[float] = tuple(np.round(np.arange(0.1, 2.01, 0.1), 2))
    num_keys: int = 10_000
    worker_counts: Sequence[int] = (5, 10, 50, 100)
    epsilon: float = 1e-4

    @classmethod
    def paper(cls) -> "Fig04Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig04Config":
        return cls(skews=(0.4, 1.0, 1.6, 2.0), worker_counts=(50, 100))

    @classmethod
    def tiny(cls) -> "Fig04Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(skews=(1.0, 2.0), worker_counts=(50,))


def run(config: Fig04Config | None = None) -> ExperimentResult:
    config = config or Fig04Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_keys": config.num_keys,
            "epsilon": config.epsilon,
            "workers": tuple(config.worker_counts),
        },
    )
    for num_workers in config.worker_counts:
        theta = theta_range(num_workers).default
        for skew in config.skews:
            distribution = ZipfDistribution(float(skew), config.num_keys)
            head_size = head_cardinality(distribution, theta)
            head = distribution.probabilities[:head_size]
            tail_mass = distribution.tail_mass(head_size)
            solution = find_optimal_choices(
                head, tail_mass, num_workers, config.epsilon
            )
            result.rows.append(
                {
                    "workers": num_workers,
                    "skew": float(skew),
                    "head_cardinality": head_size,
                    "d": solution.num_choices,
                    "d_over_n": solution.num_choices / num_workers,
                    "switched_to_wchoices": solution.use_w_choices,
                }
            )
    result.notes.append(
        "Paper observation: at n = 50 and n = 100 the solver picks d < n "
        "across the skew range, i.e. D-C is strictly cheaper than W-C."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 4",
    claim=(
        "At 50-100 workers the constraint solver picks d < n across the "
        "skew range, i.e. D-Choices is strictly cheaper than W-Choices."
    ),
    run=run,
    config_class=Fig04Config,
    kind="analytical",
    schemes=("D-C",),
    output=OutputSpec(
        kind="series", x="skew", y="d_over_n", series_by=("workers",)
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
