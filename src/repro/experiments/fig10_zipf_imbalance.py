"""Figure 10 — imbalance vs. skew on Zipf streams for PKG, D-C, W-C and RR.

The full grid of the paper sweeps the number of workers (5, 10, 50, 100),
the key-space size (10^4, 10^5, 10^6) and the skew (0.1 ... 2.0) with
``m = 10^7`` messages.  The reproduction keeps the same axes with
configurable (scaled-down) defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig10"
TITLE = "Imbalance vs. skew on Zipf streams (PKG, D-C, W-C, RR)"

SCHEMES = ("PKG", "D-C", "W-C", "RR")


@dataclass(slots=True)
class Fig10Config:
    """Parameters of the Figure 10 reproduction."""

    skews: Sequence[float] = (0.4, 0.8, 1.2, 1.6, 2.0)
    worker_counts: Sequence[int] = (5, 10, 50, 100)
    key_counts: Sequence[int] = (10_000, 100_000, 1_000_000)
    num_messages: int = 1_000_000
    num_sources: int = 5
    seed: int = 0
    schemes: Sequence[str] = SCHEMES
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig10Config":
        return cls(num_messages=10_000_000)

    @classmethod
    def quick(cls) -> "Fig10Config":
        return cls(
            skews=(0.8, 1.6, 2.0),
            worker_counts=(10, 50),
            key_counts=(10_000,),
            num_messages=100_000,
        )

    @classmethod
    def tiny(cls) -> "Fig10Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            skews=(2.0,),
            worker_counts=(10,),
            key_counts=(10_000,),
            num_messages=8_000,
        )


def run(config: Fig10Config | None = None) -> ExperimentResult:
    config = config or Fig10Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_messages": config.num_messages,
            "workers": tuple(config.worker_counts),
            "key_counts": tuple(config.key_counts),
        },
    )
    for num_keys in config.key_counts:
        for num_workers in config.worker_counts:
            for skew in config.skews:
                for scheme in config.schemes:
                    workload = ZipfWorkload(
                        exponent=float(skew),
                        num_keys=num_keys,
                        num_messages=config.num_messages,
                        seed=config.seed,
                    )
                    simulation = run_simulation(
                        workload,
                        scheme=scheme,
                        num_workers=num_workers,
                        num_sources=config.num_sources,
                        seed=config.seed,
                        mode=execution_mode_of(config),
                    )
                    result.rows.append(
                        {
                            "scheme": scheme,
                            "num_keys": num_keys,
                            "workers": num_workers,
                            "skew": float(skew),
                            "imbalance": simulation.final_imbalance,
                        }
                    )
    result.notes.append(
        "Paper observation: the key-space size barely matters; skew and scale "
        "do.  W-C is the best performer, D-C and RR are close behind, and "
        "PKG degrades sharply for large z and n."
    )
    result.notes.append(
        "The worst-case expected imbalance for D-C is s * epsilon (each "
        "source enforces the constraint independently)."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 10",
    claim=(
        "The key-space size barely matters; skew and scale do.  W-C is the "
        "best performer, D-C and RR close behind, and PKG degrades sharply "
        "for large z and n."
    ),
    run=run,
    config_class=Fig10Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="series",
        x="skew",
        y="imbalance",
        series_by=("scheme", "workers", "num_keys"),
        log_y=True,
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
