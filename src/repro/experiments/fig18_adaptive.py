"""Figure 18 (ext.): adaptive partitioning vs every static scheme under drift.

The paper picks one grouping per deployment and keeps it for the stream's
lifetime; its own Figure 5 shows the best choice depends on the skew, which
drifts in production.  This experiment runs the adaptive scheme (``AD`` —
:mod:`repro.adaptive`) against all nine static schemes across the drifting
scenarios of the catalog and compares them on the *worst-window imbalance*
(:class:`~repro.simulation.metrics.WindowedImbalanceSeries`): the cumulative
``I(m)`` dilutes a transient hot spell, while the worst window shows exactly
the lag a static scheme suffers when the skew moves away from it.

The headline claim is conservative and cost-aware: AD must beat a static
scheme on *both* axes to count — on each scenario, ``ad_wins`` is true only
when AD's worst-window imbalance is strictly lower than that of **every**
static scheme whose replication factor is at or below AD's.  (Beating KG on
balance while paying W-C's memory would be a hollow win.)  Switch and
migration costs are not hidden either: every scheme switch is priced through
the :class:`~repro.elasticity.accountant.MigrationCostAccountant` and the
per-row ``keys_moved``/``entries_migrated`` columns report the bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.scenarios.catalog import build_workload, get_scenario
from repro.simulation.runner import run_simulation

EXPERIMENT_ID = "fig18"
TITLE = "Adaptive partitioning vs static schemes under drift"

#: The adaptive scheme plus every static scheme in the registry.  Duplicated
#: as a literal (rather than calling ``available_schemes()``) so the config
#: fingerprint changes when the comparison set changes.
ADAPTIVE_SCHEME = "AD"
STATIC_SCHEMES = (
    "KG",
    "SG",
    "PKG",
    "D-C",
    "W-C",
    "RR",
    "GREEDY-D",
    "FIXED-D",
    "CH",
)

#: The catalog's drifting scenarios — the ones where the best static choice
#: changes mid-stream.  (The stationary baselines are covered by Figure 5.)
DRIFT_SCENARIOS = (
    "flash_crowd",
    "hot_key_churn",
    "diurnal_cycle",
    "key_space_growth",
    "single_key_flood",
    "drift_mixture",
)

#: Constructor options for the static schemes that need them (matching the
#: scenario-equivalence property suite so numbers line up across artifacts).
STATIC_OPTIONS: dict[str, dict[str, Any]] = {
    "GREEDY-D": {"num_choices": 4},
    "FIXED-D": {"num_choices": 5},
}


@dataclass(slots=True)
class Fig18Config:
    """Parameters of the adaptive-vs-static drift sweep.

    ``check_interval`` and ``min_dwell`` are *per-source* message counts
    (each of the ``num_sources`` sources runs its own controller), so the
    presets scale them with the per-source stream length: the controller
    should get a comparable number of decision points at every scale.
    ``imbalance_window`` is a *global* message count; each preset uses a
    tenth of the stream so every run closes ten windows.
    """

    scenarios: Sequence[str] = DRIFT_SCENARIOS
    schemes: Sequence[str] = (ADAPTIVE_SCHEME,) + STATIC_SCHEMES
    num_messages: int = 100_000
    num_keys: int = 5_000
    num_workers: int = 16
    num_sources: int = 5
    imbalance_window: int = 10_000
    check_interval: int = 1_000
    min_dwell: int = 2_000
    adaptive_options: dict[str, Any] = field(default_factory=dict)
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig18Config":
        return cls(
            num_messages=500_000,
            num_keys=10_000,
            imbalance_window=50_000,
            check_interval=2_000,
            min_dwell=4_000,
        )

    @classmethod
    def quick(cls) -> "Fig18Config":
        return cls()

    @classmethod
    def tiny(cls) -> "Fig18Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            num_messages=20_000,
            num_keys=1_000,
            num_workers=8,
            imbalance_window=2_000,
            check_interval=250,
            min_dwell=500,
        )


def _scheme_options(config: Fig18Config, scheme: str) -> dict[str, Any]:
    if scheme == ADAPTIVE_SCHEME:
        options: dict[str, Any] = {
            "check_interval": config.check_interval,
            "policy": f"dwell={config.min_dwell}",
        }
        options.update(config.adaptive_options)
        return options
    return dict(STATIC_OPTIONS.get(scheme, {}))


def run(config: Fig18Config | None = None) -> ExperimentResult:
    config = config or Fig18Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "scenarios": tuple(config.scenarios),
            "schemes": tuple(config.schemes),
            "num_messages": config.num_messages,
            "num_keys": config.num_keys,
            "workers": config.num_workers,
            "imbalance_window": config.imbalance_window,
            "check_interval": config.check_interval,
            "min_dwell": config.min_dwell,
        },
    )
    wins: list[str] = []
    for name in config.scenarios:
        spec = get_scenario(name)  # unknown names fail loudly here
        rows: list[dict[str, object]] = []
        for scheme in config.schemes:
            workload = build_workload(
                spec, num_messages=config.num_messages, num_keys=config.num_keys
            )
            simulation = run_simulation(
                workload,
                scheme=scheme,
                num_workers=config.num_workers,
                num_sources=config.num_sources,
                scheme_options=_scheme_options(config, scheme),
                imbalance_window=config.imbalance_window,
                mode=execution_mode_of(config),
            )
            migration = simulation.migration
            rows.append(
                {
                    "scenario": spec.name,
                    "scheme": scheme,
                    "workers": config.num_workers,
                    "worst_window_imbalance": simulation.worst_window_imbalance,
                    "imbalance": simulation.final_imbalance,
                    "replication": simulation.replication_factor,
                    "switches": len(simulation.switch_log),
                    "keys_moved": migration.keys_moved if migration else 0,
                    "entries_migrated": (
                        migration.entries_migrated if migration else 0
                    ),
                }
            )
        adaptive = next(r for r in rows if r["scheme"] == ADAPTIVE_SCHEME)
        # AD "wins" a scenario only against the schemes it does not out-spend:
        # strictly lower worst-window imbalance than every static scheme at
        # equal-or-lower replication.
        rivals = [
            r
            for r in rows
            if r["scheme"] != ADAPTIVE_SCHEME
            and r["replication"] <= adaptive["replication"]
        ]
        ad_wins = bool(rivals) and all(
            adaptive["worst_window_imbalance"] < r["worst_window_imbalance"]
            for r in rivals
        )
        if ad_wins:
            wins.append(spec.name)
        for row in rows:
            row["ad_wins"] = ad_wins
        result.rows.extend(rows)
    result.notes.append(
        f"AD beat every static scheme at equal-or-lower replication on "
        f"{len(wins)}/{len(tuple(config.scenarios))} drift scenarios"
        + (f": {', '.join(wins)}." if wins else ".")
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 18 (ext.)",
    claim=(
        "On drifting streams the adaptive scheme (AD) achieves a strictly "
        "lower worst-window imbalance than every static scheme at "
        "equal-or-lower replication on at least two drift scenarios, with "
        "scheme-switch and migration costs accounted."
    ),
    run=run,
    config_class=Fig18Config,
    kind="simulation",
    schemes=(ADAPTIVE_SCHEME,) + STATIC_SCHEMES,
    output=OutputSpec(
        kind="bars",
        y="worst_window_imbalance",
        series_by=("scenario", "scheme"),
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
