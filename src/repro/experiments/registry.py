"""Registry mapping experiment identifiers to their declarative descriptors.

Each driver module declares a ``DESCRIPTOR``
(:class:`~repro.experiments.descriptor.ExperimentDescriptor`); this module
collects them into one lookup table consumed by the CLI, the suite
orchestrator and the docs guard test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.exceptions import ConfigurationError
from repro.experiments import (
    fig01_scale_imbalance,
    fig03_head_cardinality,
    fig04_fraction_workers,
    fig05_memory_vs_pkg,
    fig06_memory_vs_sg,
    fig07_threshold_sweep,
    fig08_head_tail_load,
    fig09_optimal_d,
    fig10_zipf_imbalance,
    fig11_real_imbalance,
    fig12_imbalance_over_time,
    fig13_throughput,
    fig14_latency,
    fig15_rescale_imbalance,
    fig16_migration_cost,
    fig17_topology_throughput,
    fig18_adaptive,
    scenarios_experiment,
    table1_datasets,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import ExperimentDescriptor


@dataclass(frozen=True, slots=True)
class ExperimentEntry:
    """One registered experiment; everything derives from its descriptor."""

    #: The full declarative descriptor (paper artifact, claim, output spec).
    descriptor: ExperimentDescriptor

    @property
    def experiment_id(self) -> str:
        """Registry identifier ("fig1" ... "table1")."""
        return self.descriptor.experiment_id

    @property
    def title(self) -> str:
        """Human-readable description of the reproduced artifact."""
        return self.descriptor.title

    @property
    def run(self) -> Callable[..., ExperimentResult]:
        """``run(config)`` of the driver module."""
        return self.descriptor.run

    @property
    def tiny_config(self) -> Callable[[], object]:
        """Factory for the smoke-test (suite/CI-sized) configuration."""
        return self.descriptor.config_class.tiny

    @property
    def quick_config(self) -> Callable[[], object]:
        """Factory for the quick (benchmark-sized) configuration."""
        return self.descriptor.config_class.quick

    @property
    def paper_config(self) -> Callable[[], object]:
        """Factory for the paper-scale configuration."""
        return self.descriptor.config_class.paper

    def config_for(self, scale: str) -> object:
        """Build the preset configuration for ``scale`` (tiny/quick/paper)."""
        return self.descriptor.config(scale)


_MODULES = (
    fig01_scale_imbalance,
    fig03_head_cardinality,
    fig04_fraction_workers,
    fig05_memory_vs_pkg,
    fig06_memory_vs_sg,
    fig07_threshold_sweep,
    fig08_head_tail_load,
    fig09_optimal_d,
    fig10_zipf_imbalance,
    fig11_real_imbalance,
    fig12_imbalance_over_time,
    fig13_throughput,
    fig14_latency,
    fig15_rescale_imbalance,
    fig16_migration_cost,
    fig17_topology_throughput,
    fig18_adaptive,
    scenarios_experiment,
    table1_datasets,
)


def _build_registry() -> dict[str, ExperimentEntry]:
    registry: dict[str, ExperimentEntry] = {}
    for module in _MODULES:
        entry = ExperimentEntry(descriptor=module.DESCRIPTOR)
        registry[entry.experiment_id] = entry
    return registry


_REGISTRY = _build_registry()


def list_experiments() -> tuple[str, ...]:
    """Identifiers of every registered experiment (fig1 ... table1)."""
    return tuple(_REGISTRY)


def iter_entries() -> Iterator[ExperimentEntry]:
    """All registered entries, in registration (figure) order."""
    return iter(_REGISTRY.values())


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up one experiment by id (case-insensitive)."""
    entry = _REGISTRY.get(experiment_id.lower())
    if entry is None:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        )
    return entry


def run_experiment(experiment_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one experiment at the requested scale (tiny, quick or paper).

    Scale validation happens in ``descriptor.config``; an unknown scale
    raises :class:`~repro.exceptions.ConfigurationError`.
    """
    entry = get_experiment(experiment_id)
    return entry.run(entry.config_for(scale))
