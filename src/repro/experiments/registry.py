"""Registry mapping experiment identifiers to their driver modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.experiments import (
    fig01_scale_imbalance,
    fig03_head_cardinality,
    fig04_fraction_workers,
    fig05_memory_vs_pkg,
    fig06_memory_vs_sg,
    fig07_threshold_sweep,
    fig08_head_tail_load,
    fig09_optimal_d,
    fig10_zipf_imbalance,
    fig11_real_imbalance,
    fig12_imbalance_over_time,
    fig13_throughput,
    fig14_latency,
    table1_datasets,
)
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True, slots=True)
class ExperimentEntry:
    """One registered experiment: its id, title and callables."""

    experiment_id: str
    title: str
    #: ``run(config)`` of the driver module.
    run: Callable[..., ExperimentResult]
    #: Factory for the quick (benchmark-sized) configuration.
    quick_config: Callable[[], object]
    #: Factory for the paper-scale configuration.
    paper_config: Callable[[], object]


_MODULES = (
    (fig01_scale_imbalance, "Fig01Config"),
    (fig03_head_cardinality, "Fig03Config"),
    (fig04_fraction_workers, "Fig04Config"),
    (fig05_memory_vs_pkg, "Fig05Config"),
    (fig06_memory_vs_sg, "Fig06Config"),
    (fig07_threshold_sweep, "Fig07Config"),
    (fig08_head_tail_load, "Fig08Config"),
    (fig09_optimal_d, "Fig09Config"),
    (fig10_zipf_imbalance, "Fig10Config"),
    (fig11_real_imbalance, "Fig11Config"),
    (fig12_imbalance_over_time, "Fig12Config"),
    (fig13_throughput, "Fig13Config"),
    (fig14_latency, "Fig14Config"),
    (table1_datasets, "Table1Config"),
)


def _build_registry() -> dict[str, ExperimentEntry]:
    registry: dict[str, ExperimentEntry] = {}
    for module, config_name in _MODULES:
        config_class = getattr(module, config_name)
        entry = ExperimentEntry(
            experiment_id=module.EXPERIMENT_ID,
            title=module.TITLE,
            run=module.run,
            quick_config=config_class.quick,
            paper_config=config_class.paper,
        )
        registry[entry.experiment_id] = entry
    return registry


_REGISTRY = _build_registry()


def list_experiments() -> tuple[str, ...]:
    """Identifiers of every registered experiment (fig1 ... table1)."""
    return tuple(_REGISTRY)


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up one experiment by id (case-insensitive)."""
    entry = _REGISTRY.get(experiment_id.lower())
    if entry is None:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        )
    return entry


def run_experiment(experiment_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one experiment at the requested scale ("quick" or "paper")."""
    entry = get_experiment(experiment_id)
    if scale == "quick":
        config = entry.quick_config()
    elif scale == "paper":
        config = entry.paper_config()
    else:
        raise ConfigurationError(
            f"scale must be 'quick' or 'paper', got {scale!r}"
        )
    return entry.run(config)
