"""Declarative experiment descriptors.

Every driver module declares a single :data:`DESCRIPTOR` — a frozen
:class:`ExperimentDescriptor` naming the paper artifact it reproduces, the
claim being validated, the config class with its scale presets, the schemes
involved and an :class:`OutputSpec` describing how the rows are plotted.

The descriptor replaces the copy-pasted ``main()`` blocks the driver modules
used to carry: ``main = DESCRIPTOR.cli_main`` gives each module an argument
parsing entry point (``--scale``, ``--export``) for free, and the registry,
the suite orchestrator and the docs guard all consume the same declaration.
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentResult, jsonable, print_result

#: The parameter scales every config class provides, smallest first.
#: ``tiny`` is the smoke-test scale used by the suite orchestrator and CI,
#: ``quick`` runs in seconds on a laptop, ``paper`` uses the paper's numbers.
SCALES = ("tiny", "quick", "paper")

#: Config fields that do not affect experiment *results* (every execution
#: mode — scalar, batched, columnar — is bit-identical for every batch
#: size), so the suite's content-addressed store excludes them from cache
#: keys.  ``mode`` joining the set keeps pre-ExecutionMode fingerprints
#: valid: cached records never invalidate over a pure performance knob.
NON_SEMANTIC_FIELDS = frozenset({"batch_size", "mode"})


@dataclass(frozen=True, slots=True)
class OutputSpec:
    """How an experiment's rows map onto a figure/table.

    Attributes
    ----------
    kind:
        "series" (x/y lines, one per ``series_by`` combination), "bars"
        (one labelled bar per row) or "table" (no chart; the row table is
        the artifact, as for Table I).
    x, y:
        Column names of the plotted axes (``None`` for tables).
    series_by:
        Columns whose value combinations identify one plotted line/bar.
    log_y:
        Whether the paper plots the y axis on a log scale.
    """

    kind: str = "table"
    x: str | None = None
    y: str | None = None
    series_by: tuple[str, ...] = ()
    log_y: bool = False

    def _label(self, row: Mapping[str, Any]) -> str:
        return "/".join(f"{row[column]}" for column in self.series_by) or "all"

    def render(self, result: ExperimentResult, width: int = 60) -> str | None:
        """Render the rows as an ASCII chart (``None`` for table outputs)."""
        if self.kind == "table" or self.y is None or not result.rows:
            return None
        from repro.reporting.ascii_chart import ascii_bar_chart, ascii_series_chart

        if self.kind == "bars":
            values: dict[str, float] = {}
            for row in result.rows:
                label = self._label(row)
                if self.x is not None:
                    label = f"{label}/{row[self.x]}"
                values[label] = float(row[self.y])
            return ascii_bar_chart(values, width=width)
        if self.kind == "series":
            series: dict[str, dict[float, float]] = {}
            for row in result.rows:
                if self.x is None or row.get(self.y) is None:
                    continue
                points = series.setdefault(self._label(row), {})
                points[float(row[self.x])] = float(row[self.y])
            if not series:
                return None
            return ascii_series_chart(series, width=width, log_y=self.log_y)
        raise ConfigurationError(f"unknown output kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class ExperimentDescriptor:
    """Declarative description of one paper-figure/table reproduction.

    Attributes
    ----------
    experiment_id:
        Registry identifier ("fig1" ... "table1").
    title:
        Human-readable description of the reproduced artifact.
    artifact:
        The paper artifact name ("Figure 1", "Table I").
    claim:
        The paper observation the experiment validates (one sentence).
    run:
        The driver's ``run(config)`` callable.
    config_class:
        Dataclass with ``tiny()`` / ``quick()`` / ``paper()`` factories.
    kind:
        "analytical" (closed-form, no stream), "simulation" (routing
        simulation engine) or "cluster" (discrete-event cluster simulator).
    schemes:
        Grouping schemes exercised by the experiment (empty if none).
    output:
        How the rows map onto the figure (see :class:`OutputSpec`).
    """

    experiment_id: str
    title: str
    artifact: str
    claim: str
    run: Callable[..., ExperimentResult]
    config_class: type
    kind: str = "simulation"
    schemes: tuple[str, ...] = ()
    output: OutputSpec = OutputSpec()

    def config(self, scale: str = "quick") -> Any:
        """Build the preset configuration for ``scale``."""
        if scale not in SCALES:
            raise ConfigurationError(
                f"scale must be one of {SCALES}, got {scale!r}"
            )
        return getattr(self.config_class, scale)()

    def config_dict(self, config: Any) -> dict[str, Any]:
        """The configuration as a JSON-serialisable dict (for store keys)."""
        return {
            name: jsonable(value)
            for name, value in dataclasses.asdict(config).items()
        }

    def configure(
        self,
        scale: str = "quick",
        batch_size: int | None = None,
        mode: Any = None,
    ) -> Any:
        """Build the ``scale`` preset, optionally overriding the execution.

        ``mode`` (an :class:`~repro.execution.ExecutionMode` or spec string)
        and the older ``batch_size`` apply only when the config carries the
        matching field (the simulation-backed experiments); results are
        identical for every value, only the throughput changes.  Passing
        both is ambiguous and rejected.
        """
        config = self.config(scale)
        if mode is not None and batch_size is not None:
            raise ConfigurationError(
                "configure(): pass either mode= or batch_size=, not both"
            )
        if mode is not None and hasattr(config, "mode"):
            from repro.execution import ExecutionMode

            config.mode = ExecutionMode.coerce(mode)
        elif batch_size is not None and hasattr(config, "batch_size"):
            config.batch_size = batch_size
        return config

    def run_at(
        self,
        scale: str = "quick",
        batch_size: int | None = None,
        mode: Any = None,
    ) -> ExperimentResult:
        """Run the experiment at a preset scale (see :meth:`configure`)."""
        return self.run(self.configure(scale, batch_size, mode=mode))

    def cli_main(self, argv: Sequence[str] | None = None) -> None:
        """Shared ``python -m repro.experiments.figXX`` entry point."""
        parser = argparse.ArgumentParser(
            description=f"{self.artifact} reproduction: {self.title}"
        )
        parser.add_argument(
            "--scale",
            choices=SCALES,
            default="quick",
            help=(
                "parameter scale: tiny (smoke test), quick (seconds, the "
                "default) or paper (the paper's exact parameters)"
            ),
        )
        parser.add_argument(
            "--export",
            metavar="PATH",
            default=None,
            help="also write the rows to PATH (.csv or .json)",
        )
        args = parser.parse_args(argv)
        result = self.run_at(args.scale)
        print_result(result)
        chart = self.output.render(result)
        if chart:
            print(chart)
        if args.export:
            from repro.reporting.export import write_result

            print(f"rows written to {write_result(result, args.export)}")
