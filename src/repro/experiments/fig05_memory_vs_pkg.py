"""Figure 5 — memory overhead of D-Choices and W-Choices relative to PKG.

For Zipf workloads (``|K| = 10^4``, ``m = 10^7``, ``epsilon = 10^-4``) the
figure plots the extra worker-side memory (in percent over PKG) needed by
D-C and W-C as a function of the skew, for 50 and 100 workers.  The paper's
take-away: at most ~30% extra in the worst case, and D-C needs considerably
less than W-C at moderate skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.memory import memory_model_for_zipf
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec

EXPERIMENT_ID = "fig5"
TITLE = "Memory overhead of D-C and W-C with respect to PKG vs. skew"


@dataclass(slots=True)
class Fig05Config:
    """Parameters of the Figure 5 reproduction (analytical model)."""

    skews: Sequence[float] = tuple(np.round(np.arange(0.4, 2.01, 0.1), 2))
    num_keys: int = 10_000
    num_messages: int = 10_000_000
    worker_counts: Sequence[int] = (50, 100)
    epsilon: float = 1e-4

    @classmethod
    def paper(cls) -> "Fig05Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig05Config":
        # The model is purely analytical, so the full message count costs
        # nothing; only the skew grid is thinned.
        return cls(skews=(0.4, 0.8, 1.2, 1.6, 2.0))

    @classmethod
    def tiny(cls) -> "Fig05Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(skews=(0.8, 1.6), worker_counts=(50,))


def run(config: Fig05Config | None = None) -> ExperimentResult:
    config = config or Fig05Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_keys": config.num_keys,
            "num_messages": config.num_messages,
            "epsilon": config.epsilon,
        },
    )
    for num_workers in config.worker_counts:
        for skew in config.skews:
            model = memory_model_for_zipf(
                exponent=float(skew),
                num_keys=config.num_keys,
                num_messages=config.num_messages,
                num_workers=num_workers,
                epsilon=config.epsilon,
            )
            result.rows.append(
                {
                    "workers": num_workers,
                    "skew": float(skew),
                    "dchoices_vs_pkg_pct": model.dchoices_vs_pkg,
                    "wchoices_vs_pkg_pct": model.wchoices_vs_pkg,
                    "head_cardinality": model.head_size,
                    "d": model.num_choices,
                }
            )
    result.notes.append(
        "Paper observation: both schemes stay within ~30% of PKG's memory in "
        "the worst case; D-C uses considerably less than W-C at moderate skew."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 5",
    claim=(
        "D-C and W-C need at most ~30% more worker-side memory than PKG, "
        "with D-C considerably cheaper than W-C at moderate skew."
    ),
    run=run,
    config_class=Fig05Config,
    kind="analytical",
    schemes=("D-C", "W-C", "PKG"),
    output=OutputSpec(
        kind="series", x="skew", y="dchoices_vs_pkg_pct", series_by=("workers",)
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
