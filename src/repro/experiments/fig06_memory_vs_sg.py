"""Figure 6 — memory overhead of D-Choices and W-Choices relative to SG.

Same analytical setting as Figure 5, but the reference is shuffle grouping:
the figure shows that D-C and W-C need 70-100% *less* memory than SG
(negative overhead), i.e. they deliver SG-like balance at a fraction of its
replication cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.memory import memory_model_for_zipf
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec

EXPERIMENT_ID = "fig6"
TITLE = "Memory overhead of D-C and W-C with respect to SG vs. skew"


@dataclass(slots=True)
class Fig06Config:
    """Parameters of the Figure 6 reproduction (analytical model)."""

    skews: Sequence[float] = tuple(np.round(np.arange(0.4, 2.01, 0.1), 2))
    num_keys: int = 10_000
    num_messages: int = 10_000_000
    worker_counts: Sequence[int] = (50, 100)
    epsilon: float = 1e-4

    @classmethod
    def paper(cls) -> "Fig06Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig06Config":
        # The model is purely analytical, so the full message count costs
        # nothing; only the skew grid is thinned.
        return cls(skews=(0.4, 0.8, 1.2, 1.6, 2.0))

    @classmethod
    def tiny(cls) -> "Fig06Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(skews=(0.8, 1.6), worker_counts=(50,))


def run(config: Fig06Config | None = None) -> ExperimentResult:
    config = config or Fig06Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_keys": config.num_keys,
            "num_messages": config.num_messages,
            "epsilon": config.epsilon,
        },
    )
    for num_workers in config.worker_counts:
        for skew in config.skews:
            model = memory_model_for_zipf(
                exponent=float(skew),
                num_keys=config.num_keys,
                num_messages=config.num_messages,
                num_workers=num_workers,
                epsilon=config.epsilon,
            )
            result.rows.append(
                {
                    "workers": num_workers,
                    "skew": float(skew),
                    "dchoices_vs_sg_pct": model.dchoices_vs_shuffle,
                    "wchoices_vs_sg_pct": model.wchoices_vs_shuffle,
                }
            )
    result.notes.append(
        "Paper observation: D-C and W-C use at least ~70-80% less memory "
        "than shuffle grouping across the whole skew range."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 6",
    claim=(
        "D-C and W-C use at least ~70-80% less memory than shuffle "
        "grouping across the whole skew range."
    ),
    run=run,
    config_class=Fig06Config,
    kind="analytical",
    schemes=("D-C", "W-C", "SG"),
    output=OutputSpec(
        kind="series", x="skew", y="dchoices_vs_sg_pct", series_by=("workers",)
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
