"""Scenario catalog sweep — named traffic patterns with expected bounds.

The paper evaluates its groupings on stationary Zipf streams and three
real-world traces; production streams misbehave in more structured ways.
This experiment sweeps the grouping schemes across the scenario catalog
(:mod:`repro.scenarios.catalog`) — flash crowds, hot-key churn, diurnal
cycles, key-space growth, adversarial single-key floods and drift
mixtures — and checks every run against the scenario's declared
``expected:`` bounds (max imbalance, replication bound, p99 load-factor
bound).

Each row reports the realised metrics next to ``within_expected``; the
violations also appear in the result notes so a bound regression is
visible in the suite report.  The pytest suite under ``tests/scenarios/``
asserts the same bounds at the tiny scale on every CI run, which is what
actually gates merges — this experiment is the exploratory/reporting view
of the same contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.scenarios.catalog import build_workload, check_result, get_scenario
from repro.simulation.runner import run_simulation

EXPERIMENT_ID = "scenarios"
TITLE = "Scenario catalog sweep with expected-bound assertions"

SCHEMES = ("PKG", "D-C", "W-C")

#: Catalog order, duplicated as a literal so config fingerprints change
#: (and cached suite records invalidate) when the catalog itself changes.
ALL_SCENARIOS = (
    "flash_crowd",
    "hot_key_churn",
    "diurnal_cycle",
    "key_space_growth",
    "single_key_flood",
    "drift_mixture",
    "bursty_flash_crowd",
)


@dataclass(slots=True)
class ScenariosConfig:
    """Parameters of the scenario-catalog sweep.

    The catalog's expected bounds are calibrated for the tiny and quick
    scales (8/16 workers); ``paper`` lengthens the stream and widens the
    key space at the same worker count, so the bounds keep holding.
    """

    scenarios: Sequence[str] = ALL_SCENARIOS
    schemes: Sequence[str] = SCHEMES
    num_messages: int = 100_000
    num_keys: int = 5_000
    num_workers: int = 16
    num_sources: int = 5
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "ScenariosConfig":
        return cls(num_messages=500_000, num_keys=10_000)

    @classmethod
    def quick(cls) -> "ScenariosConfig":
        return cls()

    @classmethod
    def tiny(cls) -> "ScenariosConfig":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(num_messages=20_000, num_keys=1_000, num_workers=8)


def run(config: ScenariosConfig | None = None) -> ExperimentResult:
    config = config or ScenariosConfig()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "scenarios": tuple(config.scenarios),
            "schemes": tuple(config.schemes),
            "num_messages": config.num_messages,
            "num_keys": config.num_keys,
            "workers": config.num_workers,
        },
    )
    total_violations = 0
    for name in config.scenarios:
        spec = get_scenario(name)  # unknown names fail loudly here
        for scheme in config.schemes:
            workload = build_workload(
                spec, num_messages=config.num_messages, num_keys=config.num_keys
            )
            simulation = run_simulation(
                workload,
                scheme=scheme,
                num_workers=config.num_workers,
                num_sources=config.num_sources,
                mode=execution_mode_of(config),
            )
            violations = check_result(spec, simulation, scheme=scheme)
            total_violations += len(violations)
            result.rows.append(
                {
                    "scenario": spec.name,
                    "pattern": spec.pattern,
                    "scheme": scheme,
                    "workers": config.num_workers,
                    "imbalance": simulation.final_imbalance,
                    "replication": simulation.replication_factor,
                    "p99_load_factor": simulation.p99_load_factor,
                    "within_expected": not violations,
                }
            )
            for violation in violations:
                result.notes.append(
                    f"{spec.name}/{scheme}: {violation}"
                )
    result.notes.append(
        f"{total_violations} expected-bound violation(s) across "
        f"{len(result.rows)} scenario x scheme cells."
        if total_violations
        else (
            f"All {len(result.rows)} scenario x scheme cells stayed within "
            f"their declared expected bounds."
        )
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Scenarios (ext.)",
    claim=(
        "Across flash crowds, hot-key churn, diurnal cycles, key-space "
        "growth, single-key floods and drift mixtures, D-C/W-C stay within "
        "tight imbalance and replication bounds while PKG degrades only on "
        "the adversarial patterns its two choices cannot split."
    ),
    run=run,
    config_class=ScenariosConfig,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="bars",
        y="imbalance",
        series_by=("scenario", "scheme"),
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
