"""Figure 7 — load imbalance vs. skew for different head thresholds (Q1).

The experiment that answers "how do we pick theta": W-Choices and Round-Robin
are run on Zipf streams with the threshold swept over
``{2/n, 1/n, 1/(2n), 1/(4n), 1/(8n)}``.  W-C reaches essentially ideal
balance for any ``theta <= 1/n``, while RR (same memory cost, but
load-oblivious for the head) degrades at scale — which is why the paper keeps
the load-aware strategy and fixes ``theta = 1/(5n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig7"
TITLE = "Imbalance vs. skew for threshold sweep (W-C and RR)"

SCHEMES = ("W-C", "RR")

#: Threshold labels and their value as a multiple of 1/n.
THRESHOLDS = {
    "2/n": 2.0,
    "1/n": 1.0,
    "1/(2n)": 0.5,
    "1/(4n)": 0.25,
    "1/(8n)": 0.125,
}


@dataclass(slots=True)
class Fig07Config:
    """Parameters of the Figure 7 reproduction."""

    skews: Sequence[float] = (0.4, 0.8, 1.2, 1.6, 2.0)
    worker_counts: Sequence[int] = (5, 10, 50, 100)
    num_keys: int = 10_000
    num_messages: int = 1_000_000
    num_sources: int = 5
    seed: int = 0
    thresholds: Sequence[str] = tuple(THRESHOLDS)
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig07Config":
        return cls(num_messages=10_000_000)

    @classmethod
    def quick(cls) -> "Fig07Config":
        return cls(
            skews=(0.8, 2.0),
            worker_counts=(10, 50),
            num_messages=100_000,
            thresholds=("2/n", "1/(2n)", "1/(8n)"),
        )

    @classmethod
    def tiny(cls) -> "Fig07Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            skews=(2.0,),
            worker_counts=(10,),
            num_messages=8_000,
            thresholds=("2/n", "1/(8n)"),
        )


def run(config: Fig07Config | None = None) -> ExperimentResult:
    config = config or Fig07Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_keys": config.num_keys,
            "num_messages": config.num_messages,
            "workers": tuple(config.worker_counts),
        },
    )
    for scheme in SCHEMES:
        for num_workers in config.worker_counts:
            for label in config.thresholds:
                theta = THRESHOLDS[label] / num_workers
                for skew in config.skews:
                    workload = ZipfWorkload(
                        exponent=float(skew),
                        num_keys=config.num_keys,
                        num_messages=config.num_messages,
                        seed=config.seed,
                    )
                    simulation = run_simulation(
                        workload,
                        scheme=scheme,
                        num_workers=num_workers,
                        num_sources=config.num_sources,
                        seed=config.seed,
                        scheme_options={"theta": theta},
                        mode=execution_mode_of(config),
                    )
                    result.rows.append(
                        {
                            "scheme": scheme,
                            "workers": num_workers,
                            "theta": label,
                            "skew": float(skew),
                            "imbalance": simulation.final_imbalance,
                        }
                    )
    result.notes.append(
        "Paper observation: W-C achieves near-ideal balance for any theta <= "
        "1/n, while RR shows a larger spread and degrades at scale."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 7",
    claim=(
        "W-C reaches near-ideal balance for any theta <= 1/n, while the "
        "load-oblivious RR baseline degrades at scale — motivating the "
        "paper's theta = 1/(5n)."
    ),
    run=run,
    config_class=Fig07Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="series",
        x="skew",
        y="imbalance",
        series_by=("scheme", "workers", "theta"),
        log_y=True,
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
