"""Figure 11 — imbalance on the real-world workloads vs. number of workers.

PKG, D-C and W-C on the Wikipedia-like, Twitter-like and Cashtag-like
workloads, with the deployment size swept over {5, 10, 20, 50, 100}.  The
paper finds all schemes fine at small scale, PKG degrading from ~20 workers
upward, and the drifting CT workload being the hardest for everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.base import Workload
from repro.workloads.synthetic import (
    CashtagLikeWorkload,
    TwitterLikeWorkload,
    WikipediaLikeWorkload,
)

EXPERIMENT_ID = "fig11"
TITLE = "Imbalance on WP/TW/CT-like workloads vs. number of workers"

SCHEMES = ("PKG", "D-C", "W-C")


@dataclass(slots=True)
class Fig11Config:
    """Parameters of the Figure 11 reproduction."""

    worker_counts: Sequence[int] = (5, 10, 20, 50, 100)
    num_messages: int = 1_000_000
    num_sources: int = 5
    seed: int = 0
    datasets: Sequence[str] = ("WP", "TW", "CT")
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig11Config":
        return cls(num_messages=2_000_000)

    @classmethod
    def quick(cls) -> "Fig11Config":
        return cls(
            worker_counts=(10, 50),
            num_messages=100_000,
            datasets=("WP", "CT"),
        )

    @classmethod
    def tiny(cls) -> "Fig11Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            worker_counts=(10,),
            num_messages=20_000,
            datasets=("WP",),
        )

    def workload_factory(self, symbol: str) -> Callable[[], Workload]:
        """A zero-argument factory building the scaled workload for ``symbol``."""
        if symbol == "WP":
            return lambda: WikipediaLikeWorkload(
                num_messages=self.num_messages, seed=self.seed
            )
        if symbol == "TW":
            return lambda: TwitterLikeWorkload(
                num_messages=self.num_messages, seed=self.seed
            )
        if symbol == "CT":
            return lambda: CashtagLikeWorkload(
                num_messages=min(self.num_messages, 690_000), seed=self.seed
            )
        raise ValueError(f"unknown dataset symbol {symbol!r}")


def run(config: Fig11Config | None = None) -> ExperimentResult:
    config = config or Fig11Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_messages": config.num_messages,
            "workers": tuple(config.worker_counts),
            "datasets": tuple(config.datasets),
        },
    )
    for symbol in config.datasets:
        factory = config.workload_factory(symbol)
        for scheme in SCHEMES:
            for num_workers in config.worker_counts:
                simulation = run_simulation(
                    factory(),
                    scheme=scheme,
                    num_workers=num_workers,
                    num_sources=config.num_sources,
                    seed=config.seed,
                    mode=execution_mode_of(config),
                )
                result.rows.append(
                    {
                        "dataset": symbol,
                        "scheme": scheme,
                        "workers": num_workers,
                        "imbalance": simulation.final_imbalance,
                    }
                )
    result.notes.append(
        "Paper observation: at 20+ workers PKG's imbalance exceeds D-C and "
        "W-C by orders of magnitude; the drifting CT workload is the hardest "
        "for every scheme."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 11",
    claim=(
        "At 20+ workers PKG's imbalance exceeds D-C and W-C by orders of "
        "magnitude on the real workloads; the drifting CT stream is the "
        "hardest for every scheme."
    ),
    run=run,
    config_class=Fig11Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="series",
        x="workers",
        y="imbalance",
        series_by=("dataset", "scheme"),
        log_y=True,
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
