"""Figure 16 (ext.) — migration cost: keys moved & misroutes vs. rescale policy.

Beyond-paper extension: the complement of Figure 15 (ext.).  The same
join/leave/fail schedule is replayed under each rescale policy —
stop-the-world re-hash, consistent-grouping incremental migration, PKG
candidate-set remap — and the migration-cost accountant reports what the
elasticity *costs* per scheme: observed keys whose candidate workers
changed, operator-state entries migrated or lost, bytes of state traffic,
and tuples misrouted during the transition window.

The headline contrast: modulo-hash schemes (KG, PKG, and the head/tail
schemes' tail path) remap nearly every key on any rescale, while the
consistent-hash ring only moves the keys of the changed worker — the
trade-off migration-based systems (Gedik, VLDBJ 2014) build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.elasticity.events import RescalePlan
from repro.elasticity.policies import POLICY_NAMES
from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig16"
TITLE = "Migration cost (keys moved, misroute window) vs. rescale policy"

SCHEMES = ("KG", "PKG", "D-C", "W-C", "CH")


@dataclass(slots=True)
class Fig16Config:
    """Parameters of the migration-cost experiment."""

    num_workers: int = 50
    num_messages: int = 200_000
    num_sources: int = 5
    seed: int = 0
    exponent: float = 1.4
    num_keys: int = 10_000
    #: The elastic schedule every (scheme, policy) cell replays.
    rescale: str = "join@50000,leave@120000,fail@160000"
    policies: Sequence[str] = POLICY_NAMES
    migration_window: int = 5_000
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig16Config":
        return cls(
            num_messages=1_000_000,
            rescale="join@250000,leave@600000,fail@800000",
            migration_window=10_000,
        )

    @classmethod
    def quick(cls) -> "Fig16Config":
        return cls(
            num_workers=20,
            num_messages=60_000,
            rescale="join@15000,leave@36000,fail@48000",
            migration_window=2_000,
        )

    @classmethod
    def tiny(cls) -> "Fig16Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            num_workers=10,
            num_messages=20_000,
            num_keys=2_000,
            rescale="join@5000,leave@12000,fail@15000",
            migration_window=1_000,
        )


def run(config: Fig16Config | None = None) -> ExperimentResult:
    config = config or Fig16Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "workers": config.num_workers,
            "num_messages": config.num_messages,
            "rescale": config.rescale,
            "policies": tuple(config.policies),
            "migration_window": config.migration_window,
        },
    )
    for policy in config.policies:
        plan = RescalePlan.parse(
            config.rescale,
            policy=policy,
            migration_window=config.migration_window,
        )
        for scheme in SCHEMES:
            simulation = run_simulation(
                ZipfWorkload(
                    exponent=config.exponent,
                    num_keys=config.num_keys,
                    num_messages=config.num_messages,
                    seed=config.seed,
                ),
                scheme=scheme,
                num_workers=config.num_workers,
                num_sources=config.num_sources,
                seed=config.seed,
                mode=execution_mode_of(config),
                rescale_plan=plan,
            )
            migration = simulation.migration
            assert migration is not None  # a plan was configured
            result.rows.append(
                {
                    "scheme": scheme,
                    "policy": policy,
                    "events": migration.events_applied,
                    "keys_moved": migration.keys_moved,
                    "entries_migrated": migration.entries_migrated,
                    "entries_lost": migration.entries_lost,
                    "bytes_migrated": migration.bytes_migrated,
                    "tuples_misrouted": migration.tuples_misrouted,
                    "final_imbalance": simulation.final_imbalance,
                }
            )
    result.notes.append(
        "Extension observation: consistent grouping moves an order of "
        "magnitude fewer keys than the modulo-hash schemes under every "
        "policy; only incremental migration misroutes tuples (bounded by "
        "the window), while stop-the-world re-hash pays instead with reset "
        "sender state and head re-detection."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 16 (ext.)",
    claim=(
        "Rescale cost is dominated by the hashing substrate: consistent "
        "grouping moves ~n-times fewer keys than modulo re-hashing, and only "
        "the incremental-migration policy misroutes tuples (bounded by its "
        "window)."
    ),
    run=run,
    config_class=Fig16Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="bars",
        x="policy",
        y="keys_moved",
        series_by=("scheme",),
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
