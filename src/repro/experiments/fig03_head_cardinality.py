"""Figure 3 — cardinality of the head as a function of skew.

For Zipf distributions with ``|K| = 10^4`` keys the figure shows how many
keys exceed the head threshold, for the two extremes of the admissible range
(``theta = 1/(5n)`` and ``theta = 2/n``) and deployments of 50 and 100
workers.  The head stays small (tens of keys), which is what keeps the
replication overhead of D-C / W-C low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.head import head_cardinality
from repro.analysis.zipf import ZipfDistribution
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec

EXPERIMENT_ID = "fig3"
TITLE = "Cardinality of the head vs. skew for theta in {1/(5n), 2/n}"


@dataclass(slots=True)
class Fig03Config:
    """Parameters of the Figure 3 reproduction (purely analytical)."""

    skews: Sequence[float] = tuple(np.round(np.arange(0.1, 2.01, 0.1), 2))
    num_keys: int = 10_000
    worker_counts: Sequence[int] = (50, 100)

    @classmethod
    def paper(cls) -> "Fig03Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig03Config":
        return cls(skews=(0.4, 0.8, 1.2, 1.6, 2.0))

    @classmethod
    def tiny(cls) -> "Fig03Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(skews=(0.8, 1.6), worker_counts=(50,))


def run(config: Fig03Config | None = None) -> ExperimentResult:
    config = config or Fig03Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={"num_keys": config.num_keys, "workers": tuple(config.worker_counts)},
    )
    for num_workers in config.worker_counts:
        thresholds = {
            "1/(5n)": 1.0 / (5.0 * num_workers),
            "2/n": 2.0 / num_workers,
        }
        for skew in config.skews:
            distribution = ZipfDistribution(float(skew), config.num_keys)
            for label, theta in thresholds.items():
                result.rows.append(
                    {
                        "workers": num_workers,
                        "skew": float(skew),
                        "theta": label,
                        "head_cardinality": head_cardinality(distribution, theta),
                    }
                )
    result.notes.append(
        "Paper observation: the head contains at most a few tens of keys; "
        "it grows with skew up to a point and then shrinks again as a "
        "handful of keys dominate."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 3",
    claim=(
        "The head contains at most a few tens of keys across the skew "
        "range, which keeps the replication overhead of D-C / W-C low."
    ),
    run=run,
    config_class=Fig03Config,
    kind="analytical",
    output=OutputSpec(
        kind="series",
        x="skew",
        y="head_cardinality",
        series_by=("workers", "theta"),
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
