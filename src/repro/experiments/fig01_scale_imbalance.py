"""Figure 1 — imbalance versus deployment size on the Wikipedia workload.

The motivating figure of the paper: PKG keeps the Wikipedia stream balanced
at 5-10 workers, but its imbalance grows towards 10% at 20-100 workers,
while D-Choices and W-Choices stay below 0.1% at every scale.

The driver runs the WP-like workload through PKG, D-C and W-C for each
deployment size and reports the final imbalance ``I(m)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.synthetic import WikipediaLikeWorkload

EXPERIMENT_ID = "fig1"
TITLE = "Imbalance vs. number of workers on the Wikipedia-like workload"

#: Scheme line-up of the figure.
SCHEMES = ("PKG", "D-C", "W-C")


@dataclass(slots=True)
class Fig01Config:
    """Parameters of the Figure 1 reproduction."""

    worker_counts: Sequence[int] = (5, 10, 20, 50, 100)
    num_messages: int = 2_000_000
    num_body_keys: int = 100_000
    num_sources: int = 5
    seed: int = 0
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig01Config":
        """Paper-scale parameters (the WP trace itself is substituted)."""
        return cls(num_messages=2_000_000, num_body_keys=100_000)

    @classmethod
    def quick(cls) -> "Fig01Config":
        """Benchmark-friendly scale (seconds instead of minutes)."""
        return cls(
            worker_counts=(5, 10, 50),
            num_messages=100_000,
            num_body_keys=20_000,
        )

    @classmethod
    def tiny(cls) -> "Fig01Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            worker_counts=(5, 10),
            num_messages=20_000,
            num_body_keys=5_000,
        )


def run(config: Fig01Config | None = None) -> ExperimentResult:
    config = config or Fig01Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "workers": tuple(config.worker_counts),
            "messages": config.num_messages,
            "sources": config.num_sources,
        },
    )
    for scheme in SCHEMES:
        for num_workers in config.worker_counts:
            workload = WikipediaLikeWorkload(
                num_messages=config.num_messages,
                num_body_keys=config.num_body_keys,
                seed=config.seed,
            )
            simulation = run_simulation(
                workload,
                scheme=scheme,
                num_workers=num_workers,
                num_sources=config.num_sources,
                seed=config.seed,
                mode=execution_mode_of(config),
            )
            result.rows.append(
                {
                    "scheme": scheme,
                    "workers": num_workers,
                    "imbalance": simulation.final_imbalance,
                }
            )
    result.notes.append(
        "Paper observation: PKG imbalance approaches 1e-1 at 50-100 workers "
        "while D-C and W-C stay below 1e-3."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 1",
    claim=(
        "PKG's imbalance grows towards 10% at 20-100 workers on the "
        "Wikipedia workload while D-C and W-C stay below 0.1%."
    ),
    run=run,
    config_class=Fig01Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="series", x="workers", y="imbalance", series_by=("scheme",), log_y=True
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
