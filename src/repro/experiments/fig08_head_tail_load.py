"""Figure 8 — per-worker load split into head and tail contributions.

For a Zipf(2.0) stream on 5 workers with ``theta = 1/(8n)``, the figure shows
how PKG, W-C and RR distribute the head and tail of the distribution across
workers: PKG overloads the two workers that own the hottest key, W-C mixes
head and tail to reach the ideal 1/n everywhere, and RR balances the head
perfectly but leaves the tail slightly uneven.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig8"
TITLE = "Per-worker head/tail load split for PKG, W-C and RR"

SCHEMES = ("PKG", "W-C", "RR")


@dataclass(slots=True)
class Fig08Config:
    """Parameters of the Figure 8 reproduction."""

    skew: float = 2.0
    num_workers: int = 5
    num_keys: int = 10_000
    num_messages: int = 1_000_000
    num_sources: int = 5
    seed: int = 0
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig08Config":
        return cls(num_messages=10_000_000)

    @classmethod
    def quick(cls) -> "Fig08Config":
        return cls(num_messages=100_000)

    @classmethod
    def tiny(cls) -> "Fig08Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(num_messages=20_000)

    @property
    def theta(self) -> float:
        """The figure uses the lowest threshold of the sweep, 1/(8n)."""
        return 1.0 / (8.0 * self.num_workers)


def run(config: Fig08Config | None = None) -> ExperimentResult:
    config = config or Fig08Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "skew": config.skew,
            "workers": config.num_workers,
            "theta": "1/(8n)",
            "num_messages": config.num_messages,
        },
    )
    for scheme in SCHEMES:
        workload = ZipfWorkload(
            exponent=config.skew,
            num_keys=config.num_keys,
            num_messages=config.num_messages,
            seed=config.seed,
        )
        options = {} if scheme == "PKG" else {"theta": config.theta}
        simulation = run_simulation(
            workload,
            scheme=scheme,
            num_workers=config.num_workers,
            num_sources=config.num_sources,
            seed=config.seed,
            scheme_options=options,
            track_head_tail=True,
            mode=execution_mode_of(config),
        )
        total = max(1, simulation.num_messages)
        head_loads = simulation.head_loads or [0] * config.num_workers
        tail_loads = simulation.tail_loads or simulation.worker_loads
        for worker in range(config.num_workers):
            result.rows.append(
                {
                    "scheme": scheme,
                    "worker": worker + 1,
                    "head_load_pct": 100.0 * head_loads[worker] / total,
                    "tail_load_pct": 100.0 * tail_loads[worker] / total,
                    "total_load_pct": 100.0
                    * simulation.worker_loads[worker]
                    / total,
                }
            )
    result.notes.append(
        "Ideal load per worker is 100/n percent; PKG overloads the two "
        "workers owning the hottest key (PKG has no head path, so its whole "
        "load is reported as tail)."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 8",
    claim=(
        "PKG overloads the two workers owning the hottest key; W-C mixes "
        "head and tail to reach the ideal 1/n everywhere; RR balances the "
        "head but leaves the tail slightly uneven."
    ),
    run=run,
    config_class=Fig08Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="bars", x="worker", y="total_load_pct", series_by=("scheme",)
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
