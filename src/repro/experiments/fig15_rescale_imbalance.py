"""Figure 15 (ext.) — imbalance trajectory through an elastic rescale schedule.

Beyond-paper extension: the paper's Figures 10-12 measure imbalance on a
*fixed* worker set; this experiment replays a worker join/leave/fail
schedule mid-stream and records the imbalance trajectory ``I(t)`` of every
scheme through the transitions.  The question it answers is the production
version of the paper's headline claim: does near-optimal balance *survive*
elasticity, and how quickly does each scheme re-converge after the worker
set changes?

The schedule and the rescale policy are part of the configuration; the
default exercises one join, one graceful leave and one failure under
incremental migration (the policy that keeps the senders' head tables, so
D-C/W-C re-converge without re-learning the heavy hitters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.elasticity.events import RescalePlan
from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig15"
TITLE = "Imbalance through a worker join/leave/fail schedule"

SCHEMES = ("PKG", "D-C", "W-C", "CH")


@dataclass(slots=True)
class Fig15Config:
    """Parameters of the rescale-trajectory experiment."""

    num_workers: int = 50
    num_messages: int = 500_000
    num_sources: int = 5
    seed: int = 0
    exponent: float = 1.4
    num_keys: int = 10_000
    #: The elastic schedule, as a ``kind@offset`` spec (offsets in messages).
    rescale: str = "join@125000,join@200000,leave@300000,fail@400000"
    policy: str = "migrate"
    migration_window: int = 5_000
    #: Number of ``I(t)`` snapshots taken along the stream.
    num_snapshots: int = 50
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig15Config":
        return cls(num_messages=1_000_000,
                   rescale="join@250000,join@400000,leave@600000,fail@800000",
                   num_snapshots=100)

    @classmethod
    def quick(cls) -> "Fig15Config":
        return cls(
            num_workers=20,
            num_messages=100_000,
            rescale="join@25000,join@40000,leave@60000,fail@80000",
            migration_window=2_000,
            num_snapshots=25,
        )

    @classmethod
    def tiny(cls) -> "Fig15Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            num_workers=10,
            num_messages=20_000,
            num_keys=2_000,
            rescale="join@5000,leave@12000,fail@15000",
            migration_window=1_000,
            num_snapshots=8,
        )


def run(config: Fig15Config | None = None) -> ExperimentResult:
    config = config or Fig15Config()
    plan = RescalePlan.parse(
        config.rescale,
        policy=config.policy,
        migration_window=config.migration_window,
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "workers": config.num_workers,
            "num_messages": config.num_messages,
            "rescale": plan.spec,
            "policy": config.policy,
            "snapshots": config.num_snapshots,
        },
    )
    interval = max(1, config.num_messages // config.num_snapshots)
    for scheme in SCHEMES:
        simulation = run_simulation(
            ZipfWorkload(
                exponent=config.exponent,
                num_keys=config.num_keys,
                num_messages=config.num_messages,
                seed=config.seed,
            ),
            scheme=scheme,
            num_workers=config.num_workers,
            num_sources=config.num_sources,
            seed=config.seed,
            track_interval=interval,
            mode=execution_mode_of(config),
            rescale_plan=plan,
        )
        series = simulation.time_series
        if series is None:
            continue
        for snapshot, (messages, imbalance) in enumerate(series.as_rows()):
            result.rows.append(
                {
                    "scheme": scheme,
                    "snapshot": snapshot,
                    "messages": messages,
                    # Workers active when this snapshot was taken (the
                    # message at `messages - 1` was the last one recorded).
                    "workers": plan.workers_at(
                        max(0, messages - 1), config.num_workers
                    ),
                    "imbalance": imbalance,
                }
            )
        migration = simulation.migration
        if migration is not None:
            result.notes.append(
                f"{scheme}: {migration.events_applied} events, "
                f"{migration.keys_moved} keys moved, "
                f"{migration.tuples_misrouted} tuples misrouted"
            )
    result.notes.append(
        "Extension observation: load-aware schemes absorb joins and leaves "
        "with a transient imbalance spike that decays as the load vectors "
        "re-converge; consistent grouping moves the fewest keys but keeps "
        "key grouping's skew sensitivity."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 15 (ext.)",
    claim=(
        "Near-optimal balance survives elastic rescaling: D-C/W-C re-converge "
        "after worker joins, leaves and failures, with a transient spike "
        "bounded by the migration policy's window."
    ),
    run=run,
    config_class=Fig15Config,
    kind="simulation",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="series",
        x="messages",
        y="imbalance",
        series_by=("scheme",),
        log_y=True,
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
