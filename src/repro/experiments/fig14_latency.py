"""Figure 14 — end-to-end latency of the grouping schemes on the cluster.

Same setup as Figure 13; the reported metrics are the maximum of the
per-worker average latencies and the 50th/95th/99th percentiles across all
messages.  The paper finds KG's latency dominated by the queue of the worker
that owns the hottest key, PKG roughly halving it, and D-C / W-C close to SG
(60% below PKG and 75% below KG at the 99th percentile in the best case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.runner import run_cluster_experiment
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig14"
TITLE = "Cluster latency (max avg, p50, p95, p99) for KG, PKG, D-C, W-C, SG"

SCHEMES = ("KG", "PKG", "D-C", "W-C", "SG")


@dataclass(slots=True)
class Fig14Config:
    """Parameters of the Figure 14 reproduction."""

    skews: Sequence[float] = (1.4, 1.7, 2.0)
    num_keys: int = 10_000
    num_messages: int = 200_000
    num_sources: int = 48
    num_workers: int = 80
    service_time_ms: float = 1.0
    seed: int = 0
    schemes: Sequence[str] = SCHEMES

    @classmethod
    def paper(cls) -> "Fig14Config":
        return cls(num_messages=2_000_000)

    @classmethod
    def quick(cls) -> "Fig14Config":
        return cls(skews=(1.4, 2.0), num_messages=40_000)

    @classmethod
    def tiny(cls) -> "Fig14Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            skews=(2.0,),
            num_messages=8_000,
            num_sources=8,
            num_workers=16,
        )


def run(config: Fig14Config | None = None) -> ExperimentResult:
    config = config or Fig14Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "skews": tuple(config.skews),
            "num_messages": config.num_messages,
            "sources": config.num_sources,
            "workers": config.num_workers,
        },
    )
    for skew in config.skews:
        for scheme in config.schemes:
            workload = ZipfWorkload(
                exponent=float(skew),
                num_keys=config.num_keys,
                num_messages=config.num_messages,
                seed=config.seed,
            )
            cluster = run_cluster_experiment(
                workload,
                scheme=scheme,
                num_sources=config.num_sources,
                num_workers=config.num_workers,
                service_time_ms=config.service_time_ms,
                seed=config.seed,
            )
            row = {"skew": float(skew), "scheme": scheme}
            row.update(cluster.latency.as_row())
            result.rows.append(row)
    result.notes.append(
        "Paper observation: KG's latency is dominated by the hot worker's "
        "queue, PKG roughly halves it, and D-C / W-C are close to SG."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 14",
    claim=(
        "KG's latency is dominated by the hot worker's queue, PKG roughly "
        "halves it, and D-C / W-C are close to SG."
    ),
    run=run,
    config_class=Fig14Config,
    kind="cluster",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="bars", x="skew", y="p99_ms", series_by=("scheme",)
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
