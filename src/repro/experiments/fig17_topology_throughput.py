"""Figure 17 (ext.) — multi-stage dataflow topology throughput and balance.

The paper deploys its groupings inside full Storm topologies: sources emit
sentences, a splitter bolt breaks them into words, a partitioned counter
aggregates per word, and a key-grouped downstream aggregator reconciles the
partial counts (the two-level aggregation of Section IV-B).  This
experiment reproduces that deployment shape on the in-process dataflow
runtime:

    external posts --SG--> split (stateless flat-map, words per post)
                   --<scheme>--> aggregate (windowed per-word counts)
                   --SG--> rekey (window-tag the partials)
                   --KG--> reconcile (streaming two-level merge)

For every scheme the driver reports end-to-end topology throughput under
batched stage-by-stage execution plus the per-vertex imbalance and the
aggregation (replication) cost — the quantities the paper argues D-Choices
and W-Choices keep low simultaneously.  ``benchmarks/bench_dataflow.py``
uses the same topology to pin the batched-vs-scalar speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.dataflow.graph import Topology
from repro.dataflow.runtime import TopologyResult, run_topology
from repro.execution import ExecutionMode
from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.operators.aggregations import CountAggregator
from repro.operators.base import StatelessOperator
from repro.operators.reconciliation import ReconciliationSink
from repro.operators.windows import TumblingWindowAssigner, WindowedAggregator
from repro.types import Message
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig17"
TITLE = "Multi-stage topology throughput and per-vertex balance"

SCHEMES = ("KG", "PKG", "D-C", "W-C", "SG")

#: Vertex names of the word-count topology, in stage order.
VERTICES = ("split", "aggregate", "rekey", "reconcile")


@dataclass(slots=True)
class Fig17Config:
    """Parameters of the multi-stage topology experiment."""

    schemes: Sequence[str] = SCHEMES
    skew: float = 1.5
    num_keys: int = 10_000
    num_posts: int = 40_000
    words_per_post: int = 3
    window: float = 5_000.0
    num_splitters: int = 4
    num_aggregators: int = 16
    num_rekeyers: int = 4
    num_reconcilers: int = 8
    num_external_sources: int = 4
    seed: int = 0
    batch_size: int = 1024
    mode: str | None = None

    @property
    def num_messages(self) -> int:
        """Words flowing over the keyed edge (for scale comparisons)."""
        return self.num_posts * self.words_per_post

    @classmethod
    def paper(cls) -> "Fig17Config":
        return cls(num_posts=200_000)

    @classmethod
    def quick(cls) -> "Fig17Config":
        return cls()

    @classmethod
    def tiny(cls) -> "Fig17Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            num_keys=2_000,
            num_posts=2_000,
            window=500.0,
            num_aggregators=8,
            num_reconcilers=4,
        )


def make_posts(config: Fig17Config) -> list[Message]:
    """The external stream: one message per post, carrying its words.

    The words are pre-drawn from the Zipf stream so every scheme (and every
    batch size) sees the identical workload.
    """
    words = list(
        ZipfWorkload(
            exponent=config.skew,
            num_keys=config.num_keys,
            num_messages=config.num_posts * config.words_per_post,
            seed=config.seed,
        )
    )
    per_post = config.words_per_post
    return [
        Message(
            timestamp=float(index),
            key=index,
            value=tuple(words[index * per_post : (index + 1) * per_post]),
        )
        for index in range(config.num_posts)
    ]


def build_topology(config: Fig17Config, scheme: str) -> Topology:
    """The word-count topology with ``scheme`` on the keyed edge."""

    def splitter(instance_id: int) -> StatelessOperator:
        return StatelessOperator(
            lambda message: [
                Message(message.timestamp, word, 1) for word in message.value
            ],
            instance_id=instance_id,
        )

    window = float(config.window)

    def aggregator(instance_id: int) -> WindowedAggregator:
        return WindowedAggregator(
            TumblingWindowAssigner(window),
            lambda accumulator, _: accumulator + 1,
            int,
            instance_id=instance_id,
        )

    def rekeyer(instance_id: int) -> StatelessOperator:
        # A closed window arrives as (key=word, value=(start, count)); tag
        # the key with the window so the reconciler merges per (window,
        # word).  String keys keep the KG hashing deterministic.
        return StatelessOperator(
            lambda message: [
                Message(
                    message.timestamp,
                    f"{message.value[0]:g}|{message.key}",
                    message.value[1],
                )
            ],
            instance_id=instance_id,
        )

    def reconciler(instance_id: int) -> ReconciliationSink:
        return ReconciliationSink(CountAggregator.merge, instance_id=instance_id)

    return (
        Topology("wordcount-two-level")
        .add_vertex("split", splitter, parallelism=config.num_splitters)
        .add_vertex("aggregate", aggregator, parallelism=config.num_aggregators)
        .add_vertex("rekey", rekeyer, parallelism=config.num_rekeyers)
        .add_vertex("reconcile", reconciler, parallelism=config.num_reconcilers)
        .set_source("split", scheme="SG")
        .add_edge("split", "aggregate", scheme=scheme)
        .add_edge("aggregate", "rekey", scheme="SG")
        .add_edge("rekey", "reconcile", scheme="KG")
    )


def run_scheme(
    config: Fig17Config,
    scheme: str,
    posts: list[Message] | None = None,
    batch_size: int | None = None,
) -> tuple[TopologyResult, float]:
    """Run one scheme through the topology; returns (result, elapsed s)."""
    if posts is None:
        posts = make_posts(config)
    topology = build_topology(config, scheme)
    if batch_size is None:
        mode = execution_mode_of(config)
    elif batch_size == 1:
        mode = ExecutionMode.scalar()
    else:
        mode = ExecutionMode.batched(batch_size)
    started = time.perf_counter()
    result = run_topology(
        topology,
        posts,
        seed=config.seed,
        num_external_sources=config.num_external_sources,
        mode=mode,
    )
    return result, time.perf_counter() - started


def run(config: Fig17Config | None = None) -> ExperimentResult:
    config = config or Fig17Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "skew": config.skew,
            "num_keys": config.num_keys,
            "num_posts": config.num_posts,
            "words_per_post": config.words_per_post,
            "aggregators": config.num_aggregators,
            "batch_size": config.batch_size,
        },
    )
    posts = make_posts(config)
    words = config.num_messages
    for scheme in config.schemes:
        topology_result, elapsed = run_scheme(config, scheme, posts=posts)
        aggregate = topology_result.vertex_metrics("aggregate")
        reconcile = topology_result.vertex_metrics("reconcile")
        # Replication of a (window, word) slot = number of aggregator
        # instances that emitted a partial for it = partials the sink
        # folded into that slot (each closed window emits one partial per
        # holding instance).
        max_replication = max(
            (
                max(sink.partials_merged.values(), default=0)
                for sink in topology_result.instances["reconcile"]
            ),
            default=0,
        )
        result.rows.append(
            {
                "scheme": scheme,
                "throughput_per_s": words / max(elapsed, 1e-9),
                "aggregate_imbalance": aggregate.imbalance,
                "reconcile_imbalance": reconcile.imbalance,
                "max_replication": max_replication,
                "reconciled_entries": reconcile.total_state_entries,
            }
        )
    result.notes.append(
        "Extension of the paper's Storm deployment: on the multi-stage "
        "word-count topology D-C/W-C keep the aggregation stage as balanced "
        "as SG at a fraction of its replication, while KG concentrates the "
        "head keys on single instances."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 17 (ext.)",
    claim=(
        "On a multi-stage word-count topology D-C / W-C hold the "
        "aggregation stage's imbalance near SG's at bounded replication, "
        "and batched stage-by-stage execution sustains a multiple of the "
        "scalar depth-first throughput."
    ),
    run=run,
    config_class=Fig17Config,
    kind="dataflow",
    schemes=SCHEMES,
    output=OutputSpec(kind="bars", y="throughput_per_s", series_by=("scheme",)),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
