"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterable, Mapping, Sequence

from repro.execution import ExecutionMode, ModeLike, resolve_mode
from repro.partitioning.base import Partitioner
from repro.types import Key, WorkerId


@dataclass(slots=True)
class ExperimentResult:
    """The output of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Identifier such as "fig1", "fig10", "table1".
    title:
        Human-readable description of the paper artefact being reproduced.
    parameters:
        The configuration the experiment ran with (for the record in
        EXPERIMENTS.md).
    rows:
        One dictionary per data point / table row.  Keys are column names.
    notes:
        Free-form remarks (e.g. which paper observation the rows support).
    """

    experiment_id: str
    title: str
    parameters: dict[str, Any] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def column_names(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def series(self, key_column: str, value_column: str) -> dict[Any, Any]:
        """Extract one plotted series as ``{x: y}``."""
        return {row[key_column]: row[value_column] for row in self.rows if value_column in row}

    def filtered(self, **criteria: Any) -> list[dict[str, Any]]:
        """Rows matching all the given column=value criteria."""
        matched = []
        for row in self.rows:
            if all(row.get(column) == value for column, value in criteria.items()):
                matched.append(row)
        return matched

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (the suite store's payload)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "parameters": jsonable(self.parameters),
            "rows": [jsonable(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (store records)."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            parameters=dict(payload.get("parameters", {})),
            rows=[dict(row) for row in payload.get("rows", [])],
            notes=list(payload.get("notes", [])),
        )


def jsonable(value: Any) -> Any:
    """Best-effort conversion of a value into JSON-serialisable objects.

    Dicts and sequences recurse; scalars pass through; anything else (numpy
    integers, dataclasses, Paths ...) falls back to ``str``.  Used by the
    exporters and by the suite store when fingerprinting configurations.
    """
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        # numpy floats subclass float and serialise fine; numpy ints do not
        # subclass int and fall through to the str branch below.
        return value
    return str(value)


def execution_mode_of(config: Any) -> ExecutionMode:
    """The :class:`ExecutionMode` an experiment config asks for.

    The single place where experiment configs map onto the execution API:
    a ``mode`` attribute (spec string or instance) wins when set, otherwise
    the config's historical ``batch_size`` field (present on every
    simulation-backed config, and excluded from suite-store fingerprints)
    selects the batched path.  Replaces the per-driver flag plumbing every
    experiment module used to carry.
    """
    mode = getattr(config, "mode", None)
    if mode is not None:
        return ExecutionMode.coerce(mode)
    batch_size = getattr(config, "batch_size", None)
    if batch_size is None:
        return ExecutionMode.batched()
    if batch_size == 1:
        return ExecutionMode.scalar()
    return ExecutionMode.batched(batch_size)


def route_stream(
    partitioner: Partitioner,
    keys: Iterable[Key],
    batch_size: int | None = None,
    columnar: bool | None = None,
    mode: ModeLike | None = None,
) -> list[WorkerId]:
    """Route an entire stream through one partitioner.

    The single-partitioner analogue of the simulation engine's run:
    drivers, benchmarks and ad-hoc studies that only need the worker
    sequence of one source should use this instead of a per-message
    ``route`` loop.  ``mode`` selects the backend
    (:class:`~repro.execution.ExecutionMode`, default ``batched(1024)``);
    results are identical for every mode.  In batched mode a workload's
    ``iter_batches`` is used when available so array-backed streams never
    materialise per-key; columnar mode consumes interned key-id arrays
    (``iter_batches_columnar`` natively when the workload provides it) and
    routes through ``route_batch_columnar`` — string keys are hashed once,
    at interning, and the worker sequence is still byte-identical.

    The legacy ``batch_size=`` / ``columnar=`` keywords remain as
    deprecated aliases emitting a :class:`DeprecationWarning`.
    """
    resolved = resolve_mode(
        mode, batch_size, columnar,
        default=ExecutionMode.batched(), where="route_stream",
    )
    chunk_size = resolved.batch_size
    if resolved.is_columnar:
        out: list[WorkerId] = []
        if hasattr(keys, "iter_batches_columnar"):
            batches = keys.iter_batches_columnar(chunk_size)
        else:
            from repro.workloads.columnar import iter_batches_columnar

            batches = iter_batches_columnar(keys, chunk_size)
        for batch in batches:
            out.extend(partitioner.route_batch_columnar(batch))
        return out
    if chunk_size < 2:
        return [partitioner.route(key) for key in keys]
    out = []
    if hasattr(keys, "iter_batches"):
        for chunk in keys.iter_batches(chunk_size):
            out.extend(partitioner.route_batch(chunk))
        return out
    iterator = iter(keys)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return out
        out.extend(partitioner.route_batch(chunk))


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != 0.0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render rows as a fixed-width text table (what the drivers print)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(value.ljust(width) for value, width in zip(line, widths))
        for line in rendered
    )
    return "\n".join([header, separator, body])


def print_result(result: ExperimentResult) -> None:
    """Pretty-print an experiment result to stdout."""
    print(f"== {result.experiment_id}: {result.title} ==")
    if result.parameters:
        rendered = ", ".join(
            f"{name}={value}" for name, value in result.parameters.items()
        )
        print(f"parameters: {rendered}")
    print(format_table(result.rows))
    for note in result.notes:
        print(f"note: {note}")
