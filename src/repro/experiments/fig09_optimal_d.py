"""Figure 9 — the d computed by D-Choices vs. the empirical minimum d.

Validation of the analysis: for each skew the Greedy-d process is applied to
the head with every ``d`` from 2 to ``n`` (the FIXED-D scheme), and the
empirical minimum is the smallest ``d`` whose imbalance matches W-Choices'
(within a small multiplicative slack).  That minimum is compared with the
value the constraint solver picks — the paper finds them very close, with
D-C slightly above the minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.bounds import theta_range
from repro.analysis.choices import find_optimal_choices
from repro.analysis.head import head_cardinality
from repro.analysis.zipf import ZipfDistribution
from repro.experiments.common import ExperimentResult, execution_mode_of
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.simulation.runner import run_simulation
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig9"
TITLE = "d chosen by D-Choices vs. empirically minimal d"


@dataclass(slots=True)
class Fig09Config:
    """Parameters of the Figure 9 reproduction."""

    skews: Sequence[float] = (0.4, 0.8, 1.2, 1.6, 2.0)
    worker_counts: Sequence[int] = (50, 100)
    num_keys: int = 10_000
    num_messages: int = 500_000
    num_sources: int = 5
    seed: int = 0
    epsilon: float = 1e-4
    #: The empirical minimum is the smallest d whose imbalance is within this
    #: multiplicative factor of W-Choices' imbalance (and within an absolute
    #: floor to absorb sampling noise at near-zero imbalance).
    match_factor: float = 1.5
    match_floor: float = 1e-4
    #: Candidate d values are probed with this stride to keep the sweep
    #: tractable; 1 reproduces the exhaustive search of the paper.
    d_stride: int = 1
    batch_size: int = 1024
    mode: str | None = None

    @classmethod
    def paper(cls) -> "Fig09Config":
        return cls(num_messages=10_000_000)

    @classmethod
    def quick(cls) -> "Fig09Config":
        return cls(
            skews=(1.2, 2.0),
            worker_counts=(50,),
            num_messages=100_000,
            d_stride=4,
        )

    @classmethod
    def tiny(cls) -> "Fig09Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            skews=(2.0,),
            worker_counts=(20,),
            num_messages=8_000,
            d_stride=6,
        )


def _imbalance_for_scheme(config: Fig09Config, num_workers: int, skew: float,
                          scheme: str, options: dict) -> float:
    workload = ZipfWorkload(
        exponent=skew,
        num_keys=config.num_keys,
        num_messages=config.num_messages,
        seed=config.seed,
    )
    simulation = run_simulation(
        workload,
        scheme=scheme,
        num_workers=num_workers,
        num_sources=config.num_sources,
        seed=config.seed,
        scheme_options=options,
        mode=execution_mode_of(config),
    )
    return simulation.final_imbalance


def run(config: Fig09Config | None = None) -> ExperimentResult:
    config = config or Fig09Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "num_keys": config.num_keys,
            "num_messages": config.num_messages,
            "epsilon": config.epsilon,
        },
    )
    for num_workers in config.worker_counts:
        theta = theta_range(num_workers).default
        for skew in config.skews:
            # Analytical d, computed from the exact distribution (as Figure 4).
            distribution = ZipfDistribution(float(skew), config.num_keys)
            head_size = head_cardinality(distribution, theta)
            head = distribution.probabilities[:head_size]
            tail_mass = distribution.tail_mass(head_size)
            analytical = find_optimal_choices(
                head, tail_mass, num_workers, config.epsilon
            )

            # Empirical minimum: smallest d matching W-C's imbalance.
            target = _imbalance_for_scheme(
                config, num_workers, float(skew), "W-C", {"theta": theta}
            )
            threshold = max(target * config.match_factor, config.match_floor)
            minimal_d = None
            for candidate in range(2, num_workers + 1, config.d_stride):
                imbalance = _imbalance_for_scheme(
                    config,
                    num_workers,
                    float(skew),
                    "FIXED-D",
                    {"theta": theta, "num_choices": candidate},
                )
                if imbalance <= threshold:
                    minimal_d = candidate
                    break
            result.rows.append(
                {
                    "workers": num_workers,
                    "skew": float(skew),
                    "analytical_d": analytical.num_choices,
                    "analytical_d_over_n": analytical.num_choices / num_workers,
                    "empirical_min_d": minimal_d,
                    "empirical_min_d_over_n": (
                        minimal_d / num_workers if minimal_d is not None else None
                    ),
                    "wchoices_imbalance": target,
                }
            )
    result.notes.append(
        "Paper observation: the analytical d tracks the empirical minimum "
        "closely, erring slightly on the large side (good balance at low cost)."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 9",
    claim=(
        "The analytical d chosen by the constraint solver tracks the "
        "empirically minimal d closely, erring slightly on the large side."
    ),
    run=run,
    config_class=Fig09Config,
    kind="simulation",
    schemes=("D-C", "W-C", "FIXED-D"),
    output=OutputSpec(
        kind="series", x="skew", y="analytical_d_over_n", series_by=("workers",)
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
