"""Experiment drivers: one module per table/figure of the paper.

Every module exposes

* a ``*Config`` dataclass with two preset factories: ``paper()`` (the exact
  parameters used in the paper) and ``quick()`` (a scaled-down variant that
  runs in seconds on a laptop and is used by the benchmark suite);
* a ``run(config)`` function returning an
  :class:`~repro.experiments.common.ExperimentResult` whose rows mirror the
  series plotted in the figure (or the rows of the table);
* ``main()`` so the experiment can be run directly
  (``python -m repro.experiments.fig01_scale_imbalance``).

:mod:`repro.experiments.registry` maps experiment identifiers ("fig1",
"fig13", "table1", ...) to these modules for the CLI and the benchmark
harness.
"""

from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.registry import get_experiment, list_experiments, run_experiment

__all__ = [
    "ExperimentResult",
    "format_table",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
