"""Experiment drivers: one module per table/figure of the paper.

Every module exposes

* a ``*Config`` dataclass with three preset factories: ``paper()`` (the
  exact parameters used in the paper), ``quick()`` (a scaled-down variant
  that runs in seconds on a laptop) and ``tiny()`` (the smoke-test scale
  used by the suite orchestrator and CI);
* a ``run(config)`` function returning an
  :class:`~repro.experiments.common.ExperimentResult` whose rows mirror the
  series plotted in the figure (or the rows of the table);
* a ``DESCRIPTOR`` (:class:`~repro.experiments.descriptor.ExperimentDescriptor`)
  declaring the paper artifact, the validated claim, the schemes involved
  and the output spec — it also provides the module's ``main()`` entry
  point (``python -m repro.experiments.fig01_scale_imbalance --scale tiny``).

:mod:`repro.experiments.registry` collects the descriptors into one lookup
table for the CLI, the suite orchestrator (:mod:`repro.suite`) and the docs
guard test.
"""

from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec, SCALES
from repro.experiments.registry import get_experiment, list_experiments, run_experiment

__all__ = [
    "ExperimentDescriptor",
    "ExperimentResult",
    "OutputSpec",
    "SCALES",
    "format_table",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
