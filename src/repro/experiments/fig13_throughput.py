"""Figure 13 — throughput of the grouping schemes on the (simulated) cluster.

The paper deploys KG, PKG, D-C, W-C and SG on an Apache Storm cluster with
48 sources, 80 workers, a 1 ms per-message delay and Zipf streams with
``z in {1.4, 1.7, 2.0}``, ``|K| = 10^4`` and ``m = 2 * 10^6``.  Here the
cluster is the discrete-event simulator of :mod:`repro.cluster`; absolute
events/second differ from the paper's hardware, but the ordering and rough
ratios (D-C/W-C matching SG, ~1.5x over PKG and ~2.3x over KG at high skew)
are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.runner import run_cluster_experiment
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import ExperimentDescriptor, OutputSpec
from repro.workloads.zipf_stream import ZipfWorkload

EXPERIMENT_ID = "fig13"
TITLE = "Cluster throughput for KG, PKG, D-C, W-C and SG"

SCHEMES = ("KG", "PKG", "D-C", "W-C", "SG")


@dataclass(slots=True)
class Fig13Config:
    """Parameters of the Figure 13 reproduction."""

    skews: Sequence[float] = (1.4, 1.7, 2.0)
    num_keys: int = 10_000
    num_messages: int = 200_000
    num_sources: int = 48
    num_workers: int = 80
    service_time_ms: float = 1.0
    seed: int = 0
    schemes: Sequence[str] = SCHEMES

    @classmethod
    def paper(cls) -> "Fig13Config":
        return cls(num_messages=2_000_000)

    @classmethod
    def quick(cls) -> "Fig13Config":
        return cls(skews=(1.4, 2.0), num_messages=40_000)

    @classmethod
    def tiny(cls) -> "Fig13Config":
        """Smoke-test scale used by the suite orchestrator and CI."""
        return cls(
            skews=(2.0,),
            num_messages=8_000,
            num_sources=8,
            num_workers=16,
        )


def run(config: Fig13Config | None = None) -> ExperimentResult:
    config = config or Fig13Config()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters={
            "skews": tuple(config.skews),
            "num_messages": config.num_messages,
            "sources": config.num_sources,
            "workers": config.num_workers,
        },
    )
    for skew in config.skews:
        for scheme in config.schemes:
            workload = ZipfWorkload(
                exponent=float(skew),
                num_keys=config.num_keys,
                num_messages=config.num_messages,
                seed=config.seed,
            )
            cluster = run_cluster_experiment(
                workload,
                scheme=scheme,
                num_sources=config.num_sources,
                num_workers=config.num_workers,
                service_time_ms=config.service_time_ms,
                seed=config.seed,
            )
            result.rows.append(
                {
                    "skew": float(skew),
                    "scheme": scheme,
                    "throughput_per_s": cluster.throughput_per_second,
                    "imbalance": cluster.imbalance,
                }
            )
    result.notes.append(
        "Paper observation: KG is the slowest, PKG sits in between, and "
        "D-C / W-C match SG; the gaps widen as the skew grows."
    )
    return result


DESCRIPTOR = ExperimentDescriptor(
    experiment_id=EXPERIMENT_ID,
    title=TITLE,
    artifact="Figure 13",
    claim=(
        "KG is the slowest, PKG sits in between, and D-C / W-C match SG's "
        "throughput; the gaps widen as the skew grows."
    ),
    run=run,
    config_class=Fig13Config,
    kind="cluster",
    schemes=SCHEMES,
    output=OutputSpec(
        kind="bars", x="skew", y="throughput_per_s", series_by=("scheme",)
    ),
)

main = DESCRIPTOR.cli_main

if __name__ == "__main__":  # pragma: no cover
    main()
