"""Parallel orchestration of the full experiment suite.

The orchestrator discovers every experiment registered in
:mod:`repro.experiments.registry`, builds one independent *cell* per
(experiment, scale, config) triple, checks the content-addressed
:class:`~repro.suite.store.ResultsStore` for each, and shards the misses
across a ``multiprocessing`` pool.  Records land on disk as soon as each
cell completes, so an interrupted run resumes where it stopped — the next
invocation cache-hits the finished cells and recomputes only the rest.

Every cell routes its streams through the batched engine: the configs of
the simulation-backed experiments carry a ``batch_size`` forwarded to
:class:`~repro.simulation.config.SimulationConfig`, and the orchestrator's
``batch_size`` argument overrides it suite-wide (results are identical for
every value, so the store fingerprint ignores it).
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.experiments.descriptor import SCALES
from repro.experiments.registry import get_experiment, list_experiments
from repro.suite.store import ResultRecord, ResultsStore, config_fingerprint

#: ``progress(outcome, done, total)`` — invoked once per finished cell.
ProgressCallback = Callable[["CellOutcome", int, int], None]


@dataclass(slots=True)
class CellOutcome:
    """What happened to one (experiment, scale) cell during a suite run."""

    experiment_id: str
    scale: str
    fingerprint: str
    #: "cached" (store hit), "computed" (ran now) or "failed".
    status: str
    elapsed_seconds: float = 0.0
    rows: int = 0
    path: str | None = None
    #: Full traceback text of a failed cell (``error_summary`` for one line).
    error: str | None = None

    @property
    def error_summary(self) -> str | None:
        """The last line of the failure (what progress lines display)."""
        if self.error is None:
            return None
        return self.error.strip().splitlines()[-1]


@dataclass(slots=True)
class SuiteSummary:
    """Aggregate outcome of one ``run_suite`` invocation."""

    scale: str
    outcomes: list[CellOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def ok(self) -> bool:
        return self.count("failed") == 0

    def as_rows(self) -> list[dict[str, Any]]:
        """One summary row per cell (for tables and export)."""
        return [
            {
                "experiment": outcome.experiment_id,
                "scale": outcome.scale,
                "status": outcome.status,
                "rows": outcome.rows,
                "seconds": round(outcome.elapsed_seconds, 3),
                "fingerprint": outcome.fingerprint[:16],
            }
            for outcome in self.outcomes
        ]

    def as_result(self) -> ExperimentResult:
        """The summary wrapped as an ExperimentResult, for the exporters."""
        result = ExperimentResult(
            experiment_id="suite",
            title=f"Suite run at scale {self.scale!r}",
            parameters={
                "scale": self.scale,
                "cells": len(self.outcomes),
                "computed": self.count("computed"),
                "cached": self.count("cached"),
                "failed": self.count("failed"),
                "elapsed_seconds": round(self.elapsed_seconds, 3),
            },
            rows=self.as_rows(),
        )
        for outcome in self.outcomes:
            if outcome.error:
                result.notes.append(
                    f"{outcome.experiment_id} failed: {outcome.error_summary}"
                )
        return result


def _execute_cell(experiment_id: str, scale: str, batch_size: int | None) -> dict[str, Any]:
    """Run one cell; top-level so the process pool can pickle it.

    The configuration is rebuilt from the registry inside the worker (the
    factories are pure, so parent and worker agree on the fingerprint) and
    errors are returned as payloads rather than raised, keeping one broken
    experiment from sinking the whole suite.
    """
    try:
        entry = get_experiment(experiment_id)
        descriptor = entry.descriptor
        config = descriptor.configure(scale, batch_size)
        started = time.perf_counter()
        result = descriptor.run(config)
        elapsed = time.perf_counter() - started
        return {
            "experiment_id": experiment_id,
            "elapsed": elapsed,
            "config": descriptor.config_dict(config),
            "result": result.to_dict(),
        }
    except Exception:
        return {"experiment_id": experiment_id, "error": traceback.format_exc(limit=8)}


def _record_outcome(
    store: ResultsStore,
    scale: str,
    fingerprint: str,
    payload: dict[str, Any],
) -> CellOutcome:
    """Persist one computed cell and describe what happened."""
    experiment_id = payload["experiment_id"]
    if "error" in payload:
        return CellOutcome(
            experiment_id=experiment_id,
            scale=scale,
            fingerprint=fingerprint,
            status="failed",
            error=payload["error"].strip(),
        )
    record = ResultRecord(
        experiment_id=experiment_id,
        scale=scale,
        fingerprint=fingerprint,
        config=payload["config"],
        result=payload["result"],
        elapsed_seconds=payload["elapsed"],
    )
    try:
        path = store.save(record)
    except PermissionError as exc:
        # A results dir created with a different umask/owner rejects the
        # atomic rename; that is this cell's failure, not the suite's.
        return CellOutcome(
            experiment_id=experiment_id,
            scale=scale,
            fingerprint=fingerprint,
            status="failed",
            elapsed_seconds=payload["elapsed"],
            error=f"results store write failed: {exc}",
        )
    return CellOutcome(
        experiment_id=experiment_id,
        scale=scale,
        fingerprint=fingerprint,
        status="computed",
        elapsed_seconds=payload["elapsed"],
        rows=record.num_rows(),
        path=str(path),
    )


def run_suite(
    experiment_ids: Sequence[str] | None = None,
    scale: str = "quick",
    jobs: int | None = None,
    store: ResultsStore | None = None,
    force: bool = False,
    batch_size: int | None = None,
    progress: ProgressCallback | None = None,
) -> SuiteSummary:
    """Run (or resume) the experiment suite and return the summary.

    Parameters
    ----------
    experiment_ids:
        Which experiments to run; ``None`` means every registered one.
    scale:
        Parameter scale of every cell: "tiny", "quick" or "paper".
    jobs:
        Worker processes; ``None`` picks ``min(cells, cpu_count)``.  1 runs
        the cells inline (no pool), which is what the tests use to exercise
        failure paths deterministically.
    store:
        The results store; ``None`` uses the default ``results/`` directory.
    force:
        Recompute every cell even when the store already has its record.
    batch_size:
        Overrides the routing batch size of every config that has one.
        Results are bit-identical for any value, so cache keys ignore it.
    progress:
        Called as ``progress(outcome, done, total)`` after every cell.
    """
    if scale not in SCALES:
        raise ConfigurationError(f"scale must be one of {SCALES}, got {scale!r}")
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    store = store if store is not None else ResultsStore()

    # An explicitly empty subset means "nothing to do", not "everything".
    if experiment_ids is None:
        identifiers = list(list_experiments())
    else:
        identifiers = list(experiment_ids)
    started = time.perf_counter()
    summary = SuiteSummary(scale=scale)
    total = len(identifiers)
    done = 0

    def _emit(outcome: CellOutcome) -> None:
        nonlocal done
        done += 1
        summary.outcomes.append(outcome)
        if progress is not None:
            progress(outcome, done, total)

    # Fingerprint every cell up front (configs are cheap to build) and
    # satisfy what we can from the store.
    pending: list[tuple[str, str]] = []  # (experiment_id, fingerprint)
    for identifier in identifiers:
        entry = get_experiment(identifier)
        descriptor = entry.descriptor
        fingerprint = config_fingerprint(
            descriptor.experiment_id, scale, descriptor.config_dict(descriptor.config(scale))
        )
        cached = None if force else store.load(descriptor.experiment_id, scale, fingerprint)
        if cached is not None:
            _emit(
                CellOutcome(
                    experiment_id=descriptor.experiment_id,
                    scale=scale,
                    fingerprint=fingerprint,
                    status="cached",
                    elapsed_seconds=cached.elapsed_seconds,
                    rows=cached.num_rows(),
                    path=str(store.path_for(descriptor.experiment_id, scale, fingerprint)),
                )
            )
        else:
            pending.append((descriptor.experiment_id, fingerprint))

    if pending:
        if jobs is None:
            jobs = min(len(pending), os.cpu_count() or 1)
        if jobs == 1:
            for experiment_id, fingerprint in pending:
                payload = _execute_cell(experiment_id, scale, batch_size)
                _emit(_record_outcome(store, scale, fingerprint, payload))
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(_execute_cell, experiment_id, scale, batch_size): (
                        experiment_id,
                        fingerprint,
                    )
                    for experiment_id, fingerprint in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        experiment_id, fingerprint = futures[future]
                        try:
                            payload = future.result()
                        except Exception as exc:
                            # A worker that died hard (OOM kill, segfault)
                            # surfaces as BrokenProcessPool here; keep it
                            # from sinking the rest of the suite.
                            payload = {
                                "experiment_id": experiment_id,
                                "error": f"{type(exc).__name__}: {exc}",
                            }
                        _emit(_record_outcome(store, scale, fingerprint, payload))

    summary.elapsed_seconds = time.perf_counter() - started
    return summary
