"""Content-addressed store for suite results.

Each record holds the full :class:`~repro.experiments.common.ExperimentResult`
of one (experiment, scale, config) cell, addressed by a SHA-256 fingerprint
of the canonical config JSON.  Identical configurations therefore map to the
same record: re-running a cell is a cache hit, and an interrupted suite run
resumes from whatever records already landed on disk.

Layout on disk (human-browsable by design)::

    results/
      fig1/
        tiny-5a41f2c09cd81e77.json
        paper-91bd0a63f02c55aa.json
      fig13/
        ...

The file name carries a truncated fingerprint for readability; the full
fingerprint is stored (and verified) inside the record.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.descriptor import NON_SEMANTIC_FIELDS

#: Bump when the record schema changes incompatibly; readers skip records
#: with a different version instead of failing.
RECORD_VERSION = 1

#: Default store location, relative to the working directory.
DEFAULT_ROOT = "results"

#: File names the store owns: ``<scale>-<fingerprint[:16]>.json``.  Both
#: :meth:`ResultsStore.iter_records` and :meth:`ResultsStore.clear` are
#: scoped to this pattern so foreign JSON files under the root (a user
#: pointing ``--results-dir`` at a populated directory) are never touched.
_RECORD_NAME = re.compile(r"[a-z]+-[0-9a-f]{16}\.json\Z")


def config_fingerprint(
    experiment_id: str,
    scale: str,
    config: Mapping[str, Any],
    exclude: frozenset[str] = NON_SEMANTIC_FIELDS,
) -> str:
    """SHA-256 fingerprint of one (experiment, scale, config) cell.

    The hash covers the canonical (sorted-keys, compact) JSON of the
    identifying triple.  Fields in ``exclude`` — by default the routing
    ``batch_size``, which is bit-identical for every value — are dropped
    first, so purely-performance knobs do not invalidate cached results.
    """
    semantic = {key: value for key, value in config.items() if key not in exclude}
    canonical = json.dumps(
        {"experiment_id": experiment_id, "scale": scale, "config": semantic},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class ResultRecord:
    """One persisted suite cell: config, result payload and provenance."""

    experiment_id: str
    scale: str
    fingerprint: str
    config: dict[str, Any]
    result: dict[str, Any]
    elapsed_seconds: float
    created_at: str = ""
    record_version: int = RECORD_VERSION
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.created_at:
            self.created_at = datetime.now(timezone.utc).isoformat(timespec="seconds")

    def num_rows(self) -> int:
        return len(self.result.get("rows", []))

    def to_json(self) -> str:
        return json.dumps(
            {
                "record_version": self.record_version,
                "experiment_id": self.experiment_id,
                "scale": self.scale,
                "fingerprint": self.fingerprint,
                "created_at": self.created_at,
                "elapsed_seconds": self.elapsed_seconds,
                "config": self.config,
                "result": self.result,
                "extra": self.extra,
            },
            indent=2,
            sort_keys=False,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ResultRecord":
        document = json.loads(payload)
        return cls(
            experiment_id=document["experiment_id"],
            scale=document["scale"],
            fingerprint=document["fingerprint"],
            config=document.get("config", {}),
            result=document.get("result", {}),
            elapsed_seconds=float(document.get("elapsed_seconds", 0.0)),
            created_at=document.get("created_at", ""),
            record_version=int(document.get("record_version", 0)),
            extra=document.get("extra", {}),
        )


class ResultsStore:
    """Filesystem-backed, content-addressed store of suite records."""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    def path_for(self, experiment_id: str, scale: str, fingerprint: str) -> Path:
        """Where the record of one cell lives (existing or not)."""
        return self.root / experiment_id / f"{scale}-{fingerprint[:16]}.json"

    def load(self, experiment_id: str, scale: str, fingerprint: str) -> ResultRecord | None:
        """The stored record of a cell, or ``None`` on a cache miss.

        Unreadable or fingerprint-mismatched files (hand-edited, truncated
        by a crash, or written by an incompatible version) count as misses
        so the orchestrator recomputes instead of failing.
        """
        path = self.path_for(experiment_id, scale, fingerprint)
        record = self._read(path)
        if record is None or record.fingerprint != fingerprint:
            return None
        return record

    def save(self, record: ResultRecord) -> Path:
        """Persist a record atomically (write-to-temp + rename).

        Raises whatever the filesystem raises (``PermissionError`` on a
        results dir created with a restrictive umask, ``OSError`` on a full
        disk ...) after cleaning up the temporary file; the orchestrator
        turns that into a per-cell failure instead of sinking the whole
        suite run.
        """
        path = self.path_for(record.experiment_id, record.scale, record.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        temporary.write_text(record.to_json(), encoding="utf-8")
        try:
            os.replace(temporary, path)
        except OSError:
            try:
                temporary.unlink()
            except OSError:
                pass  # the temp file is unreachable too; nothing to clean
            raise
        return path

    def iter_records(self) -> Iterator[ResultRecord]:
        """Every readable record in the store, sorted by path."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if not _RECORD_NAME.fullmatch(path.name):
                continue
            record = self._read(path)
            if record is not None:
                yield record

    def clear(self, experiment_ids: Sequence[str] | None = None) -> int:
        """Delete records (all, or only the given experiments); return count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        wanted = None if experiment_ids is None else {e.lower() for e in experiment_ids}
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir():
                continue
            if wanted is not None and directory.name.lower() not in wanted:
                continue
            for path in directory.glob("*.json"):
                if not _RECORD_NAME.fullmatch(path.name):
                    continue  # not a suite record; never delete foreign files
                path.unlink()
                removed += 1
            try:
                directory.rmdir()
            except OSError:
                pass  # non-record files remain; leave the directory
        return removed

    def _read(self, path: Path) -> ResultRecord | None:
        try:
            record = ResultRecord.from_json(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError):
            return None
        if record.record_version != RECORD_VERSION:
            return None
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultsStore(root={str(self.root)!r})"


def open_store(root: str | os.PathLike[str] | None) -> ResultsStore:
    """Build a store for ``root`` (``None`` → the default ``results/``)."""
    if root is not None and Path(root).is_file():
        raise ConfigurationError(f"results dir {root!r} is a file, not a directory")
    return ResultsStore(root if root is not None else DEFAULT_ROOT)
