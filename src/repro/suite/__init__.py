"""Parallel experiment-suite orchestrator with a content-addressed store.

The subsystem that turns "reproduce the paper" into one resumable command:

* :mod:`repro.suite.store` — content-addressed results store: each
  (experiment, scale, config) cell is fingerprinted (SHA-256 over the
  canonical config JSON) and its :class:`~repro.experiments.common.ExperimentResult`
  persisted as a JSON record under ``results/``.  Re-running a cell whose
  fingerprint is already stored is a cache hit, so interrupted suites
  resume where they stopped.
* :mod:`repro.suite.orchestrator` — shards the independent cells across a
  ``multiprocessing`` pool; every cell routes its streams through the
  batched engine (``SimulationConfig.batch_size``).
* :mod:`repro.suite.report` — summary tables and ASCII charts over the
  store, plus CSV/JSON export via :mod:`repro.reporting`.

CLI: ``python -m repro.cli suite run|report|clean``.
"""

from repro.suite.orchestrator import CellOutcome, SuiteSummary, run_suite
from repro.suite.report import render_report, report_rows
from repro.suite.store import ResultRecord, ResultsStore, config_fingerprint

__all__ = [
    "CellOutcome",
    "ResultRecord",
    "ResultsStore",
    "SuiteSummary",
    "config_fingerprint",
    "render_report",
    "report_rows",
    "run_suite",
]
