"""Reports over the suite results store.

Turns the JSON records written by the orchestrator into terminal artifacts:
a per-record summary table, a runtime bar chart, and — with ``charts=True``
— the per-experiment ASCII figure declared by each descriptor's
:class:`~repro.experiments.descriptor.OutputSpec`.
"""

from __future__ import annotations

import os
from typing import Any

from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.registry import get_experiment
from repro.reporting.ascii_chart import ascii_bar_chart
from repro.suite.store import ResultsStore, config_fingerprint


def _artifact_for(experiment_id: str) -> str:
    try:
        return get_experiment(experiment_id).descriptor.artifact
    except ConfigurationError:
        return "?"  # stale record of an unregistered experiment


def _is_current(record) -> str:
    """"yes" when the record matches today's config for its cell.

    A "no" marks a stale record: the experiment's preset changed (or the
    experiment was unregistered) since the record was computed, so the next
    ``suite run`` will compute a fresh cell and leave this one behind.
    """
    try:
        descriptor = get_experiment(record.experiment_id).descriptor
        expected = config_fingerprint(
            record.experiment_id,
            record.scale,
            descriptor.config_dict(descriptor.config(record.scale)),
        )
    except ConfigurationError:
        return "no"
    return "yes" if expected == record.fingerprint else "no"


def _records(store: ResultsStore, scale: str | None) -> list:
    return [
        record
        for record in store.iter_records()
        if scale is None or record.scale == scale
    ]


def _summary_rows(records) -> list[dict[str, Any]]:
    return [
        {
            "experiment": record.experiment_id,
            "artifact": _artifact_for(record.experiment_id),
            "scale": record.scale,
            "rows": record.num_rows(),
            "seconds": round(record.elapsed_seconds, 3),
            "current": _is_current(record),
            "created_at": record.created_at,
            "fingerprint": record.fingerprint[:16],
        }
        for record in records
    ]


def report_rows(store: ResultsStore, scale: str | None = None) -> list[dict[str, Any]]:
    """One summary row per stored record (optionally filtered by scale)."""
    return _summary_rows(_records(store, scale))


def render_report(
    store: ResultsStore,
    scale: str | None = None,
    charts: bool = False,
) -> str:
    """The ``suite report`` text: summary table, runtimes, optional figures."""
    records = _records(store, scale)
    if not records:
        where = f" at scale {scale!r}" if scale else ""
        return f"no records{where} in {store.root}/ — run `suite run` first"

    rows = _summary_rows(records)
    sections = [format_table(rows)]

    # One bar per record; disambiguate by fingerprint when the store holds
    # several records for the same (experiment, scale) — e.g. after a preset
    # changed — so the chart never silently drops a row of the table.
    cells = [f"{row['experiment']}/{row['scale']}" for row in rows]
    runtimes = {
        cell if cells.count(cell) == 1 else f"{cell}@{row['fingerprint'][:6]}":
            max(float(row["seconds"]), 1e-3)
        for cell, row in zip(cells, rows)
    }
    sections.append("compute seconds per record (cached runs pay none of this):")
    sections.append(ascii_bar_chart(runtimes, unit="s"))

    if charts:
        for record in records:
            try:
                spec = get_experiment(record.experiment_id).descriptor.output
            except ConfigurationError:
                continue
            chart = spec.render(ExperimentResult.from_dict(record.result))
            if chart:
                sections.append(
                    f"-- {record.experiment_id} ({_artifact_for(record.experiment_id)}) --"
                )
                sections.append(chart)

    return "\n\n".join(sections)


def export_report(
    store: ResultsStore,
    path: str | os.PathLike[str],
    scale: str | None = None,
) -> str:
    """Write the summary rows to ``path`` (.csv or .json); return the path."""
    from repro.reporting.export import write_result

    result = ExperimentResult(
        experiment_id="suite-report",
        title="Suite results store summary",
        parameters={"store": str(store.root), "scale": scale or "all"},
        rows=report_rows(store, scale=scale),
    )
    return write_result(result, path)
