"""Worker queue model for the cluster simulation.

Each worker is a single server with a FIFO queue and deterministic service
time.  The engine only needs to know *when the worker will finish* the
message being enqueued, so the queue is modelled by its busy-until timestamp
instead of an explicit list of waiting messages — an exact equivalence for
FIFO single-server queues with deterministic service times, and much faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(slots=True)
class WorkerQueue:
    """State of one worker's input queue.

    Attributes
    ----------
    service_time_ms:
        Deterministic per-message processing time.
    busy_until:
        Simulated time at which the worker becomes idle given everything
        enqueued so far.
    completed:
        Number of messages fully processed.
    busy_time:
        Total time spent servicing messages (for utilisation reporting).
    """

    service_time_ms: float
    busy_until: float = 0.0
    completed: int = 0
    busy_time: float = 0.0

    def __post_init__(self) -> None:
        if self.service_time_ms <= 0.0:
            raise ConfigurationError(
                f"service_time_ms must be positive, got {self.service_time_ms}"
            )

    def enqueue(self, arrival_time: float) -> float:
        """Enqueue a message arriving at ``arrival_time``.

        Returns the completion time of that message.  Queueing delay is
        ``max(0, busy_until - arrival_time)``.
        """
        start = max(arrival_time, self.busy_until)
        completion = start + self.service_time_ms
        self.busy_until = completion
        self.completed += 1
        self.busy_time += self.service_time_ms
        return completion

    def queue_delay(self, arrival_time: float) -> float:
        """Waiting time a message arriving now would experience."""
        return max(0.0, self.busy_until - arrival_time)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the worker spent busy."""
        if horizon <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
