"""Worker queue model for the cluster simulation.

Each worker is a single server with a FIFO queue and deterministic service
time.  The engine only needs to know *when the worker will finish* the
message being enqueued, so the queue is modelled by its busy-until timestamp
instead of an explicit list of waiting messages — an exact equivalence for
FIFO single-server queues with deterministic service times, and much faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(slots=True)
class WorkerQueue:
    """State of one worker's input queue.

    Attributes
    ----------
    service_time_ms:
        Deterministic per-message processing time.
    busy_until:
        Simulated time at which the worker becomes idle given everything
        enqueued so far.
    completed:
        Number of messages fully processed.
    busy_time:
        Total time spent servicing messages (for utilisation reporting).
    started_at:
        Simulated time this worker came online (0 for the initial workers,
        the join time for workers added by a mid-run rescale).
    retired_at:
        Simulated time this worker went offline (leave/fail), or ``None``
        while it is still part of the cluster.
    """

    service_time_ms: float
    busy_until: float = 0.0
    completed: int = 0
    busy_time: float = 0.0
    started_at: float = 0.0
    retired_at: float | None = None

    def __post_init__(self) -> None:
        if self.service_time_ms <= 0.0:
            raise ConfigurationError(
                f"service_time_ms must be positive, got {self.service_time_ms}"
            )

    def enqueue(self, arrival_time: float) -> float:
        """Enqueue a message arriving at ``arrival_time``.

        Returns the completion time of that message.  Queueing delay is
        ``max(0, busy_until - arrival_time)``.
        """
        start = max(arrival_time, self.busy_until)
        completion = start + self.service_time_ms
        self.busy_until = completion
        self.completed += 1
        self.busy_time += self.service_time_ms
        return completion

    def queue_delay(self, arrival_time: float) -> float:
        """Waiting time a message arriving now would experience."""
        return max(0.0, self.busy_until - arrival_time)

    def utilization(self, horizon: float) -> float:
        """Busy fraction over this worker's own active window.

        The window runs from ``started_at`` to ``retired_at`` (retired
        workers) or to ``horizon`` — the run duration — for workers still
        online.  Dividing by the worker's own window rather than the full
        run is what makes the number meaningful across rescales: a worker
        that joined halfway through and stayed saturated reports ~1.0, not
        ~0.5.
        """
        end = self.retired_at if self.retired_at is not None else horizon
        window = end - self.started_at
        if window <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / window)
