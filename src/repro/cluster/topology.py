"""Topology and timing parameters of the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.elasticity.events import RescalePlan, as_plan
from repro.exceptions import ConfigurationError

#: The paper's cluster experiment parameters (Section V-B, Q4).
PAPER_NUM_SOURCES = 48
PAPER_NUM_WORKERS = 80
PAPER_SERVICE_TIME_MS = 1.0

#: Default per-message emission overhead at the sources.  12 ms per message
#: caps the aggregate input rate at 48 / 0.012 = 4000 messages/s, which puts
#: the simulated cluster at the same operating point as the paper's Storm
#: deployment: balanced schemes are input-limited around a few thousand
#: events/s while skew-sensitive schemes (KG, PKG at high skew) hit the
#: 1000 msg/s capacity of individual hot workers first.
DEFAULT_SOURCE_OVERHEAD_MS = 12.0


@dataclass(slots=True)
class ClusterTopology:
    """Parameters of the source → worker topology.

    Attributes
    ----------
    scheme:
        Grouping scheme applied on the partitioned edge.
    num_sources, num_workers:
        Operator parallelism (paper: 48 sources, 80 workers).
    service_time_ms:
        Fixed per-message processing time at the workers (paper: 1 ms).
    source_overhead_ms:
        Time a source needs to emit one message (serialisation, routing);
        models the spout-side cost and bounds the maximum input rate.
    max_pending_per_source:
        In-flight window per source (Storm's ``max.spout.pending``): the
        number of unacked messages a source may have outstanding.  Larger
        windows increase throughput until workers saturate, then only add
        queueing latency.
    seed:
        Base seed for the partitioners.
    scheme_options:
        Extra keyword arguments forwarded to the partitioner constructor.
    batch_size:
        Messages a source emits per scheduling event (micro-batching, like
        Storm's batched spouts).  Each emission event pulls up to this many
        keys (bounded by the credit window), routes them in one
        ``route_batch`` call and still pays ``source_overhead_ms`` per
        message.  1 (the default) reproduces strictly per-message emission;
        larger values trade event-queue overhead and intra-batch
        interleaving for routing throughput.
    rescale_plan:
        Optional elasticity schedule (a
        :class:`~repro.elasticity.events.RescalePlan` or a spec string like
        ``"join@5000,fail@15000"``); offsets count *emitted* messages.  A
        join adds a fresh worker queue, a leave drains the departing
        worker's queue before retiring it, a fail drops the tuples still
        queued on the dead worker (they are replayed by their sources).
    rescale_policy, migration_window:
        Execution policy for spec-string plans, as in
        :class:`~repro.simulation.config.SimulationConfig`.
    """

    scheme: str
    num_sources: int = PAPER_NUM_SOURCES
    num_workers: int = PAPER_NUM_WORKERS
    service_time_ms: float = PAPER_SERVICE_TIME_MS
    source_overhead_ms: float = DEFAULT_SOURCE_OVERHEAD_MS
    max_pending_per_source: int = 100
    seed: int = 0
    scheme_options: dict[str, Any] = field(default_factory=dict)
    batch_size: int = 1
    rescale_plan: RescalePlan | str | None = None
    rescale_policy: str = "rehash"
    migration_window: int = 1000

    def __post_init__(self) -> None:
        if self.num_sources < 1:
            raise ConfigurationError(
                f"num_sources must be >= 1, got {self.num_sources}"
            )
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.service_time_ms <= 0.0:
            raise ConfigurationError(
                f"service_time_ms must be positive, got {self.service_time_ms}"
            )
        if self.source_overhead_ms < 0.0:
            raise ConfigurationError(
                f"source_overhead_ms must be >= 0, got {self.source_overhead_ms}"
            )
        if self.max_pending_per_source < 1:
            raise ConfigurationError(
                "max_pending_per_source must be >= 1, got "
                f"{self.max_pending_per_source}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        self.rescale_plan = as_plan(
            self.rescale_plan,
            policy=self.rescale_policy,
            migration_window=self.migration_window,
        )
        if self.rescale_plan is not None:
            self.rescale_plan.validate_for(self.num_workers)

    @property
    def ideal_throughput_per_second(self) -> float:
        """Aggregate worker capacity in messages per second.

        With perfectly balanced load the cluster completes at most
        ``n / service_time`` messages per second (ignoring source limits).
        """
        return self.num_workers * (1000.0 / self.service_time_ms)

    @property
    def source_limited_throughput_per_second(self) -> float:
        """Maximum input rate the sources can generate."""
        if self.source_overhead_ms == 0.0:
            return float("inf")
        return self.num_sources * (1000.0 / self.source_overhead_ms)
