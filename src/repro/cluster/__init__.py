"""Discrete-event simulation of a Storm-like cluster deployment.

The paper's Q4 experiments (Figures 13 and 14) run a two-operator topology on
a real Apache Storm cluster: 48 sources generate a Zipf stream and 80 workers
aggregate it, with an artificial 1 ms processing delay per message.  Since a
physical cluster is not available here, this subpackage models that setup as
a discrete-event queueing simulation:

* every worker is a FIFO queue with a deterministic service time (1 ms);
* every source emits a new message as soon as it has spare *in-flight window*
  (the analogue of Storm's ``max.spout.pending`` flow control), routes it
  with its grouping scheme, and the message queues at the chosen worker;
* throughput is the number of completed messages per simulated second;
* latency is the time from emission to service completion, dominated by the
  queueing delay at the chosen worker — exactly the mechanism the paper
  credits for the KG < PKG < D-C ≈ W-C ≈ SG ordering.

Absolute numbers depend on the service time and window size rather than on
real hardware, but the *relative* performance of the grouping schemes — who
saturates first and by how much — is reproduced.
"""

from repro.cluster.engine import ClusterEngine
from repro.cluster.latency import LatencyStats
from repro.cluster.results import ClusterResult
from repro.cluster.runner import run_cluster_experiment
from repro.cluster.topology import ClusterTopology

__all__ = [
    "ClusterEngine",
    "ClusterResult",
    "ClusterTopology",
    "LatencyStats",
    "run_cluster_experiment",
]
