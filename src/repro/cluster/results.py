"""Result object of a cluster-simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.latency import LatencyStats


@dataclass(slots=True)
class ClusterResult:
    """Throughput and latency of one grouping scheme on the simulated cluster.

    Attributes
    ----------
    scheme:
        Canonical grouping-scheme name.
    num_messages:
        Messages fully processed during the run.
    duration_ms:
        Simulated time elapsed.
    throughput_per_second:
        ``num_messages / duration`` in messages per second — the Figure 13
        metric.
    latency:
        Aggregated latency statistics — the Figure 14 metrics.
    worker_utilization:
        Per-worker busy fraction, useful to see which scheme saturates a
        single worker (KG) versus spreading load (SG, D-C, W-C).  One entry
        per worker that *ever* served, in spawn order (initial workers
        first, then mid-run joiners), each taken over that worker's own
        active window: from its start (0, or its join time) to its
        retirement (leave/fail, including the drain/replay tail) or the end
        of the run.  A saturated worker therefore reports ~1.0 regardless
        of when it joined or left.
    imbalance:
        Final load imbalance ``I(m)`` over message counts, for
        cross-checking against the pure simulation results.
    rescale_events:
        Number of worker join/leave/fail events replayed during the run
        (0 in the paper's fixed-worker setting).
    messages_drained:
        Tuples still queued on a gracefully leaving worker at its departure
        (they complete during the drain and are handed off).
    messages_lost:
        Tuples queued on a failed worker at failure time.  Modelling note:
        these tuples are *not* subtracted from ``num_messages`` — the
        simulator keeps their completions on the timeline as a stand-in for
        the replayed copies (a replay occupies the same capacity the
        original would have), so this field reports how many tuples needed
        replay, while throughput/latency include that replay work.
    """

    scheme: str
    num_messages: int
    duration_ms: float
    throughput_per_second: float
    latency: LatencyStats
    worker_utilization: list[float] = field(default_factory=list)
    imbalance: float = 0.0
    rescale_events: int = 0
    messages_drained: int = 0
    messages_lost: int = 0

    def summary(self) -> dict[str, object]:
        row: dict[str, object] = {
            "scheme": self.scheme,
            "messages": self.num_messages,
            "duration_ms": round(self.duration_ms, 1),
            "throughput_per_s": round(self.throughput_per_second, 1),
            "imbalance": self.imbalance,
        }
        row.update(self.latency.as_row())
        if self.rescale_events:
            row["rescale_events"] = self.rescale_events
            row["messages_drained"] = self.messages_drained
            row["messages_lost"] = self.messages_lost
        return row
