"""Result object of a cluster-simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.latency import LatencyStats


@dataclass(slots=True)
class ClusterResult:
    """Throughput and latency of one grouping scheme on the simulated cluster.

    Attributes
    ----------
    scheme:
        Canonical grouping-scheme name.
    num_messages:
        Messages fully processed during the run.
    duration_ms:
        Simulated time elapsed.
    throughput_per_second:
        ``num_messages / duration`` in messages per second — the Figure 13
        metric.
    latency:
        Aggregated latency statistics — the Figure 14 metrics.
    worker_utilization:
        Per-worker busy fraction, useful to see which scheme saturates a
        single worker (KG) versus spreading load (SG, D-C, W-C).
    imbalance:
        Final load imbalance ``I(m)`` over message counts, for
        cross-checking against the pure simulation results.
    """

    scheme: str
    num_messages: int
    duration_ms: float
    throughput_per_second: float
    latency: LatencyStats
    worker_utilization: list[float] = field(default_factory=list)
    imbalance: float = 0.0

    def summary(self) -> dict[str, object]:
        row: dict[str, object] = {
            "scheme": self.scheme,
            "messages": self.num_messages,
            "duration_ms": round(self.duration_ms, 1),
            "throughput_per_s": round(self.throughput_per_second, 1),
            "imbalance": self.imbalance,
        }
        row.update(self.latency.as_row())
        return row
