"""Discrete-event engine for the Storm-like cluster simulation.

The engine models the two-operator topology of the paper's Q4 experiment:

* Sources pull keys from the workload, one at a time, paying
  ``source_overhead_ms`` per emission.  Each source may have at most
  ``max_pending_per_source`` unacknowledged messages in flight (credit-based
  flow control, like Storm's ``max.spout.pending``).
* A message is routed by the source's partitioner to one worker, where it
  queues behind every earlier message of that worker and is serviced for
  ``service_time_ms``.
* When the worker finishes a message, the originating source is credited and
  may emit again.

Throughput is completed messages per simulated second; latency is completion
time minus emission time.  Skewed groupings overload a few workers whose
queues (bounded by the total credit of all sources) dominate both metrics —
the same mechanism as in the real deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Iterator

from repro.cluster.events import EventQueue, EventType
from repro.cluster.latency import LatencyCollector
from repro.cluster.queues import WorkerQueue
from repro.cluster.results import ClusterResult
from repro.cluster.topology import ClusterTopology
from repro.elasticity.events import RescaleEvent
from repro.elasticity.policies import RescalePolicy, get_policy
from repro.exceptions import SimulationError
from repro.partitioning.base import Partitioner
from repro.partitioning.registry import canonical_name, create_partitioner
from repro.simulation.metrics import LoadTracker
from repro.types import Key


@dataclass(slots=True)
class _SourceState:
    """Book-keeping for one source."""

    partitioner: Partitioner
    pending: int = 0
    #: Earliest time the source can emit its next message (emission is
    #: sequential: one message per ``source_overhead_ms``).
    next_free: float = 0.0
    #: Whether a SOURCE_EMIT event for this source is already scheduled.
    emit_scheduled: bool = False
    emitted: int = 0


class ClusterEngine:
    """Runs one grouping scheme on the simulated cluster.

    Examples
    --------
    >>> from repro.cluster.topology import ClusterTopology
    >>> topology = ClusterTopology(scheme="SG", num_sources=2, num_workers=4,
    ...                            source_overhead_ms=1.0)
    >>> engine = ClusterEngine(topology)
    >>> result = engine.run(["a", "b", "c", "d"] * 50)
    >>> result.num_messages
    200
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self._topology = topology
        self._scheme = canonical_name(topology.scheme)
        self._sources = [
            _SourceState(
                partitioner=create_partitioner(
                    self._scheme,
                    num_workers=topology.num_workers,
                    seed=(
                        topology.seed + index
                        if self._scheme == "SG"
                        else topology.seed
                    ),
                    **topology.scheme_options,
                )
            )
            for index in range(topology.num_sources)
        ]
        self._workers = [
            WorkerQueue(service_time_ms=topology.service_time_ms)
            for _ in range(topology.num_workers)
        ]
        # Every queue that ever served, in spawn order: the initial workers
        # followed by mid-run joiners.  Retired queues stay here (with their
        # retired_at stamped) so the utilization report covers the whole
        # fleet, not just the survivors.
        self._all_workers = list(self._workers)
        self._events = EventQueue()
        self._latency = LatencyCollector(topology.num_workers)
        self._load = LoadTracker(topology.num_workers)
        # Elasticity: the same plans the routing simulation replays, with
        # queue drain (leave) / in-flight loss (fail) on the worker side.
        plan = topology.rescale_plan
        self._pending_rescales: list[RescaleEvent] = list(plan.events) if plan else []
        self._rescale_policy: RescalePolicy | None = (
            get_policy(plan.policy) if plan else None
        )
        self._rescales_applied = 0
        self._messages_drained = 0
        self._messages_lost = 0

    @property
    def topology(self) -> ClusterTopology:
        return self._topology

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, keys: Iterable[Key]) -> ClusterResult:
        """Process the whole workload and return throughput/latency results."""
        key_iterator: Iterator[Key] = iter(keys)
        exhausted = False
        completed = 0
        emitted = 0
        last_completion = 0.0

        # Kick off: every source tries to emit at time 0.
        for index, source in enumerate(self._sources):
            self._events.push(0.0, EventType.SOURCE_EMIT, index)
            source.emit_scheduled = True

        batch_size = self._topology.batch_size
        while self._events:
            event = self._events.pop()
            if event.event_type is EventType.SOURCE_EMIT:
                source_index: int = event.payload
                source = self._sources[source_index]
                source.emit_scheduled = False
                if exhausted:
                    continue
                credit = self._topology.max_pending_per_source - source.pending
                if credit <= 0:
                    # Out of credit; the ack handler will reschedule.
                    continue
                # Apply any rescale event due at this emission offset, then
                # cap the micro-batch so the next event falls exactly on an
                # emission boundary (offsets count emitted messages).
                rescales = self._pending_rescales
                while rescales and rescales[0].offset <= emitted:
                    self._apply_rescale(rescales.pop(0), event.time)
                take = min(batch_size, credit)
                if rescales:
                    take = min(take, rescales[0].offset - emitted)
                # Micro-batch: pull up to min(batch_size, credit) keys so one
                # scheduling event amortises one route_batch call.  With
                # batch_size=1 this is exactly the per-message behaviour.
                batch_keys = list(islice(key_iterator, take))
                if not batch_keys:
                    exhausted = True
                    continue
                if len(batch_keys) < take:
                    exhausted = True
                emitted += len(batch_keys)
                completion = self._emit(source_index, source, batch_keys, event.time)
                last_completion = max(last_completion, completion)
            elif event.event_type is EventType.WORKER_DONE:
                source_index = event.payload
                source = self._sources[source_index]
                source.pending -= 1
                completed += 1
                if not exhausted and not source.emit_scheduled:
                    self._schedule_emit(source, event.time, source_index=source_index)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event type {event.event_type}")

        if emitted == 0:
            raise SimulationError("cannot run the cluster on an empty workload")

        duration = max(last_completion, 1e-9)
        throughput = completed / (duration / 1000.0)
        return ClusterResult(
            scheme=self._scheme,
            num_messages=completed,
            duration_ms=duration,
            throughput_per_second=throughput,
            latency=self._latency.stats(),
            worker_utilization=[
                worker.utilization(duration) for worker in self._all_workers
            ],
            imbalance=self._load.imbalance(),
            rescale_events=self._rescales_applied,
            messages_drained=self._messages_drained,
            messages_lost=self._messages_lost,
        )

    # ------------------------------------------------------------------ #
    # elasticity
    # ------------------------------------------------------------------ #
    def _apply_rescale(self, event: RescaleEvent, now: float) -> None:
        """Replay one join/leave/fail on the running cluster.

        Every source's partitioner rescales under the plan's policy; the
        worker side follows: a join adds an idle queue, a leave retires the
        highest-id worker after its queue drains (tuples already enqueued
        complete and are handed off — counted as drained).  A fail counts
        the dead worker's backlog as ``messages_lost`` but keeps those
        completions on the timeline: the replayed copies would occupy the
        same capacity the originals did, so the schedule stands in for the
        replay and the completed/throughput/latency totals include that
        replay work (no event-heap rewriting, sources re-credit on the
        original completion times).
        """
        policy = self._rescale_policy
        assert policy is not None  # only called when a plan exists
        old_num_workers = len(self._workers)
        new_num_workers = event.new_num_workers(old_num_workers)
        if new_num_workers < 1:  # validated at topology time; defensive
            raise SimulationError(
                f"rescale event {event.spec} would drop below 1 worker"
            )
        for source in self._sources:
            policy.apply(source.partitioner, new_num_workers)
        if new_num_workers > old_num_workers:
            joiner = WorkerQueue(
                service_time_ms=self._topology.service_time_ms, started_at=now
            )
            self._workers.append(joiner)
            self._all_workers.append(joiner)
        else:
            queue = self._workers.pop()
            # The active window closes when the backlog does: a leaver keeps
            # servicing until drained, and a failed worker's backlog stays on
            # the timeline as the replay stand-in (see docstring above), so
            # both windows extend to busy_until.
            queue.retired_at = max(now, queue.busy_until)
            backlog = 0
            if queue.busy_until > now:
                backlog = int(
                    -(-(queue.busy_until - now) // queue.service_time_ms)
                )
            if event.loses_state:
                self._messages_lost += backlog
            else:
                self._messages_drained += backlog
        self._load.rescale(new_num_workers)
        self._latency.rescale(new_num_workers)
        self._rescales_applied += 1

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _emit(
        self, source_index: int, source: _SourceState, keys: list[Key], now: float
    ) -> float:
        """Route a micro-batch from ``source`` starting at ``now``.

        Routing happens in one ``route_batch`` call; message ``i`` of the
        batch is emitted at ``now + i * source_overhead_ms`` (emission stays
        sequential and per-message priced).  Returns the latest completion
        time of the batch.
        """
        topology = self._topology
        overhead = topology.source_overhead_ms
        workers = source.partitioner.route_batch(keys)
        record_load = self._load.record
        queues = self._workers
        record_latency = self._latency.record
        push_event = self._events.push
        last_completion = 0.0
        emit_time = now
        for worker_id in workers:
            record_load(worker_id)
            completion = queues[worker_id].enqueue(emit_time)
            record_latency(worker_id, completion - emit_time)
            push_event(completion, EventType.WORKER_DONE, source_index)
            if completion > last_completion:
                last_completion = completion
            emit_time += overhead
        source.pending += len(workers)
        source.emitted += len(workers)
        source.next_free = now + overhead * len(workers)
        # Schedule the source's next emission if it still has credit.
        if source.pending < topology.max_pending_per_source:
            self._schedule_emit(source, source.next_free, source_index=source_index)
        return last_completion

    def _schedule_emit(
        self, source: _SourceState, now: float, source_index: int | None = None
    ) -> None:
        if source.emit_scheduled:
            return
        if source_index is None:
            source_index = self._sources.index(source)
        emit_time = max(now, source.next_free)
        self._events.push(emit_time, EventType.SOURCE_EMIT, source_index)
        source.emit_scheduled = True
