"""High-level helpers to run cluster experiments (Figures 13 and 14)."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.cluster.engine import ClusterEngine
from repro.cluster.results import ClusterResult
from repro.cluster.topology import ClusterTopology
from repro.types import Key
from repro.workloads.base import Workload


def run_cluster_experiment(
    workload: Workload | Iterable[Key],
    scheme: str,
    num_sources: int = 48,
    num_workers: int = 80,
    service_time_ms: float = 1.0,
    source_overhead_ms: float | None = None,
    max_pending_per_source: int = 100,
    seed: int = 0,
    scheme_options: dict[str, Any] | None = None,
) -> ClusterResult:
    """Run one grouping scheme on the simulated Storm-like cluster.

    Defaults reproduce the paper's Q4 setup (48 sources, 80 workers, 1 ms
    per-message processing delay).

    Examples
    --------
    >>> from repro.workloads import ZipfWorkload
    >>> workload = ZipfWorkload(exponent=2.0, num_keys=1000, num_messages=2000)
    >>> result = run_cluster_experiment(workload, "SG", num_sources=4,
    ...                                 num_workers=8)
    >>> result.throughput_per_second > 0
    True
    """
    kwargs: dict[str, Any] = {}
    if source_overhead_ms is not None:
        kwargs["source_overhead_ms"] = source_overhead_ms
    topology = ClusterTopology(
        scheme=scheme,
        num_sources=num_sources,
        num_workers=num_workers,
        service_time_ms=service_time_ms,
        max_pending_per_source=max_pending_per_source,
        seed=seed,
        scheme_options=scheme_options or {},
        **kwargs,
    )
    engine = ClusterEngine(topology)
    return engine.run(iter(workload))


def compare_schemes(
    workload_factory: Callable[[], Workload | Iterable[Key]],
    schemes: Sequence[str],
    **kwargs,
) -> list[ClusterResult]:
    """Run several schemes on fresh copies of the same workload.

    ``workload_factory`` is invoked once per scheme so each run consumes its
    own stream; keyword arguments are forwarded to
    :func:`run_cluster_experiment`.
    """
    return [
        run_cluster_experiment(workload_factory(), scheme, **kwargs)
        for scheme in schemes
    ]
