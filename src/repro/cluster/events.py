"""Event queue primitives for the discrete-event cluster simulation."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any

from repro.exceptions import SimulationError


class EventType(Enum):
    """Kinds of events the cluster engine processes."""

    #: A source is ready to emit its next message (has window credit).
    SOURCE_EMIT = auto()
    #: A worker finished servicing the message at the head of its queue.
    WORKER_DONE = auto()


@dataclass(order=True, slots=True)
class Event:
    """One scheduled event.

    Ordering is by time, then by insertion sequence so simultaneous events
    are processed in FIFO order (deterministic runs).
    """

    time: float
    sequence: int
    event_type: EventType = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A minimal deterministic priority queue of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, event_type: EventType, payload: Any = None) -> None:
        if time < 0.0:
            raise SimulationError(f"event time must be >= 0, got {time}")
        heapq.heappush(
            self._heap, Event(time, next(self._counter), event_type, payload)
        )

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("popping from an empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
