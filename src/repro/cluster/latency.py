"""Latency accounting for the cluster simulation.

Figure 14 of the paper reports, per grouping scheme, the *maximum of the
per-worker average latencies* together with the 50th, 95th and 99th
percentiles.  :class:`LatencyStats` collects per-worker latency samples and
computes those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError


class LatencyCollector:
    """Collects end-to-end latency samples, bucketed per worker."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self._samples: list[list[float]] = [[] for _ in range(num_workers)]
        # Sample buckets of workers retired by a rescale: their latencies
        # were real and stay in the aggregates, they just stop growing.
        self._retired: list[list[float]] = []
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def rescale(self, new_num_workers: int) -> None:
        """Resize the active worker set (ids ``0 .. n-1``).

        Growing adds empty buckets; shrinking retires the highest-id
        buckets, keeping their samples for the final statistics.
        """
        if new_num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {new_num_workers}"
            )
        while len(self._samples) < new_num_workers:
            self._samples.append([])
        while len(self._samples) > new_num_workers:
            self._retired.append(self._samples.pop())

    def record(self, worker: int, latency_ms: float) -> None:
        if not 0 <= worker < len(self._samples):
            raise SimulationError(
                f"worker {worker} outside [0, {len(self._samples)})"
            )
        if latency_ms < 0.0:
            raise SimulationError(f"latency must be >= 0, got {latency_ms}")
        self._samples[worker].append(latency_ms)
        self._count += 1

    def stats(self) -> "LatencyStats":
        """Aggregate the collected samples into the Figure 14 metrics."""
        buckets = self._samples + self._retired
        per_worker_avg = [
            float(np.mean(samples)) for samples in buckets if samples
        ]
        pooled = np.concatenate(
            [np.asarray(samples) for samples in buckets if samples]
        ) if any(buckets) else np.asarray([0.0])
        return LatencyStats(
            max_average=max(per_worker_avg) if per_worker_avg else 0.0,
            mean=float(pooled.mean()),
            p50=float(np.percentile(pooled, 50)),
            p95=float(np.percentile(pooled, 95)),
            p99=float(np.percentile(pooled, 99)),
            samples=self._count,
        )


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Aggregated latency metrics (all in milliseconds)."""

    #: Maximum over workers of the per-worker average latency ("max avg" in
    #: Figure 14 — the quantity dominated by the hottest worker's queue).
    max_average: float
    #: Mean latency over all messages.
    mean: float
    p50: float
    p95: float
    p99: float
    samples: int

    def as_row(self) -> dict[str, float | int]:
        return {
            "max_avg_ms": round(self.max_average, 3),
            "mean_ms": round(self.mean, 3),
            "p50_ms": round(self.p50, 3),
            "p95_ms": round(self.p95, 3),
            "p99_ms": round(self.p99, 3),
            "samples": self.samples,
        }
