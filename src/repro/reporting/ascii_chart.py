"""Quick ASCII charts for terminal-side inspection of experiment results.

Two chart shapes cover the paper's figures:

* :func:`ascii_series_chart` — one line per (x, y) series, with optional
  log-scaling of the y axis; good for imbalance-vs-skew or
  imbalance-vs-workers plots (Figures 1, 7, 10, 11).
* :func:`ascii_bar_chart` — labelled horizontal bars; good for per-scheme
  throughput/latency comparisons (Figures 13, 14).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError


def _scale(value: float, low: float, high: float, width: int, log: bool) -> int:
    if log:
        value, low, high = (math.log10(max(v, 1e-12)) for v in (value, low, high))
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return int(round(position * (width - 1)))


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars, scaled to the maximum value.

    Examples
    --------
    >>> print(ascii_bar_chart({"KG": 10.0, "SG": 40.0}, width=8))   # doctest: +NORMALIZE_WHITESPACE
    KG | ##        10
    SG | ######## 40
    """
    if not values:
        raise ConfigurationError("cannot chart an empty mapping")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    maximum = max(values.values())
    label_width = max(len(str(label)) for label in values)
    lines = []
    for label, value in values.items():
        if maximum > 0:
            bar = "#" * max(1, int(round(width * value / maximum)))
        else:
            bar = ""
        suffix = f"{value:g}{unit}"
        lines.append(f"{str(label).ljust(label_width)} | {bar.ljust(width)} {suffix}")
    return "\n".join(lines)


def ascii_series_chart(
    series: Mapping[str, Mapping[float, float]],
    height: int = 12,
    width: int = 60,
    log_y: bool = False,
) -> str:
    """Render one or more (x -> y) series on a shared ASCII canvas.

    Each series is drawn with a distinct marker; a legend is appended.
    Intended for quick terminal inspection, not publication-quality output.
    """
    if not series:
        raise ConfigurationError("cannot chart an empty collection of series")
    if height < 2 or width < 2:
        raise ConfigurationError("chart must be at least 2x2 characters")

    markers = "*o+x@%&$"
    all_points = [
        (x, y) for points in series.values() for x, y in points.items()
    ]
    if not all_points:
        raise ConfigurationError("series contain no points")
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if log_y:
        y_low = max(y_low, 1e-12)
        y_high = max(y_high, 1e-12)

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points.items():
            column = _scale(x, x_low, x_high, width, log=False)
            row = _scale(y, y_low, y_high, height, log=log_y)
            canvas[height - 1 - row][column] = marker

    lines = ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    y_label = "log(y)" if log_y else "y"
    lines.append(
        f"{y_label}: [{y_low:.3g}, {y_high:.3g}]   x: [{x_low:.3g}, {x_high:.3g}]"
    )
    legend = "   ".join(
        f"{markers[index % len(markers)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
