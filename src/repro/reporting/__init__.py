"""Reporting utilities: export experiment rows and render quick ASCII charts.

The experiment drivers return plain rows; this subpackage turns them into
artifacts a user can keep or eyeball without a plotting stack:

* :mod:`repro.reporting.export` — CSV / JSON export of experiment results;
* :mod:`repro.reporting.ascii_chart` — logarithmic or linear ASCII charts of
  one or more series, handy for comparing schemes in a terminal (the
  figures of the paper are log-scale imbalance plots, which render well as
  text).
"""

from repro.reporting.ascii_chart import ascii_bar_chart, ascii_series_chart
from repro.reporting.export import result_to_csv, result_to_json, write_result

__all__ = [
    "ascii_bar_chart",
    "ascii_series_chart",
    "result_to_csv",
    "result_to_json",
    "write_result",
]
