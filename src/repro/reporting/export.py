"""Export experiment results to CSV or JSON."""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any

from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentResult, jsonable as _jsonable


def result_to_csv(result: ExperimentResult) -> str:
    """Render the rows of an experiment as CSV text (header included)."""
    columns = result.column_names()
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def result_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Render an experiment result (rows + metadata) as a JSON document."""
    document: dict[str, Any] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "parameters": _jsonable(result.parameters),
        "rows": [_jsonable(row) for row in result.rows],
        "notes": list(result.notes),
    }
    return json.dumps(document, indent=indent)


def write_result(result: ExperimentResult, path: str | os.PathLike[str]) -> str:
    """Write a result to ``path``; the format follows the file extension.

    Supported extensions: ``.csv``, ``.json``.  Returns the absolute path of
    the written file.
    """
    path = os.fspath(path)
    extension = os.path.splitext(path)[1].lower()
    if extension == ".csv":
        payload = result_to_csv(result)
    elif extension == ".json":
        payload = result_to_json(result)
    else:
        raise ConfigurationError(
            f"unsupported export extension {extension!r}; use .csv or .json"
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return os.path.abspath(path)
