"""Adaptive partitioning: online scheme/parameter switching under drift.

The package threads three pieces together:

* :class:`~repro.adaptive.policy.SwitchPolicy` — hysteresis thresholds (from
  the paper's PKG bounds) deciding which rung of a scheme ladder the
  observed skew needs;
* :class:`~repro.adaptive.tuner.ParameterTuner` — online theta/d retuning
  from the live SpaceSaving summary via the existing solver accessors;
* :class:`~repro.adaptive.partitioner.AdaptivePartitioner` — the registered
  ``AD`` scheme wrapping a delegate partitioner and hot-swapping it at
  deterministic batch boundaries through the ``export_state`` /
  ``adopt_state`` contract.
"""

from repro.adaptive.partitioner import AdaptivePartitioner, SwitchRecord
from repro.adaptive.policy import DEFAULT_LADDER, DriftMetrics, SwitchPolicy
from repro.adaptive.tuner import ParameterTuner

__all__ = [
    "DEFAULT_LADDER",
    "AdaptivePartitioner",
    "DriftMetrics",
    "ParameterTuner",
    "SwitchPolicy",
    "SwitchRecord",
]
