"""Online theta/d retuning from the monitor sketch's live head summary.

The paper computes the head threshold ``theta`` and choice count ``d``
offline, from the full frequency distribution.  Online, the only view
available is the sender-local SpaceSaving summary; :class:`ParameterTuner`
turns that summary into construction parameters for the next delegate using
the *existing* solver accessors — ``head_counts`` / ``head_signature`` on
the sketch and :func:`~repro.analysis.choices.find_optimal_choices` for the
Proposition 4.1 constraints — so the adaptive partitioner's tuning is the
same analysis the static D-Choices scheme runs, just re-applied whenever
the observed distribution drifts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import theta_range
from repro.analysis.choices import (
    DEFAULT_EPSILON,
    ChoicesSolution,
    find_optimal_choices,
)


@dataclass(frozen=True, slots=True)
class ParameterTuner:
    """Derive theta and d proposals from a live frequency summary.

    Parameters
    ----------
    epsilon:
        Imbalance tolerance forwarded to the choices solver.
    theta_fraction:
        Where in ``(pkg-safe, p1]`` the proposed theta sits, as a fraction
        of the observed hottest frequency: ``theta = p1 * theta_fraction``,
        clamped into the admissible ``[1/(5n), 2/n]`` range.  Half the
        hottest frequency keeps the whole momentarily-hot cluster in the
        head without dragging the sketch capacity up for the tail.
    """

    epsilon: float = DEFAULT_EPSILON
    theta_fraction: float = 0.5

    def propose_theta(self, sketch, num_workers: int) -> float | None:
        """A head threshold matched to the observed skew, or None.

        None means "use the scheme's own default": the stream shows no key
        above the admissible range's lower edge, so there is nothing to
        anchor a tuned threshold to.
        """
        total = sketch.total
        if total <= 0:
            return None
        admissible = theta_range(num_workers)
        _, hottest = sketch.head_signature(admissible.lower)
        p1 = hottest / total
        if p1 <= admissible.lower:
            return None
        return admissible.clamp(p1 * self.theta_fraction)

    def propose_choices(
        self, sketch, theta: float, num_workers: int
    ) -> ChoicesSolution:
        """FINDOPTIMALCHOICES over the monitor's current head at ``theta``."""
        total = sketch.total
        head_counts = sorted(sketch.head_counts(theta), reverse=True)
        if not head_counts or total <= 0:
            return ChoicesSolution(
                num_choices=2, use_w_choices=False, head_cardinality=0
            )
        head = [count / total for count in head_counts]
        tail_mass = max(0.0, 1.0 - sum(head))
        return find_optimal_choices(head, tail_mass, num_workers, self.epsilon)


__all__ = ["ParameterTuner"]
