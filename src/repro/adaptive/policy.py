"""Hysteresis switching policy for the adaptive partitioner.

The paper fixes the grouping scheme and its head threshold offline; under
drifting traffic the right scheme changes mid-stream.  :class:`SwitchPolicy`
decides, from the sender-local view of the stream — the hottest relative
frequency ``p1`` and head cardinality out of the SpaceSaving monitor, plus
the observed load imbalance — which rung of a scheme ladder the stream
currently needs.  The thresholds come straight from the paper's analysis
(Section III-A): PKG balances while ``p1 <= 2/n`` and never needs help below
``1/(5n)``, so those two bounds are the enter/exit edges of the first rung.
Hysteresis (distinct enter and exit thresholds, plus a minimum dwell between
moves) keeps a stream that oscillates around a boundary from thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import pkg_safe_threshold
from repro.exceptions import ConfigurationError

#: The default escalation ladder, least to most replication-hungry.  Every
#: rung shares the two-choice tail (same hash family, same seed), so a
#: switch only ever moves *head* keys — tail keys keep their candidate pair.
DEFAULT_LADDER: tuple[str, ...] = ("PKG", "D-C", "W-C")


@dataclass(frozen=True, slots=True)
class DriftMetrics:
    """One checkpoint's sender-local view of the stream.

    Attributes
    ----------
    p1:
        Estimated relative frequency of the hottest key (monitor sketch).
    head_cardinality:
        Number of keys at or above the monitor's head threshold.
    imbalance:
        Relative load imbalance of this source's local load vector,
        ``(max - mean) / mean``.
    num_workers:
        Current downstream worker count ``n``.
    messages:
        Messages this source has routed so far.
    """

    p1: float
    head_cardinality: int
    imbalance: float
    num_workers: int
    messages: int


@dataclass(frozen=True, slots=True)
class SwitchPolicy:
    """Hysteresis thresholds deciding which ladder rung a stream needs.

    Parameters
    ----------
    ladder:
        Scheme names ordered by escalation.  ``decide`` only ever returns a
        member of the ladder.
    enter_skew:
        Escalate off the first rung when ``p1`` exceeds ``enter_skew * 2/n``
        — the paper's PKG breakdown bound, scaled.  1.0 means "exactly when
        PKG's imbalance bound stops holding".
    exit_skew:
        De-escalate back to the first rung when ``p1`` falls below
        ``exit_skew * 1/(5n)`` — below the paper's PKG-safe threshold the
        head machinery buys nothing.  Values above 1.0 make the exit edge
        *laxer* (still head-aware at frequencies PKG could handle), which is
        the conservative direction.
    enter_wide:
        Absolute ``p1`` above which the top rung (full placement freedom)
        is engaged.
    exit_wide:
        Absolute ``p1`` below which the top rung is left again; must be
        below ``enter_wide`` for the hysteresis band to exist.
    enter_imbalance:
        Escalate off the first rung regardless of ``p1`` when the observed
        relative imbalance exceeds this — the load vector notices skew the
        sketch attributes to no single key (many near-head keys).
    min_dwell:
        Minimum number of routed messages between two moves of the same
        source.  Caps the switch (and therefore migration) rate.
    """

    ladder: tuple[str, ...] = DEFAULT_LADDER
    enter_skew: float = 1.0
    exit_skew: float = 1.0
    enter_wide: float = 0.5
    exit_wide: float = 0.25
    enter_imbalance: float = 0.2
    min_dwell: int = 4000

    def __post_init__(self) -> None:
        if len(self.ladder) < 2:
            raise ConfigurationError(
                f"switch ladder needs at least 2 rungs, got {self.ladder!r}"
            )
        if self.exit_wide >= self.enter_wide:
            raise ConfigurationError(
                "exit_wide must be below enter_wide "
                f"(got {self.exit_wide} >= {self.enter_wide})"
            )
        if self.min_dwell < 1:
            raise ConfigurationError(
                f"min_dwell must be >= 1, got {self.min_dwell}"
            )

    def decide(self, metrics: DriftMetrics, current: str) -> str:
        """The ladder rung the stream needs right now.

        Returns ``current`` (possibly normalised onto the ladder) when the
        metrics sit inside the hysteresis band — never ``None``.
        """
        ladder = self.ladder
        try:
            rung = ladder.index(current)
        except ValueError:
            rung = 0
        n = metrics.num_workers
        p1 = metrics.p1
        breakdown = self.enter_skew * 2.0 / n
        safe = self.exit_skew * pkg_safe_threshold(n)
        if rung == 0:
            if p1 > breakdown or metrics.imbalance > self.enter_imbalance:
                rung = 1
        elif p1 < safe and metrics.imbalance <= self.enter_imbalance:
            rung = 0
        if len(ladder) > 2:
            if rung >= 1 and p1 > self.enter_wide:
                rung = len(ladder) - 1
            elif rung == len(ladder) - 1 and p1 < self.exit_wide and rung > 1:
                rung = 1
        return ladder[rung]

    @classmethod
    def parse(cls, spec: str) -> "SwitchPolicy":
        """Build a policy from a compact CLI spec.

        Comma-separated ``knob=value`` pairs; the ladder uses ``>`` between
        scheme names.  Example::

            ladder=PKG>D-C,enter_skew=1.5,dwell=8000

        Unknown knobs raise, listing the valid ones.
        """
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"bad adaptive-policy entry {part!r}; expected knob=value"
                )
            knob, _, value = part.partition("=")
            knob = knob.strip().lower()
            value = value.strip()
            if knob == "ladder":
                kwargs["ladder"] = tuple(
                    name.strip().upper() for name in value.split(">") if name.strip()
                )
            elif knob in ("dwell", "min_dwell"):
                kwargs["min_dwell"] = int(value)
            elif knob in (
                "enter_skew",
                "exit_skew",
                "enter_wide",
                "exit_wide",
                "enter_imbalance",
            ):
                kwargs[knob] = float(value)
            else:
                raise ConfigurationError(
                    f"unknown adaptive-policy knob {knob!r}; valid knobs: "
                    "ladder, enter_skew, exit_skew, enter_wide, exit_wide, "
                    "enter_imbalance, dwell"
                )
        return cls(**kwargs)


__all__ = ["DEFAULT_LADDER", "DriftMetrics", "SwitchPolicy"]
